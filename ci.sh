#!/usr/bin/env bash
# CI entry point: build, test, docs, bench compile.
#
#   ./ci.sh         # everything (tier-1 + docs + bench compile + examples)
#   ./ci.sh quick   # tier-1 only (build --release && test -q)
#
# Requires only a Rust toolchain — the workspace has no network
# dependencies (see DESIGN.md § Shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "${1:-}" != "quick" ]; then
    echo "==> cargo doc --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

    echo "==> cargo bench --no-run (benches must compile)"
    cargo bench --no-run --quiet

    # Exercise the streaming execution path end-to-end: both examples
    # drive real pipelines through the fused streaming executor.
    echo "==> examples (release)"
    cargo run --release --quiet --example quickstart
    cargo run --release --quiet --example anomaly_monitor
fi

echo "==> ci.sh: all green"
