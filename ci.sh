#!/usr/bin/env bash
# CI entry point: build, test, docs, bench compile.
#
#   ./ci.sh         # everything (tier-1 + fmt + docs + bench compile + examples + perf json)
#   ./ci.sh quick   # tier-1 only (build --release && test -q)
#
# Requires only a Rust toolchain — the workspace has no network
# dependencies (see DESIGN.md § Shims).
set -euo pipefail
cd "$(dirname "$0")"

# The whole pipeline compiles warning-free; keep it that way.
export RUSTFLAGS="-D warnings"

echo "==> cargo build --release (RUSTFLAGS=-D warnings)"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "${1:-}" != "quick" ]; then
    if cargo fmt --version >/dev/null 2>&1; then
        echo "==> cargo fmt --check"
        cargo fmt --check
    else
        echo "==> cargo fmt --check (skipped: rustfmt unavailable)"
    fi

    echo "==> cargo doc --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

    echo "==> cargo bench --no-run (benches must compile)"
    cargo bench --no-run --quiet

    # Exercise the streaming execution path end-to-end: both examples
    # drive real pipelines through the fused streaming executor.
    echo "==> examples (release)"
    cargo run --release --quiet --example quickstart
    cargo run --release --quiet --example anomaly_monitor

    # Perf trajectory: Figure 5 over a small clip archive at 1/2/4
    # worker shards, one machine-readable line each, accumulated at the
    # repo root so successive commits can compare both single-lane
    # throughput and parallel scaling.
    echo "==> BENCH_fig5.json (sharded scaling: 1/2/4 workers)"
    : > BENCH_fig5.json
    for workers in 1 2 4; do
        cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
            --json --repeat 8 --workers "$workers" | tee -a BENCH_fig5.json
    done
fi

echo "==> ci.sh: all green"
