#!/usr/bin/env bash
# CI entry point: build, test, lint, docs, bench compile, perf gate.
#
#   ./ci.sh              # everything (tier-1 + clippy + fmt + docs +
#                        #   bench compile + examples + perf json + gate)
#   ./ci.sh quick        # tier-1 only (build --release && test -q)
#   ./ci.sh lint-chains  # river-lint over every shipped pipeline chain
#   ./ci.sh bench-check  # compare BENCH_fig5.json vs BENCH_baseline.json
#   ./ci.sh stage-bench  # append per-stage spectral ns/record lines to
#                        #   BENCH_fig5.json (requires a release build)
#   ./ci.sh telemetry-check  # validate the fig5 --telemetry-json
#                        #   snapshot, append per-stage p50/p99 lines to
#                        #   BENCH_fig5.json, enforce the overhead budget
#   ./ci.sh serve-bench  # append the event-loop service throughput line
#                        #   ({"sessions": …, "workers": …, …}) to
#                        #   BENCH_fig5.json (requires a release build)
#   ./ci.sh docs         # rustdoc with warnings as errors (doctests run
#                        #   under plain `cargo test`)
#
# Requires only a Rust toolchain — the workspace has no network
# dependencies (see DESIGN.md § Shims). Every phase prints its
# wall-clock time so CI log triage shows where the minutes go.
set -euo pipefail
cd "$(dirname "$0")"

# --- per-phase wall-clock timing -------------------------------------
CI_T0=$SECONDS
PHASE_T0=$SECONDS
PHASE_NAME=""
phase() {
    phase_end
    PHASE_NAME="$1"
    PHASE_T0=$SECONDS
    echo "==> $1"
}
phase_end() {
    if [ -n "$PHASE_NAME" ]; then
        echo "    [phase '$PHASE_NAME' took $((SECONDS - PHASE_T0))s]"
    fi
    PHASE_NAME=""
}

# --- bench regression gate -------------------------------------------
# Parses the freshly written BENCH_fig5.json against the committed
# BENCH_baseline.json and fails if single-lane (workers=1, unclamped)
# throughput regressed by more than 25%. Machine-readable lines look
# like: {"workers": 1, "requested_workers": 1, "clamped": false, ...,
# "records_per_sec": 6514.9, ...}
rps_at_workers1() {
    grep -m1 '"workers": 1, "requested_workers": 1,' "$1" |
        sed -E 's/.*"records_per_sec": ([0-9.]+).*/\1/'
}
bench_check() {
    local base=BENCH_baseline.json cur=BENCH_fig5.json
    [ -f "$base" ] || { echo "bench-check: missing $base" >&2; exit 1; }
    [ -f "$cur" ] || { echo "bench-check: missing $cur (run ./ci.sh first)" >&2; exit 1; }
    local base_rps cur_rps
    base_rps=$(rps_at_workers1 "$base")
    cur_rps=$(rps_at_workers1 "$cur")
    [ -n "$base_rps" ] || { echo "bench-check: no workers=1 line in $base" >&2; exit 1; }
    [ -n "$cur_rps" ] || { echo "bench-check: no workers=1 line in $cur" >&2; exit 1; }
    awk -v base="$base_rps" -v cur="$cur_rps" 'BEGIN {
        floor = 0.75 * base
        printf "bench-check: workers=1 records_per_sec: baseline %.1f, current %.1f (floor %.1f)\n", base, cur, floor
        if (cur < floor) {
            print "bench-check: FAIL — single-lane throughput regressed by more than 25%"
            exit 1
        }
        print "bench-check: OK"
    }'
}

# --- wire compactness gate -------------------------------------------
# Reads the two wire-format lines of BENCH_fig5.json and fails unless
# v2 (compact f32 frames) costs at most half the bytes per record of
# v1 on the same clip — the headline claim of DESIGN.md §13.
wire_bytes_for() {
    grep -m1 "\"format\": \"$2\"" "$1" |
        sed -E 's/.*"wire_bytes_per_record": ([0-9.]+).*/\1/'
}
wire_check() {
    local cur=BENCH_fig5.json v1 v2
    v1=$(wire_bytes_for "$cur" v1)
    v2=$(wire_bytes_for "$cur" v2)
    [ -n "$v1" ] || { echo "wire-check: no v1 line in $cur" >&2; exit 1; }
    [ -n "$v2" ] || { echo "wire-check: no v2 line in $cur" >&2; exit 1; }
    awk -v v1="$v1" -v v2="$v2" 'BEGIN {
        printf "wire-check: bytes/record: v1 %.1f, v2 %.1f (ratio %.4f)\n", v1, v2, v2 / v1
        if (v2 > 0.5 * v1) {
            print "wire-check: FAIL — v2 frames exceed half the v1 wire cost"
            exit 1
        }
        print "wire-check: OK"
    }'
}

# --- per-stage spectral cost -----------------------------------------
# Appends one {"stage": …, "ns_per_record": …} line per spectral stage
# to BENCH_fig5.json: the four oracle operators, their chained total,
# and the fused `spectrum` replacement — the per-stage evidence that
# the real-input FFT path is where the throughput win comes from
# (DESIGN.md §14).
stage_bench() {
    cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
        --stage-json | tee -a BENCH_fig5.json
}

# --- telemetry snapshot gate ------------------------------------------
# Runs Figure 5 with --telemetry-json, validates that the snapshot
# parses (python3 when present, structural grep otherwise), requires a
# non-empty event log, then appends one {"stage": …, "p50_ns": …,
# "p99_ns": …} line per stage to BENCH_fig5.json so stage latency is
# tracked commit-over-commit (DESIGN.md §16). Finishes by running the
# telemetry overhead guard in the only build where its 5% budget is
# enforced (release).
telemetry_check() {
    local snap stages
    snap=$(cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
        --telemetry-json)
    if command -v python3 >/dev/null 2>&1; then
        printf '%s\n' "$snap" | python3 -m json.tool >/dev/null ||
            { echo "telemetry-check: snapshot is not valid JSON" >&2; exit 1; }
    fi
    printf '%s\n' "$snap" | grep -q '"events": \[{' ||
        { echo "telemetry-check: event log is empty" >&2; exit 1; }
    stages=$(printf '%s\n' "$snap" |
        grep -oE '\{"stage": "[^"]+", "p50_ns": [0-9]+, "p99_ns": [0-9]+' |
        sed 's/$/}/')
    [ -n "$stages" ] ||
        { echo "telemetry-check: no per-stage percentile lines in snapshot" >&2; exit 1; }
    printf '%s\n' "$stages" | tee -a BENCH_fig5.json
    echo "telemetry-check: snapshot OK ($(printf '%s\n' "$stages" | wc -l) stages)"
    cargo test --release -q -p ensemble-core --test telemetry_overhead
}

# --- event-loop service throughput ------------------------------------
# Appends one {"sessions": M, "workers": N, "records_per_sec": …} line
# to BENCH_fig5.json: M concurrent loopback clients multiplexed over an
# N-thread worker pool by the readiness-driven PipelineServer
# (DESIGN.md §17), so service-layer throughput is tracked
# commit-over-commit alongside the pipeline trajectory.
serve_bench() {
    cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
        --serve-json --sessions 16 --workers 4 | tee -a BENCH_fig5.json
}

# --- rustdoc gate -----------------------------------------------------
# The API docs must build warning-free (broken intra-doc links are the
# usual regression); doctests themselves run under `cargo test`.
docs_check() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
}

# --- static chain verification ---------------------------------------
# Runs river-lint over every shipped pipeline chain (Figure 5 in both
# spectral paths plus the standalone segments, the chains every example
# composes) and fails on any error-severity diagnostic (DESIGN.md §15).
lint_chains() {
    cargo run --release --quiet -p ensemble-bench --bin river-lint
}

if [ "${1:-}" = "lint-chains" ]; then
    lint_chains
    exit 0
fi
if [ "${1:-}" = "bench-check" ]; then
    bench_check
    exit 0
fi
if [ "${1:-}" = "stage-bench" ]; then
    stage_bench
    exit 0
fi
if [ "${1:-}" = "telemetry-check" ]; then
    telemetry_check
    exit 0
fi
if [ "${1:-}" = "serve-bench" ]; then
    serve_bench
    exit 0
fi
if [ "${1:-}" = "docs" ]; then
    docs_check
    exit 0
fi

# The whole pipeline compiles warning-free; keep it that way.
export RUSTFLAGS="-D warnings"

phase "cargo build --release (RUSTFLAGS=-D warnings)"
cargo build --release

phase "cargo test -q"
cargo test -q

if [ "${1:-}" != "quick" ]; then
    if cargo clippy --version >/dev/null 2>&1; then
        phase "cargo clippy --all-targets (warnings are errors)"
        cargo clippy --all-targets --quiet -- -D warnings
    else
        echo "==> cargo clippy --all-targets (skipped: clippy unavailable)"
    fi

    if cargo fmt --version >/dev/null 2>&1; then
        phase "cargo fmt --check"
        cargo fmt --check
    else
        echo "==> cargo fmt --check (skipped: rustfmt unavailable)"
    fi

    phase "cargo doc --no-deps (warnings are errors)"
    docs_check

    phase "cargo bench --no-run (benches must compile)"
    cargo bench --no-run --quiet

    # Exercise the streaming execution path end-to-end: all three
    # examples drive real pipelines through the fused streaming
    # executor; distributed_pipeline serves a concurrent client fleet
    # through the multi-session PipelineServer over loopback TCP.
    phase "examples (release)"
    cargo run --release --quiet --example quickstart
    cargo run --release --quiet --example anomaly_monitor
    cargo run --release --quiet --example distributed_pipeline

    # Perf trajectory: Figure 5 over a small clip archive at 1/2/4
    # worker shards, one machine-readable line each, accumulated at the
    # repo root so successive commits can compare both single-lane
    # throughput and parallel scaling. Worker counts beyond the host's
    # cores are clamped (and flagged "clamped": true) so a small CI
    # host cannot fake a parallel slowdown.
    # Decoder fuzz smoke: bounded, deterministic (fixed seeds inside the
    # battery, fixed iteration count here) so CI time is predictable and
    # failures reproduce with plain `FUZZ_ITERS=2048 cargo test`.
    phase "fuzz smoke (decoder battery, FUZZ_ITERS=2048)"
    FUZZ_ITERS=2048 cargo test -q -p dynamic-river --test fuzz_decoder

    phase "BENCH_fig5.json (sharded scaling: 1/2/4 workers)"
    : > BENCH_fig5.json
    for workers in 1 2 4; do
        cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
            --json --repeat 8 --workers "$workers" | tee -a BENCH_fig5.json
    done

    # Wire-format trajectory: bytes-per-record each format pays for the
    # same clip, appended to the same artifact so the compression ratio
    # is tracked commit-over-commit.
    phase "BENCH_fig5.json (wire bytes per record: v1 vs v2)"
    for fmt in v1 v2; do
        cargo run --release --quiet -p ensemble-bench --bin fig5_pipeline -- \
            --wire-json "$fmt" | tee -a BENCH_fig5.json
    done

    # Per-stage spectral cost, same artifact: shows which stage the
    # single-lane throughput comes from (dft vs fused spectrum).
    phase "BENCH_fig5.json (per-stage spectral ns/record)"
    stage_bench

    # Service-layer throughput, same artifact: 16 sessions multiplexed
    # over the event loop's 4-thread worker pool (DESIGN.md §17).
    phase "BENCH_fig5.json (serve-bench: event-loop service throughput)"
    serve_bench

    # Telemetry gate: the live snapshot must parse and carry per-stage
    # percentiles plus a non-empty event log; its p50/p99 lines join the
    # perf artifact, and the release-mode overhead budget is enforced.
    phase "telemetry-check (fig5 --telemetry-json + overhead budget)"
    telemetry_check

    # Static chain verification: every shipped chain must lint clean
    # (zero error-severity diagnostics, DESIGN.md §15); the
    # machine-readable line joins the perf artifact so the chain count
    # is tracked commit-over-commit.
    phase "lint-chains (river-lint over every shipped chain)"
    lint_chains
    cargo run --release --quiet -p ensemble-bench --bin river-lint -- \
        --json | tee -a BENCH_fig5.json

    phase "wire-check (v2 frames at most half the v1 bytes)"
    wire_check

    phase "bench-check (workers=1 throughput vs BENCH_baseline.json)"
    bench_check
fi

phase_end
echo "==> ci.sh: all green ($((SECONDS - CI_T0))s total)"
