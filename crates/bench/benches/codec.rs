//! Wire-codec throughput for the Dynamic River network path: encode and
//! decode rates for production-sized audio records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynamic_river::codec::{decode_frame, encode_frame};
use dynamic_river::{Payload, Record};
use std::hint::black_box;

fn audio_record(samples: usize) -> Record {
    Record::data(
        1,
        Payload::f64(
            (0..samples)
                .map(|i| (i as f64 * 0.1).sin())
                .collect::<Vec<f64>>(),
        ),
    )
    .with_seq(42)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode");
    for &n in &[84usize, 840, 8_400] {
        let rec = audio_record(n);
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rec, |b, rec| {
            b.iter(|| black_box(encode_frame(rec)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/decode");
    for &n in &[84usize, 840, 8_400] {
        let frame = encode_frame(&audio_record(n));
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &frame, |b, frame| {
            b.iter(|| black_box(decode_frame(frame).unwrap().unwrap().0.seq));
        });
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/round_trip");
    let rec = audio_record(840);
    group.throughput(Throughput::Bytes((840 * 8) as u64));
    group.bench_function("840_samples", |b| {
        b.iter(|| {
            let frame = encode_frame(&rec);
            black_box(decode_frame(&frame).unwrap().unwrap().0.subtype)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_round_trip);
criterion_main!(benches);
