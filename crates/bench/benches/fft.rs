//! DFT backend comparison: radix-2 vs Bluestein vs the naive O(N²)
//! reference, including the production record length (840, mixed
//! radix → Bluestein path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use river_dsp::fft::{dft_naive, Fft};
use river_dsp::Complex64;
use std::hint::black_box;

fn input(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
        .collect()
}

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/forward");
    group.sample_size(30);
    for &n in &[256usize, 512, 700, 840, 1024, 2048] {
        let x = input(n);
        let plan = Fft::new(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.forward(&x)));
        });
    }
    group.finish();
}

fn bench_naive_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/vs_naive");
    group.sample_size(10);
    let n = 840;
    let x = input(n);
    let plan = Fft::new(n);
    group.bench_function("bluestein_840", |b| b.iter(|| black_box(plan.forward(&x))));
    group.bench_function("naive_840", |b| b.iter(|| black_box(dft_naive(&x))));
    group.finish();
}

fn bench_plan_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/planning");
    group.sample_size(20);
    group.bench_function("plan_840", |b| b.iter(|| black_box(Fft::new(840))));
    group.bench_function("plan_1024", |b| b.iter(|| black_box(Fft::new(1024))));
    group.finish();
}

criterion_group!(
    benches,
    bench_sizes,
    bench_naive_comparison,
    bench_plan_reuse
);
criterion_main!(benches);
