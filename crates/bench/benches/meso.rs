//! MESO training/query cost vs pattern count and feature width — the
//! timing columns of Table 2 (1050-dim raw vs 105-dim PAA patterns),
//! plus the removal-vs-retrain leave-one-out ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ensemble_core::classify::paper_meso_config;
use meso::crossval::{leave_one_out, CrossValConfig, LooMode};
use meso::{Dataset, Meso};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn patterns(n: usize, dim: usize, classes: usize, seed: u64) -> Vec<(Vec<f64>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let label = i % classes;
            let center = label as f64 * 3.0;
            let f: Vec<f64> = (0..dim)
                .map(|_| center + rng.random_range(-1.0..1.0))
                .collect();
            (f, label)
        })
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("meso/train");
    group.sample_size(10);
    for &(n, dim) in &[(500usize, 105usize), (500, 1_050), (2_000, 105)] {
        let data = patterns(n, dim, 10, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{dim}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut m = Meso::new(dim, paper_meso_config());
                    for (f, l) in data {
                        m.train(f, *l);
                    }
                    black_box(m.sphere_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("meso/query");
    group.sample_size(20);
    for &dim in &[105usize, 1_050] {
        let data = patterns(1_000, dim, 10, 7);
        let mut m = Meso::new(dim, paper_meso_config());
        for (f, l) in &data {
            m.train(f, *l);
        }
        let queries = patterns(100, dim, 10, 99);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("linear", dim), &dim, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for (f, l) in &queries {
                    if m.classify(f) == Some(*l) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
        let index = m.build_index();
        group.bench_with_input(BenchmarkId::new("ball_tree", dim), &dim, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for (f, l) in &queries {
                    if m.classify_indexed(&index, f) == Some(*l) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

fn bench_loo_removal_vs_retrain(c: &mut Criterion) {
    let mut group = c.benchmark_group("meso/loo");
    group.sample_size(10);
    let data = patterns(200, 105, 10, 3);
    let mut ds = Dataset::new(105);
    for (f, l) in data {
        ds.push_ungrouped(f, l);
    }
    for (name, mode) in [("removal", LooMode::Removal), ("retrain", LooMode::Retrain)] {
        let cv = CrossValConfig {
            iterations: 1,
            seed: 0,
            loo_mode: mode,
            meso: paper_meso_config(),
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(leave_one_out(&ds, &cv).mean_accuracy()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_train,
    bench_query,
    bench_loo_removal_vs_retrain
);
criterion_main!(benches);
