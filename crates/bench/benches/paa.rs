//! PAA reduction-factor sweep: cost of reducing one 350-bin spectral
//! record at the factors around the paper's choice of 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use river_sax::paa::{paa, paa_by_factor};
use std::hint::black_box;

fn bench_factor_sweep(c: &mut Criterion) {
    let record: Vec<f64> = (0..350).map(|i| (i as f64 * 0.3).sin().abs()).collect();
    let mut group = c.benchmark_group("paa/factor");
    group.throughput(Throughput::Elements(record.len() as u64));
    for factor in [2usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| black_box(paa_by_factor(&record, f)));
        });
    }
    group.finish();
}

fn bench_fractional_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("paa/boundaries");
    let exact: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
    group.bench_function("exact_division", |b| b.iter(|| black_box(paa(&exact, 10))));
    let fractional: Vec<f64> = (0..1_003).map(|i| i as f64).collect();
    group.bench_function("fractional_division", |b| {
        b.iter(|| black_box(paa(&fractional, 10)));
    });
    group.finish();
}

criterion_group!(benches, bench_factor_sweep, bench_fractional_vs_exact);
criterion_main!(benches);
