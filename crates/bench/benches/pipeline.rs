//! End-to-end pipeline throughput: ensemble extraction over a 30 s
//! clip, featurization of the cut ensembles, and the full Figure 5
//! graph — in samples per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynamic_river::CountingSink;
use ensemble_core::ops::{clip_record_source, clip_to_records};
use ensemble_core::pipeline::{extraction_segment, featurize_ensemble, full_pipeline};
use ensemble_core::prelude::*;
use std::hint::black_box;

fn bench_direct_extraction(c: &mut Criterion) {
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 5);
    let extractor = EnsembleExtractor::new(ExtractorConfig::paper());
    let mut group = c.benchmark_group("pipeline/extract");
    group.sample_size(10);
    group.throughput(Throughput::Elements(clip.samples.len() as u64));
    group.bench_function("direct_30s_clip", |b| {
        b.iter(|| black_box(extractor.extract(&clip.samples).len()));
    });
    group.finish();
}

fn bench_record_pipeline(c: &mut Criterion) {
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 5);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let records = clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    );

    let mut group = c.benchmark_group("pipeline/records");
    group.sample_size(10);
    group.throughput(Throughput::Elements(usable as u64));
    group.bench_function("extraction_segment", |b| {
        b.iter(|| {
            let mut p = extraction_segment(cfg);
            black_box(p.run(records.clone()).unwrap().len())
        });
    });
    group.bench_function("full_figure5", |b| {
        b.iter(|| {
            let mut p = full_pipeline(cfg, true);
            black_box(p.run_batch(records.clone()).unwrap().len())
        });
    });
    // The fused streaming executor over a lazy source: no record
    // vector, no inter-stage materialization.
    group.bench_function("full_figure5_streaming", |b| {
        b.iter(|| {
            let mut p = full_pipeline(cfg, true);
            let mut sink = CountingSink::default();
            let stats = p
                .run_streaming(
                    clip_record_source(
                        clip.samples[..usable].iter().copied(),
                        cfg.sample_rate,
                        cfg.record_len,
                        &[],
                    ),
                    &mut sink,
                )
                .unwrap();
            black_box(stats.sink_records)
        });
    });
    group.finish();
}

fn bench_featurization(c: &mut Criterion) {
    let cfg = ExtractorConfig::paper();
    let samples: Vec<f64> = (0..cfg.record_len * 24)
        .map(|i| (i as f64 * 0.21).sin() * 0.3)
        .collect();
    let mut group = c.benchmark_group("pipeline/featurize");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("raw_1050", |b| {
        b.iter(|| black_box(featurize_ensemble(&samples, &cfg, false).len()));
    });
    group.bench_function("paa_105", |b| {
        b.iter(|| black_box(featurize_ensemble(&samples, &cfg, true).len()));
    });
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let mut group = c.benchmark_group("pipeline/synthesis");
    group.sample_size(10);
    group.bench_function("clip_30s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(synth.clip(SpeciesCode::Hofi, seed).samples.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_extraction,
    bench_record_pipeline,
    bench_featurization,
    bench_synthesis
);
criterion_main!(benches);
