//! Ablation bench for the streaming SAX-bitmap anomaly detector:
//! throughput vs window size, alphabet size and n-gram level — the §3
//! parameter choices (window 100, alphabet 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use river_sax::anomaly::{AnomalyConfig, BitmapAnomaly, Normalization};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.05).sin() * 0.1 + ((i * 2654435761) % 997) as f64 * 1e-5)
        .collect()
}

fn bench_window(c: &mut Criterion) {
    let samples = signal(50_000);
    let mut group = c.benchmark_group("sax_anomaly/window");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    for window in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut det = BitmapAnomaly::new(AnomalyConfig {
                    window: w,
                    ..AnomalyConfig::default()
                });
                let mut acc = 0.0;
                for &x in &samples {
                    acc += det.push(x);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_alphabet(c: &mut Criterion) {
    let samples = signal(50_000);
    let mut group = c.benchmark_group("sax_anomaly/alphabet");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    for alphabet in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(alphabet), &alphabet, |b, &a| {
            b.iter(|| {
                let mut det = BitmapAnomaly::new(AnomalyConfig {
                    alphabet: a,
                    ..AnomalyConfig::default()
                });
                let mut acc = 0.0;
                for &x in &samples {
                    acc += det.push(x);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_ngram(c: &mut Criterion) {
    let samples = signal(50_000);
    let mut group = c.benchmark_group("sax_anomaly/ngram");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    for ngram in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(ngram), &ngram, |b, &n| {
            b.iter(|| {
                let mut det = BitmapAnomaly::new(AnomalyConfig {
                    ngram: n,
                    ..AnomalyConfig::default()
                });
                let mut acc = 0.0;
                for &x in &samples {
                    acc += det.push(x);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let samples = signal(50_000);
    let mut group = c.benchmark_group("sax_anomaly/normalization");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    for (name, norm) in [
        ("global", Normalization::Global),
        ("sliding8400", Normalization::Sliding(8_400)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &norm, |b, &n| {
            b.iter(|| {
                let mut det = BitmapAnomaly::new(AnomalyConfig {
                    normalization: n,
                    ..AnomalyConfig::default()
                });
                let mut acc = 0.0;
                for &x in &samples {
                    acc += det.push(x);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window,
    bench_alphabet,
    bench_ngram,
    bench_normalization
);
criterion_main!(benches);
