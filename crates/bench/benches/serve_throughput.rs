//! Throughput of the event-driven pipeline service
//! (`dynamic_river::serve::PipelineServer`): a fleet of concurrent
//! clients pushes pre-encoded framed clip streams over loopback TCP,
//! each session decoding and running its own cloned operator chain,
//! multiplexed over a fixed 4-thread worker pool. Measured end to end
//! — accept, poll, decode, chain, per-session stats, graceful
//! shutdown — in records per second, at 1/2/4/16 concurrent sessions.
//! The 16-session point has sessions ≫ workers, exercising the
//! readiness multiplexing the event loop exists for. The chain is
//! deliberately light (an in-place gain) so the numbers track the
//! *service layer's* overhead: framing, CRC checks, scope tracking,
//! dispatch and aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynamic_river::codec::{encode_frame, EOS_MAGIC};
use dynamic_river::operator::NullSink;
use dynamic_river::prelude::*;
use dynamic_river::serve::PipelineServer;
use std::hint::black_box;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

const CLIPS_PER_SESSION: usize = 4;
const RECORDS_PER_CLIP: usize = 64;
const SAMPLES_PER_RECORD: usize = 120;

fn chain() -> Pipeline {
    let mut p = Pipeline::new();
    p.add(MapPayload::new("gain", |v: &mut [f64]| {
        v.iter_mut().for_each(|x| *x *= 0.5);
    }));
    p
}

/// One client's whole wire stream, framed once up front so iterations
/// measure the server, not the clients' encoding.
fn client_bytes() -> (Arc<Vec<u8>>, u64) {
    let mut bytes = Vec::new();
    let mut records = 0u64;
    for clip in 0..CLIPS_PER_SESSION {
        bytes.extend_from_slice(&encode_frame(&Record::open_scope(1, vec![])));
        records += 1;
        for i in 0..RECORDS_PER_CLIP {
            let samples: Vec<f64> = (0..SAMPLES_PER_RECORD)
                .map(|s| ((clip * RECORDS_PER_CLIP + i) * SAMPLES_PER_RECORD + s) as f64)
                .collect();
            bytes.extend_from_slice(&encode_frame(
                &Record::data(0, Payload::f64(samples)).with_seq(i as u64),
            ));
            records += 1;
        }
        bytes.extend_from_slice(&encode_frame(&Record::close_scope(1)));
        records += 1;
    }
    bytes.extend_from_slice(&EOS_MAGIC);
    (Arc::new(bytes), records)
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (bytes, records_per_session) = client_bytes();

    let mut group = c.benchmark_group("serve_throughput/loopback_sessions");
    group.sample_size(10);
    for sessions in [1usize, 2, 4, 16] {
        group.throughput(Throughput::Elements(records_per_session * sessions as u64));
        group.bench_function(BenchmarkId::from_parameter(sessions), |b| {
            b.iter(|| {
                let mut server = PipelineServer::from_pipeline(&chain()).unwrap();
                server.set_max_sessions(sessions.max(16)).set_workers(4);
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let handle = server.start(listener, |_info| Box::new(NullSink)).unwrap();
                let addr = handle.local_addr();
                let clients: Vec<_> = (0..sessions)
                    .map(|_| {
                        let bytes = Arc::clone(&bytes);
                        thread::spawn(move || {
                            let mut stream = TcpStream::connect(addr).unwrap();
                            stream.set_nodelay(true).unwrap();
                            stream.write_all(&bytes).unwrap();
                        })
                    })
                    .collect();
                for client in clients {
                    client.join().unwrap();
                }
                handle.wait_for_completed(sessions as u64);
                let report = handle.shutdown().unwrap();
                assert_eq!(
                    report.aggregate.source_records,
                    records_per_session * sessions as u64
                );
                black_box(report.sessions.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
