//! Scaling of the scope-sharded parallel executor: an archive of clips
//! through the complete Figure 5 graph at 1/2/4 worker shards versus
//! the single-lane fused driver, in source samples per second. On a
//! multi-core host the sharded runs scale with worker count while the
//! output stays byte-identical to the single lane (asserted here, not
//! just measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynamic_river::CountingSink;
use ensemble_core::ops::clips_record_source;
use ensemble_core::pipeline::{full_pipeline, full_pipeline_sharded};
use ensemble_core::prelude::*;
use std::hint::black_box;

const CLIPS: usize = 8;

fn archive_clip(cfg: &ExtractorConfig) -> Vec<f64> {
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    let clip = synth.clip(SpeciesCode::Noca, 7);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    clip.samples[..usable].to_vec()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let cfg = ExtractorConfig::paper();
    let clip = archive_clip(&cfg);
    let total_samples = (clip.len() * CLIPS) as u64;
    let archive = || {
        let clip = clip.clone();
        clips_record_source(
            std::iter::repeat_with(move || clip.clone()).take(CLIPS),
            cfg.sample_rate,
            cfg.record_len,
        )
    };

    // Sanity before timing: the parallel path must not change output.
    let mut single = Vec::new();
    full_pipeline(cfg, true)
        .run_streaming(archive(), &mut single)
        .unwrap();
    let mut sharded = Vec::new();
    full_pipeline_sharded(cfg, true, 4)
        .run(archive(), &mut sharded)
        .unwrap();
    assert_eq!(single, sharded, "sharded output diverged from single lane");

    let mut group = c.benchmark_group("shard_scaling/figure5_archive");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_samples));
    group.bench_function("single_lane", |b| {
        b.iter(|| {
            let mut p = full_pipeline(cfg, true);
            let mut sink = CountingSink::default();
            p.run_streaming(archive(), &mut sink).unwrap();
            black_box(sink.records)
        });
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("sharded", workers), |b| {
            b.iter(|| {
                let mut sink = CountingSink::default();
                full_pipeline_sharded(cfg, true, workers)
                    .run(archive(), &mut sink)
                    .unwrap();
                black_box(sink.records)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
