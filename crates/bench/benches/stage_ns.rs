//! Per-stage cost of the spectral featurization chain, in ns/record.
//!
//! Benches each operator of the oracle chain (`welchwindow` →
//! `float2cplx` → `dft` → `cabs`) in isolation on its own input shape,
//! plus the fused `spectrum` operator and the two underlying FFT paths
//! (complex Bluestein-840 vs packed real 840→420) — the evidence that
//! the fused real-input path is where the pipeline's throughput win
//! comes from. `fig5_pipeline --stage-json` reports the same breakdown
//! as JSON for `BENCH_fig5.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynamic_river::{Payload, Record};
use ensemble_core::ops::{Cabs, Dft, Float2Cplx, Spectrum, WelchWindow};
use ensemble_core::{subtype, ExtractorConfig};
use river_dsp::{Complex64, Fft, RealFft};
use std::hint::black_box;

/// Deterministic pseudo-random samples in [-1, 1] (xorshift64*).
fn random_samples(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Runs `op` over clones of `records` through a bare sink.
fn run_op(op: &mut dyn dynamic_river::Operator, records: &[Record]) -> usize {
    let mut sink: Vec<Record> = Vec::with_capacity(records.len());
    for r in records {
        op.on_record(r.clone(), &mut sink).unwrap();
    }
    black_box(sink.len())
}

fn bench_operators(c: &mut Criterion) {
    let cfg = ExtractorConfig::paper();
    let n = cfg.record_len;
    let audio: Vec<Record> = (0..64)
        .map(|i| Record::data(subtype::AUDIO, Payload::f64(random_samples(n, i))))
        .collect();
    // The dft stage consumes interleaved-complex records (float2cplx
    // output): 2n values per record.
    let complex: Vec<Record> = (0..64)
        .map(|i| {
            let mut v = Vec::with_capacity(2 * n);
            for x in random_samples(n, i + 1_000) {
                v.push(x);
                v.push(0.0);
            }
            Record::data(subtype::SPECTRUM, Payload::complex(v))
        })
        .collect();

    let mut group = c.benchmark_group("stage_ns");
    group.throughput(Throughput::Elements(audio.len() as u64));

    group.bench_function("welchwindow", |b| {
        let mut op = WelchWindow::new();
        b.iter(|| run_op(&mut op, &audio));
    });
    group.bench_function("float2cplx", |b| {
        let mut op = Float2Cplx::new();
        b.iter(|| run_op(&mut op, &audio));
    });
    group.bench_function("dft", |b| {
        let mut op = Dft::new();
        b.iter(|| run_op(&mut op, &complex));
    });
    group.bench_function("cabs", |b| {
        let mut op = Cabs::new();
        b.iter(|| run_op(&mut op, &complex));
    });
    group.bench_function("spectrum_fused", |b| {
        let mut op = Spectrum::new();
        b.iter(|| run_op(&mut op, &audio));
    });
    group.finish();
}

fn bench_fft_paths(c: &mut Criterion) {
    let n = ExtractorConfig::paper().record_len;
    let x = random_samples(n, 7);
    let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();

    let mut group = c.benchmark_group("stage_ns/fft");
    group.throughput(Throughput::Elements(1));

    // The old hot path: full 840-point complex Bluestein transform.
    group.bench_function("complex_840", |b| {
        let fft = Fft::new(n);
        let mut buf = packed.clone();
        let mut scratch = vec![Complex64::ZERO; fft.scratch_len()];
        b.iter(|| {
            buf.copy_from_slice(&packed);
            fft.forward_scratch(&mut buf, &mut scratch);
            black_box(buf[1]);
        });
    });
    // The new hot path: 840 real samples packed into a 420-point half.
    group.bench_function("real_840", |b| {
        let fft = RealFft::new(n);
        let mut out = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; fft.scratch_len()];
        b.iter(|| {
            fft.forward_into(&x, &mut out, &mut scratch);
            black_box(out[1]);
        });
    });
    // The fused production kernel: window × real FFT → magnitudes.
    group.bench_function("real_840_magnitudes", |b| {
        let fft = RealFft::new(n);
        let window = vec![0.5; n];
        let mut mags = vec![0.0; n];
        let mut scratch = vec![Complex64::ZERO; fft.scratch_len()];
        b.iter(|| {
            fft.magnitudes_into(&x, Some(&window), &mut mags, &mut scratch);
            black_box(mags[1]);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_fft_paths);
criterion_main!(benches);
