//! Clone-vs-view: measures the zero-copy payload redesign against the
//! owned-`Vec` baseline it replaced.
//!
//! Three comparisons, each pairing an `owned_vec` variant (what the
//! pre-`SampleBuf` record model had to do: deep-copy samples) with a
//! `shared_view` variant (what the `Arc`-backed buffers do: bump a
//! refcount or adjust an offset):
//!
//! - `clone`: duplicating one production-sized audio record;
//! - `fanout`: a pipeline stage that fans every record out to four
//!   consumers, over a full clip of records;
//! - `rewindow`: slicing 50 %-overlap windows out of a clip buffer
//!   (the `reslice` access pattern).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynamic_river::prelude::*;
use std::hint::black_box;

const RECORD_LEN: usize = 840;
const RECORDS: usize = 72; // one 30 s clip at paper geometry / 10

fn audio_records() -> Vec<Record> {
    let clip: SampleBuf = (0..RECORD_LEN * RECORDS)
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    (0..RECORDS)
        .map(|i| {
            Record::data(
                1,
                Payload::F64(clip.slice(i * RECORD_LEN..(i + 1) * RECORD_LEN)),
            )
            .with_seq(i as u64)
        })
        .collect()
}

/// Rebuilds a record by deep-copying its sample payload — the cost
/// every `Record::clone` paid before the shared-buffer redesign.
fn deep_clone(r: &Record) -> Record {
    let payload = match &r.payload {
        Payload::F64(v) => Payload::f64(v.to_vec()),
        Payload::Complex(v) => Payload::complex(v.to_vec()),
        other => other.clone(),
    };
    Record {
        payload,
        ..r.clone()
    }
}

fn bench_clone(c: &mut Criterion) {
    let rec = audio_records().remove(0);
    let mut group = c.benchmark_group("zero_copy/clone");
    group.throughput(Throughput::Bytes((RECORD_LEN * 8) as u64));
    group.bench_function("owned_vec", |b| b.iter(|| black_box(deep_clone(&rec))));
    group.bench_function("shared_view", |b| b.iter(|| black_box(rec.clone())));
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let records = audio_records();
    let total_bytes = (RECORD_LEN * RECORDS * 8) as u64;
    let run = |fan: fn(&Record) -> Record, input: &[Record]| {
        let mut p = Pipeline::new();
        p.add(dynamic_river::ops::FnOp::new(
            "fan4",
            move |r: Record, out: &mut dyn dynamic_river::Sink| {
                for _ in 0..3 {
                    out.push(fan(&r))?;
                }
                out.push(r)
            },
        ));
        let mut sink = CountingSink::default();
        p.run_streaming(input.iter().cloned(), &mut sink).unwrap();
        sink.records
    };
    let mut group = c.benchmark_group("zero_copy/fanout_x4");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("owned_vec", |b| {
        b.iter(|| black_box(run(deep_clone, &records)));
    });
    group.bench_function("shared_view", |b| {
        b.iter(|| black_box(run(Record::clone, &records)));
    });
    group.finish();
}

fn bench_rewindow(c: &mut Criterion) {
    let clip: SampleBuf = (0..RECORD_LEN * RECORDS)
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    let windows = RECORDS * 2 - 1;
    let mut group = c.benchmark_group("zero_copy/rewindow_50pct");
    group.throughput(Throughput::Bytes((windows * RECORD_LEN * 8) as u64));
    group.bench_function("owned_vec", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in 0..windows {
                let start = w * RECORD_LEN / 2;
                let copied: Vec<f64> = clip[start..start + RECORD_LEN].to_vec();
                total += black_box(&copied).len();
            }
            total
        });
    });
    group.bench_function("shared_view", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in 0..windows {
                let start = w * RECORD_LEN / 2;
                let view = clip.slice(start..start + RECORD_LEN);
                total += black_box(&view).len();
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_clone, bench_fanout, bench_rewindow);
criterion_main!(benches);
