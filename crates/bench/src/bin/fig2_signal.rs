//! Regenerates **Figure 2** of the paper: the oscillogram (top) and
//! spectrogram (bottom) of an acoustic clip.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig2_signal [-- --seed N]
//! ```
//!
//! Also writes `fig2_spectrogram.pgm` (grayscale image) to the current
//! directory for viewing with any image tool.

use ensemble_bench::{header, Scale};
use ensemble_core::prelude::*;
use ensemble_core::render::{ascii_oscillogram, seconds_ruler};
use river_dsp::spectrogram::{render_pgm, Spectrogram, SpectrogramConfig};

fn main() {
    let scale = Scale::from_args();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Wbnu, scale.seed);

    header("Figure 2: oscillogram (top) and spectrogram (bottom) of an acoustic signal");
    println!(
        "clip: {:.0} s of {} with {} song bout(s), {:.1} kHz",
        clip.duration(),
        SpeciesCode::Wbnu.common_name(),
        clip.events.len(),
        clip.sample_rate / 1e3
    );

    println!("\nAmplitude (normalized)");
    print!("{}", ascii_oscillogram(&clip.samples, 96, 13));
    println!("{}", seconds_ruler(clip.duration(), 96, 5.0));

    let spec = Spectrogram::compute(&clip.samples, SpectrogramConfig::production());
    println!("\nkHz (0 at bottom, {:.1} at top)", clip.sample_rate / 2e3);
    print!("{}", spec.render_ascii(20));
    println!(
        "{}",
        seconds_ruler(clip.duration(), spec.columns().min(96), 5.0)
    );

    let pgm = render_pgm(&spec.clone().into_inner());
    std::fs::write("fig2_spectrogram.pgm", &pgm).expect("write pgm");
    println!(
        "\nwrote fig2_spectrogram.pgm ({} x {} px)",
        spec.columns(),
        spec.bins()
    );
}
