//! Regenerates **Figure 3** of the paper: the same spectrogram as
//! Figure 2 after conversion to PAA representation ("constructed by
//! applying PAA to the frequency data comprising each column of the
//! original spectrogram").
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig3_paa [-- --seed N]
//! ```

use ensemble_bench::{header, Scale};
use ensemble_core::prelude::*;
use ensemble_core::render::seconds_ruler;
use river_dsp::spectrogram::{render_ascii, render_pgm, Spectrogram, SpectrogramConfig};
use river_sax::paa::paa_by_factor;

fn main() {
    let scale = Scale::from_args();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Wbnu, scale.seed);

    let spec = Spectrogram::compute(&clip.samples, SpectrogramConfig::production());
    let factor = ExtractorConfig::paper().paa_factor;
    let reduced = spec.map_columns(|col| paa_by_factor(col, factor));

    header("Figure 3: spectrogram after conversion to PAA representation");
    println!(
        "columns: {}  bins/column: {} -> {} (PAA x{factor})",
        spec.columns(),
        spec.bins(),
        reduced.first().map_or(0, Vec::len),
    );
    print!("{}", render_ascii(&reduced, 20));
    println!(
        "{}",
        seconds_ruler(clip.duration(), spec.columns().min(96), 5.0)
    );

    std::fs::write("fig3_paa_spectrogram.pgm", render_pgm(&reduced)).expect("write pgm");
    println!("\nwrote fig3_paa_spectrogram.pgm");
    println!("(compare against fig2_spectrogram.pgm: structure is preserved under PAA)");
}
