//! Regenerates **Figure 4** of the paper: conversion of a PAA-processed
//! signal to SAX symbols (alphabet 5, 18 segments, integer symbols).
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig4_sax
//! ```

use ensemble_bench::header;
use river_sax::gaussian::sax_breakpoints;
use river_sax::paa::paa;
use river_sax::sax::SaxEncoder;
use river_sax::znorm::znormalize;

fn main() {
    // The figure's example: a smooth signal over ~3 units, PAA to 18
    // segments, alphabet 5.
    let n = 360;
    let series: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * 3.0;
            (t * 2.1).sin() + 0.4 * (t * 5.3).cos()
        })
        .collect();

    let alphabet = 5;
    let segments = 18;
    let z = znormalize(&series);
    let reduced = paa(&z, segments);
    let enc = SaxEncoder::new(alphabet, segments);
    let word = enc.encode_paa(&reduced);

    header("Figure 4: conversion of a PAA-processed signal to SAX");
    println!("breakpoints (alphabet {alphabet}, equiprobable under N(0,1)):");
    for (i, b) in sax_breakpoints(alphabet).iter().enumerate() {
        println!("  {} | {} boundary at z = {b:+.4}", i + 1, i + 2);
    }

    // Plot the PAA steps against symbol bands.
    println!("\nPAA segments (z-normalized) and assigned symbols:");
    for (i, (&v, &s)) in reduced.iter().zip(word.symbols()).enumerate() {
        let bar_len = ((v + 2.0) / 4.0 * 40.0).clamp(0.0, 40.0) as usize;
        println!(
            "  seg {:>2}: {:>6.2} |{}{}| symbol {}",
            i + 1,
            v,
            "-".repeat(bar_len),
            " ".repeat(40 - bar_len),
            s + 1
        );
    }
    println!("\nSAX = {word}");
    println!("(paper's example reads: SAX = 2 3 2 4 3 3 3 4 1 5 3 1 2 4 4 3 4 3)");
}
