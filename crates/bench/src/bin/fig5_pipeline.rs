//! Regenerates **Figure 5** of the paper as an executable artifact: the
//! block diagram of pipeline operators for converting acoustic clips
//! into ensembles, with per-stage record statistics from a real run of
//! the streaming executor.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig5_pipeline \
//!     [-- --seed N] [-- --json] [-- --repeat N] [-- --workers N]
//! ```
//!
//! `--repeat N` streams the clip N times, each repetition its own clip
//! scope (an archive workload; named `--repeat` because `--clips` is
//! the suite-wide clips-per-species flag of [`Scale`]); `--workers N`
//! with N > 1 runs the scope-sharded data-parallel executor instead of
//! the single-lane fused driver — output is byte-identical, and
//! throughput scales with the worker count up to the machine's core
//! count.
//!
//! Worker counts beyond the host's available parallelism are clamped
//! to it (extra shards on a saturated machine only add queue-hopping
//! overhead and would *understate* pipeline throughput).
//!
//! With `--json`, prints a single machine-readable line
//! (`{"workers": …, "requested_workers": …, "clamped": …, "clips": …,
//! "cores": …, "records_per_sec": …, "bytes_in": …, "bytes_out": …,
//! "peak_burst": …}`) instead of the figure — `ci.sh` appends one line
//! per worker count to `BENCH_fig5.json`, the repo's
//! pipeline-throughput scaling trajectory, and `ci.sh bench-check`
//! gates on the workers=1 line against `BENCH_baseline.json`. `cores`
//! records the host parallelism and `clamped` flags a reduced worker
//! count, so a flat curve on a small machine is not mistaken for a
//! runtime regression.
//!
//! `--wire-json v1|v2` skips the pipeline run and instead measures the
//! sensor uplink: it encodes the clip's record stream with the chosen
//! wire format (v2 uses the compact f32 sample encoding) and prints
//! `{"wire_bytes_per_record": …, "format": "v1"|"v2"}`. `ci.sh`
//! appends both lines to `BENCH_fig5.json` and gates v2 at ≤ 50% of
//! v1 (DESIGN.md §13).

use dynamic_river::codec::{encode_frame_with, SampleEncoding, WireFormat};
use dynamic_river::CountingSink;
use ensemble_bench::{header, Scale};
use ensemble_core::ops::clip_to_records;
use ensemble_core::ops::clips_record_source;
use ensemble_core::pipeline::{full_pipeline, full_pipeline_sharded};
use ensemble_core::prelude::*;

/// Parses `--flag N` from the argument list.
fn flag_value(flag: &str) -> Option<usize> {
    flag_str(flag).and_then(|v| v.parse().ok())
}

/// Returns the argument following `--flag`, verbatim.
fn flag_str(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--wire-json v1|v2`: encodes the clip's record stream with one wire
/// format and prints bytes-per-record, the uplink cost a sensor pays
/// per record on the wire (v2 sends compact f32 samples).
fn wire_json(which: &str, cfg: &ExtractorConfig, samples: &[f64]) {
    let format = match which {
        "v1" => WireFormat::V1,
        "v2" => WireFormat::V2(SampleEncoding::F32),
        other => panic!("--wire-json expects v1 or v2, got {other}"),
    };
    let records = clip_to_records(samples, cfg.sample_rate, cfg.record_len, &[]);
    let wire_bytes: usize = records
        .iter()
        .map(|r| encode_frame_with(r, format).len())
        .sum();
    println!(
        "{{\"wire_bytes_per_record\": {:.1}, \"format\": \"{}\"}}",
        wire_bytes as f64 / records.len() as f64,
        which
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = Scale::from_args();
    let requested_workers = flag_value("--workers").unwrap_or(1).max(1);
    let clips = flag_value("--repeat").unwrap_or(1).max(1);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // More workers than cores only adds queue-hopping overhead — on a
    // 1-core CI host an unclamped `--workers 4` measures *slower* than
    // single-lane and poisons the perf trajectory. Clamp and say so.
    let workers = requested_workers.min(cores);
    let clamped = workers != requested_workers;
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, scale.seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let samples = &clip.samples[..usable];
    if let Some(which) = flag_str("--wire-json") {
        wire_json(&which, &cfg, samples);
        return;
    }
    // The archive: the clip repeated `clips` times, each repetition its
    // own clip scope — produced lazily, one clip in memory at a time.
    let archive = || {
        clips_record_source(
            std::iter::repeat_with(|| samples.to_vec()).take(clips),
            cfg.sample_rate,
            cfg.record_len,
        )
    };

    // The full Figure 5 graph; the driver itself supplies the per-stage
    // statistics the figure annotates.
    let mut sink = CountingSink::default();
    let t0 = std::time::Instant::now();
    let stats = if workers > 1 {
        full_pipeline_sharded(cfg, true, workers)
            .run(archive(), &mut sink)
            .expect("sharded pipeline run")
    } else {
        full_pipeline(cfg, true)
            .run_streaming(archive(), &mut sink)
            .expect("pipeline run")
    };
    let elapsed = t0.elapsed().as_secs_f64();

    if json {
        let bytes_in = stats.stages.first().map_or(0, |s| s.bytes_in);
        println!(
            "{{\"workers\": {}, \"requested_workers\": {}, \"clamped\": {}, \"clips\": {}, \"cores\": {}, \"records_per_sec\": {:.1}, \"bytes_in\": {}, \"bytes_out\": {}, \"peak_burst\": {}}}",
            workers,
            requested_workers,
            clamped,
            clips,
            cores,
            stats.source_records as f64 / elapsed,
            bytes_in,
            stats.sink_bytes,
            stats.max_peak_burst()
        );
        return;
    }

    header("Figure 5: pipeline operators converting acoustic clips into ensembles");
    println!("sensor platform -> readout -> storage -> wav2rec -> (this run starts here)");
    println!(
        "{} clip(s), {} worker shard(s){} [{}]\n",
        clips,
        workers,
        if clamped {
            format!(" (clamped from {requested_workers}: {cores} core(s) available)")
        } else {
            String::new()
        },
        if workers > 1 {
            "scope-sharded parallel executor"
        } else {
            "single-lane fused executor"
        }
    );
    println!(
        "{:<14} {:>10} {:>12} {:>8}   (records/bytes leaving the stage)",
        "operator", "records", "data bytes", "burst"
    );
    println!("{:<14} {:>10} {:>12}", "input", stats.source_records, "");
    for s in &stats.stages {
        println!(
            "{:<14} {:>10} {:>12} {:>8}",
            s.name, s.records_out, s.bytes_out, s.peak_burst
        );
    }
    println!(
        "\nfinal output: {} records ({} bytes) -> MESO; {}-dim patterns; peak per-shard burst {}; {:.0} records/s",
        sink.records,
        sink.bytes,
        cfg.paa_pattern_features(),
        stats.max_peak_burst(),
        stats.source_records as f64 / elapsed
    );
}
