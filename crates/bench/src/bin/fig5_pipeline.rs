//! Regenerates **Figure 5** of the paper as an executable artifact: the
//! block diagram of pipeline operators for converting acoustic clips
//! into ensembles, with per-stage record statistics from a real run.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig5_pipeline [-- --seed N]
//! ```

use dynamic_river::ops::RecordCounter;
use dynamic_river::Pipeline;
use ensemble_bench::{header, Scale};
use ensemble_core::ops::{
    clip_to_records, Cabs, Cutout, Cutter, Dft, Float2Cplx, LogScale, PaaOp, Rec2Vect,
    SaxAnomaly, TriggerOp, WelchWindow,
};
use ensemble_core::prelude::*;

fn main() {
    let scale = Scale::from_args();
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, scale.seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;

    // Build the full Figure 5 graph with a counter after every stage.
    let stages: [&str; 10] = [
        "saxanomaly",
        "trigger",
        "cutter",
        "welchwindow",
        "float2cplx",
        "dft",
        "cabs",
        "cutout",
        "paa",
        "rec2vect",
    ];
    let mut p = Pipeline::new();
    let mut handles = Vec::new();
    macro_rules! stage {
        ($op:expr) => {{
            p.add($op);
            let (counter, handle) = RecordCounter::new();
            p.add(counter);
            handles.push(handle);
        }};
    }
    stage!(SaxAnomaly::new(cfg));
    stage!(TriggerOp::new(cfg));
    stage!(Cutter::new(cfg));
    stage!(WelchWindow::new());
    stage!(Float2Cplx::new());
    stage!(Dft::new());
    stage!(Cabs::new());
    stage!(Cutout::new(cfg.cutout_low_hz, cfg.cutout_high_hz, cfg.sample_rate));
    stage!(PaaOp::new(cfg.paa_factor));
    stage!(LogScale::new());
    // rec2vect shares the final counter with logscale's output.
    p.add(Rec2Vect::new(cfg.pattern_records));
    let (final_counter, final_handle) = RecordCounter::new();
    p.add(final_counter);

    let input = clip_to_records(&clip.samples[..usable], cfg.sample_rate, cfg.record_len, &[]);
    let input_records = input.len();
    let out = p.run(input).expect("pipeline run");

    header("Figure 5: pipeline operators converting acoustic clips into ensembles");
    println!("sensor platform -> readout -> storage -> wav2rec -> (this run starts here)\n");
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "operator", "records", "data bytes", "(after stage)"
    );
    println!("{:<14} {:>10} {:>12}", "input", input_records, "");
    for (name, handle) in stages.iter().zip(&handles) {
        let s = handle.snapshot();
        println!(
            "{:<14} {:>10} {:>12}",
            name,
            s.total_records(),
            s.payload_bytes
        );
    }
    let s = final_handle.snapshot();
    println!("{:<14} {:>10} {:>12}", "rec2vect", s.total_records(), s.payload_bytes);
    println!(
        "\nfinal output: {} records, of which {} are {}-dim patterns -> MESO",
        out.len(),
        s.data_records,
        cfg.paa_pattern_features()
    );
}
