//! Regenerates **Figure 5** of the paper as an executable artifact: the
//! block diagram of pipeline operators for converting acoustic clips
//! into ensembles, with per-stage record statistics from a real run of
//! the streaming executor.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig5_pipeline \
//!     [-- --seed N] [-- --json] [-- --repeat N] [-- --workers N]
//! ```
//!
//! `--repeat N` streams the clip N times, each repetition its own clip
//! scope (an archive workload; named `--repeat` because `--clips` is
//! the suite-wide clips-per-species flag of [`Scale`]); `--workers N`
//! with N > 1 runs the scope-sharded data-parallel executor instead of
//! the single-lane fused driver — output is byte-identical, and
//! throughput scales with the worker count up to the machine's core
//! count.
//!
//! Worker counts beyond the host's available parallelism are clamped
//! to it (extra shards on a saturated machine only add queue-hopping
//! overhead and would *understate* pipeline throughput).
//!
//! With `--json`, prints a single machine-readable line
//! (`{"workers": …, "requested_workers": …, "clamped": …, "clips": …,
//! "cores": …, "records_per_sec": …, "bytes_in": …, "bytes_out": …,
//! "peak_burst": …}`) instead of the figure — `ci.sh` appends one line
//! per worker count to `BENCH_fig5.json`, the repo's
//! pipeline-throughput scaling trajectory, and `ci.sh bench-check`
//! gates on the workers=1 line against `BENCH_baseline.json`. `cores`
//! records the host parallelism and `clamped` flags a reduced worker
//! count, so a flat curve on a small machine is not mistaken for a
//! runtime regression.
//!
//! `--wire-json v1|v2` skips the pipeline run and instead measures the
//! sensor uplink: it encodes the clip's record stream with the chosen
//! wire format (v2 uses the compact f32 sample encoding) and prints
//! `{"wire_bytes_per_record": …, "format": "v1"|"v2"}`. `ci.sh`
//! appends both lines to `BENCH_fig5.json` and gates v2 at ≤ 50% of
//! v1 (DESIGN.md §13).
//!
//! `--spectral fused|oracle` selects the spectral implementation: the
//! fused `spectrum` operator (default) or the original four-operator
//! `welchwindow → float2cplx → dft → cabs` oracle chain; the `--json`
//! line reports the choice in its `"spectrum"` field.
//!
//! `--stage-json` skips the full run and instead times the spectral
//! chain stage by stage (cumulative operator-chain prefixes over the
//! same audio records, differenced), printing one
//! `{"stage": …, "ns_per_record": …}` line per stage — the per-stage
//! evidence behind the fused path's throughput claim (DESIGN.md §14).
//!
//! `--serve-json` skips the pipeline run and instead measures the
//! event-driven service layer (DESIGN.md §17): `--sessions M`
//! (default 16) concurrent loopback clients blast pre-encoded framed
//! clip streams at a `PipelineServer` multiplexing them over
//! `--workers N` (default 4, clamped to cores) execution threads, and
//! the best-of-3 end-to-end rate is printed as
//! `{"sessions": …, "workers": …, "records_per_sec": …}` — the line
//! `ci.sh serve-bench` appends to `BENCH_fig5.json`.
//!
//! `--telemetry-json` runs the same Figure 5 graph with full telemetry
//! ([`TelemetryConfig::Full`]) and prints the resulting
//! [`Snapshot`](dynamic_river::Snapshot) as one JSON object: per-stage
//! latency histograms (p50/p90/p99/max/mean ns per record, measured
//! in-run by the executor, not by prefix differencing) plus the
//! structured event log (scope opens, trigger fires, cutter runs,
//! shard-unit dispatch/merge). Honors `--workers` — with N > 1 the
//! sharded executor's merged snapshot is printed, whose per-stage
//! totals equal the single-lane run's by construction (DESIGN.md §16).

use dynamic_river::codec::{encode_frame_with, SampleEncoding, WireFormat};
use dynamic_river::{CountingSink, TelemetryConfig};
use ensemble_bench::{header, Scale};
use ensemble_core::ops::clip_to_records;
use ensemble_core::ops::clips_record_source;
use ensemble_core::pipeline::{full_pipeline_sharded_with, full_pipeline_with, SpectralPath};
use ensemble_core::prelude::*;

/// Parses `--flag N` from the argument list.
fn flag_value(flag: &str) -> Option<usize> {
    flag_str(flag).and_then(|v| v.parse().ok())
}

/// Returns the argument following `--flag`, verbatim.
fn flag_str(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--wire-json v1|v2`: encodes the clip's record stream with one wire
/// format and prints bytes-per-record, the uplink cost a sensor pays
/// per record on the wire (v2 sends compact f32 samples).
fn wire_json(which: &str, cfg: &ExtractorConfig, samples: &[f64]) {
    let format = match which {
        "v1" => WireFormat::V1,
        "v2" => WireFormat::V2(SampleEncoding::F32),
        other => panic!("--wire-json expects v1 or v2, got {other}"),
    };
    let records = clip_to_records(samples, cfg.sample_rate, cfg.record_len, &[]);
    let wire_bytes: usize = records
        .iter()
        .map(|r| encode_frame_with(r, format).len())
        .sum();
    println!(
        "{{\"wire_bytes_per_record\": {:.1}, \"format\": \"{}\"}}",
        wire_bytes as f64 / records.len() as f64,
        which
    );
}

/// `--stage-json`: per-stage cost of the spectral chain. Each
/// cumulative prefix of the oracle chain (and the fused `spectrum`
/// operator) is timed over the same pool of audio records; differencing
/// adjacent prefixes isolates one stage's ns/record. Best-of-3 runs,
/// with an empty pipeline timed as the framework baseline.
fn stage_json(cfg: &ExtractorConfig, samples: &[f64]) {
    use dynamic_river::{Operator, Payload, Pipeline, Record};
    use ensemble_core::ops::{Cabs, Dft, Float2Cplx, Spectrum, WelchWindow};
    use ensemble_core::subtype;

    let mut records: Vec<Record> = Vec::new();
    'fill: loop {
        for chunk in samples.chunks_exact(cfg.record_len) {
            records.push(Record::data(subtype::AUDIO, Payload::f64(chunk.to_vec())));
            if records.len() >= 1_000 {
                break 'fill;
            }
        }
    }
    let n = records.len() as f64;

    let time_chain = |ops: &dyn Fn() -> Vec<Box<dyn Operator>>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut p = Pipeline::new();
            for op in ops() {
                p.add_boxed(op);
            }
            let input = records.clone();
            let t0 = std::time::Instant::now();
            let out = p.run(input).expect("stage bench run");
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        best
    };

    let t_empty = time_chain(&Vec::new);
    let t_w = time_chain(&|| vec![Box::new(WelchWindow::new()) as Box<dyn Operator>]);
    let t_wf = time_chain(&|| {
        vec![
            Box::new(WelchWindow::new()) as Box<dyn Operator>,
            Box::new(Float2Cplx::new()),
        ]
    });
    let t_wfd = time_chain(&|| {
        vec![
            Box::new(WelchWindow::new()) as Box<dyn Operator>,
            Box::new(Float2Cplx::new()),
            Box::new(Dft::new()),
        ]
    });
    let t_wfdc = time_chain(&|| {
        vec![
            Box::new(WelchWindow::new()) as Box<dyn Operator>,
            Box::new(Float2Cplx::new()),
            Box::new(Dft::new()),
            Box::new(Cabs::new()),
        ]
    });
    let t_spec = time_chain(&|| vec![Box::new(Spectrum::new()) as Box<dyn Operator>]);

    let per = |hi: f64, lo: f64| ((hi - lo) / n * 1e9).max(0.0);
    for (stage, ns) in [
        ("welchwindow", per(t_w, t_empty)),
        ("float2cplx", per(t_wf, t_w)),
        ("dft", per(t_wfd, t_wf)),
        ("cabs", per(t_wfdc, t_wfd)),
        ("oracle_chain", per(t_wfdc, t_empty)),
        ("spectrum", per(t_spec, t_empty)),
    ] {
        println!("{{\"stage\": \"{stage}\", \"ns_per_record\": {ns:.0}}}");
    }
}

/// `--serve-json`: end-to-end throughput of the event-driven service
/// layer. `sessions` concurrent clients each push the same pre-encoded
/// framed clip stream over loopback TCP at a
/// [`PipelineServer`](dynamic_river::serve::PipelineServer)
/// running `workers` execution threads; the reported rate covers
/// accept, poll, decode, chain and graceful shutdown (best of 3 runs).
/// The workload mirrors the `serve_throughput` Criterion bench so the
/// JSON trajectory and the bench agree on what they measure.
fn serve_json(sessions: usize, workers: usize) {
    use dynamic_river::codec::{encode_frame, EOS_MAGIC};
    use dynamic_river::operator::NullSink;
    use dynamic_river::ops::MapPayload;
    use dynamic_river::serve::PipelineServer;
    use dynamic_river::{Payload, Pipeline, Record};
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    const CLIPS_PER_SESSION: usize = 4;
    const RECORDS_PER_CLIP: usize = 64;
    const SAMPLES_PER_RECORD: usize = 120;

    let mut bytes = Vec::new();
    let mut records_per_session = 0u64;
    for clip in 0..CLIPS_PER_SESSION {
        bytes.extend_from_slice(&encode_frame(&Record::open_scope(1, vec![])));
        records_per_session += 1;
        for i in 0..RECORDS_PER_CLIP {
            let samples: Vec<f64> = (0..SAMPLES_PER_RECORD)
                .map(|s| ((clip * RECORDS_PER_CLIP + i) * SAMPLES_PER_RECORD + s) as f64)
                .collect();
            bytes.extend_from_slice(&encode_frame(
                &Record::data(0, Payload::f64(samples)).with_seq(i as u64),
            ));
            records_per_session += 1;
        }
        bytes.extend_from_slice(&encode_frame(&Record::close_scope(1)));
        records_per_session += 1;
    }
    bytes.extend_from_slice(&EOS_MAGIC);
    let bytes = Arc::new(bytes);

    let chain = || {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("gain", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x *= 0.5);
        }));
        p
    };

    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut server = PipelineServer::from_pipeline(&chain()).expect("serve bench chain");
        server.set_max_sessions(sessions).set_workers(workers);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = server
            .start(listener, |_info| Box::new(NullSink))
            .expect("start server");
        let addr = handle.local_addr();
        let t0 = std::time::Instant::now();
        let clients: Vec<_> = (0..sessions)
            .map(|_| {
                let bytes = Arc::clone(&bytes);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    stream.write_all(&bytes).expect("send stream");
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        handle.wait_for_completed(sessions as u64);
        let report = handle.shutdown().expect("server report");
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.aggregate.source_records,
            records_per_session * sessions as u64
        );
        best = best.min(elapsed);
    }
    println!(
        "{{\"sessions\": {}, \"workers\": {}, \"records_per_sec\": {:.1}}}",
        sessions,
        workers,
        records_per_session as f64 * sessions as f64 / best
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = Scale::from_args();
    let requested_workers = flag_value("--workers").unwrap_or(1).max(1);
    let clips = flag_value("--repeat").unwrap_or(1).max(1);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // More workers than cores only adds queue-hopping overhead — on a
    // 1-core CI host an unclamped `--workers 4` measures *slower* than
    // single-lane and poisons the perf trajectory. Clamp and say so.
    let workers = requested_workers.min(cores);
    let clamped = workers != requested_workers;
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, scale.seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let samples = &clip.samples[..usable];
    if let Some(which) = flag_str("--wire-json") {
        wire_json(&which, &cfg, samples);
        return;
    }
    if std::env::args().any(|a| a == "--serve-json") {
        let sessions = flag_value("--sessions").unwrap_or(16).max(1);
        serve_json(
            sessions,
            flag_value("--workers").unwrap_or(4).max(1).min(cores),
        );
        return;
    }
    if std::env::args().any(|a| a == "--stage-json") {
        stage_json(&cfg, samples);
        return;
    }
    let spectral = match flag_str("--spectral").as_deref() {
        None | Some("fused") => SpectralPath::Fused,
        Some("oracle") => SpectralPath::Oracle,
        Some(other) => panic!("--spectral expects fused or oracle, got {other}"),
    };
    // The archive: the clip repeated `clips` times, each repetition its
    // own clip scope — produced lazily, one clip in memory at a time.
    let archive = || {
        clips_record_source(
            std::iter::repeat_with(|| samples.to_vec()).take(clips),
            cfg.sample_rate,
            cfg.record_len,
        )
    };

    if std::env::args().any(|a| a == "--telemetry-json") {
        let mut sink = CountingSink::default();
        let snapshot = if workers > 1 {
            let mut p = full_pipeline_sharded_with(cfg, true, workers, spectral);
            p.set_telemetry(TelemetryConfig::Full);
            // Keep the registry handle: `run` consumes the runtime, the
            // handle reads the shared histograms afterwards.
            let telemetry = p.telemetry();
            p.run(archive(), &mut sink).expect("sharded pipeline run");
            telemetry.snapshot()
        } else {
            let mut p = full_pipeline_with(cfg, true, spectral);
            p.set_telemetry(TelemetryConfig::Full);
            p.run_streaming(archive(), &mut sink).expect("pipeline run");
            p.telemetry_snapshot()
        };
        println!("{}", snapshot.to_json());
        return;
    }

    // The full Figure 5 graph; the driver itself supplies the per-stage
    // statistics the figure annotates.
    let mut sink = CountingSink::default();
    let t0 = std::time::Instant::now();
    let stats = if workers > 1 {
        full_pipeline_sharded_with(cfg, true, workers, spectral)
            .run(archive(), &mut sink)
            .expect("sharded pipeline run")
    } else {
        full_pipeline_with(cfg, true, spectral)
            .run_streaming(archive(), &mut sink)
            .expect("pipeline run")
    };
    let elapsed = t0.elapsed().as_secs_f64();

    if json {
        let bytes_in = stats.stages.first().map_or(0, |s| s.bytes_in);
        println!(
            "{{\"workers\": {}, \"requested_workers\": {}, \"clamped\": {}, \"clips\": {}, \"cores\": {}, \"records_per_sec\": {:.1}, \"bytes_in\": {}, \"bytes_out\": {}, \"peak_burst\": {}, \"spectrum\": \"{}\"}}",
            workers,
            requested_workers,
            clamped,
            clips,
            cores,
            stats.source_records as f64 / elapsed,
            bytes_in,
            stats.sink_bytes,
            stats.max_peak_burst(),
            match spectral {
                SpectralPath::Fused => "fused",
                SpectralPath::Oracle => "oracle",
            }
        );
        return;
    }

    header("Figure 5: pipeline operators converting acoustic clips into ensembles");
    println!("sensor platform -> readout -> storage -> wav2rec -> (this run starts here)");
    println!(
        "{} clip(s), {} worker shard(s){} [{}]\n",
        clips,
        workers,
        if clamped {
            format!(" (clamped from {requested_workers}: {cores} core(s) available)")
        } else {
            String::new()
        },
        if workers > 1 {
            "scope-sharded parallel executor"
        } else {
            "single-lane fused executor"
        }
    );
    println!(
        "{:<14} {:>10} {:>12} {:>8}   (records/bytes leaving the stage)",
        "operator", "records", "data bytes", "burst"
    );
    println!("{:<14} {:>10} {:>12}", "input", stats.source_records, "");
    for s in &stats.stages {
        println!(
            "{:<14} {:>10} {:>12} {:>8}",
            s.name, s.records_out, s.bytes_out, s.peak_burst
        );
    }
    println!(
        "\nfinal output: {} records ({} bytes) -> MESO; {}-dim patterns; peak per-shard burst {}; {:.0} records/s",
        sink.records,
        sink.bytes,
        cfg.paa_pattern_features(),
        stats.max_peak_burst(),
        stats.source_records as f64 / elapsed
    );
}
