//! Regenerates **Figure 5** of the paper as an executable artifact: the
//! block diagram of pipeline operators for converting acoustic clips
//! into ensembles, with per-stage record statistics from a real run of
//! the fused streaming executor.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig5_pipeline [-- --seed N] [-- --json]
//! ```
//!
//! With `--json`, prints a single machine-readable line
//! (`{"records_per_sec": …, "bytes_in": …, "bytes_out": …,
//! "peak_burst": …}`) instead of the figure — `ci.sh` captures it as
//! `BENCH_fig5.json`, the repo's pipeline-throughput trajectory.

use dynamic_river::CountingSink;
use ensemble_bench::{header, Scale};
use ensemble_core::ops::clip_record_source;
use ensemble_core::pipeline::full_pipeline;
use ensemble_core::prelude::*;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = Scale::from_args();
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, scale.seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;

    // The full Figure 5 graph; the streaming driver itself supplies the
    // per-stage statistics the figure annotates.
    let mut p = full_pipeline(cfg, true);
    let mut sink = CountingSink::default();
    let t0 = std::time::Instant::now();
    let stats = p
        .run_streaming(
            clip_record_source(
                clip.samples[..usable].iter().copied(),
                cfg.sample_rate,
                cfg.record_len,
                &[],
            ),
            &mut sink,
        )
        .expect("pipeline run");
    let elapsed = t0.elapsed().as_secs_f64();

    if json {
        let bytes_in = stats.stages.first().map_or(0, |s| s.bytes_in);
        println!(
            "{{\"records_per_sec\": {:.1}, \"bytes_in\": {}, \"bytes_out\": {}, \"peak_burst\": {}}}",
            stats.source_records as f64 / elapsed,
            bytes_in,
            stats.sink_bytes,
            stats.max_peak_burst()
        );
        return;
    }

    header("Figure 5: pipeline operators converting acoustic clips into ensembles");
    println!("sensor platform -> readout -> storage -> wav2rec -> (this run starts here)\n");
    println!(
        "{:<14} {:>10} {:>12} {:>8}   (records/bytes leaving the stage)",
        "operator", "records", "data bytes", "burst"
    );
    println!("{:<14} {:>10} {:>12}", "input", stats.source_records, "");
    for s in &stats.stages {
        println!(
            "{:<14} {:>10} {:>12} {:>8}",
            s.name, s.records_out, s.bytes_out, s.peak_burst
        );
    }
    println!(
        "\nfinal output: {} records ({} bytes) -> MESO; {}-dim patterns; peak stage burst {}",
        sink.records,
        sink.bytes,
        cfg.paa_pattern_features(),
        stats.max_peak_burst()
    );
}
