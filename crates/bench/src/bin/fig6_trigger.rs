//! Regenerates **Figure 6** of the paper: the trigger signal (top) and
//! the ensembles extracted from the acoustic signal (bottom).
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin fig6_trigger [-- --seed N]
//! ```

use ensemble_bench::{header, Scale};
use ensemble_core::prelude::*;
use ensemble_core::render::{ascii_oscillogram, ascii_spans, ascii_trigger, seconds_ruler};

fn main() {
    let scale = Scale::from_args();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Wbnu, scale.seed);
    let extractor = EnsembleExtractor::new(ExtractorConfig::paper());
    let trace = extractor.extract_with_trace(&clip.samples);

    header("Figure 6: trigger signal and ensembles extracted from the acoustic signal");
    println!(
        "clip: {:.0} s, {} ground-truth bout(s), {} ensemble(s) extracted\n",
        clip.duration(),
        clip.events.len(),
        trace.ensembles.len()
    );

    let width = 96;
    println!("Trigger value (1 = ^, 0 = _)");
    println!("{}", ascii_trigger(&trace.trigger, width));

    println!("\nEnsembles extracted (marked =):");
    let spans: Vec<(usize, usize)> = trace.ensembles.iter().map(|e| (e.start, e.end)).collect();
    println!("{}", ascii_spans(clip.samples.len(), &spans, width));

    println!("\nGround-truth song bouts (marked =):");
    let truth: Vec<(usize, usize)> = clip.events.iter().map(|e| (e.start, e.end)).collect();
    println!("{}", ascii_spans(clip.samples.len(), &truth, width));

    println!("\nAmplitude");
    print!("{}", ascii_oscillogram(&clip.samples, width, 11));
    println!("{}", seconds_ruler(clip.duration(), width, 5.0));

    for (i, e) in trace.ensembles.iter().enumerate() {
        let label = clip
            .label_for_range(e.start, e.end)
            .map_or("(no bird)", ensemble_core::SpeciesCode::code);
        println!(
            "ensemble {}: {:.2}s..{:.2}s ({} samples) -> {label}",
            i + 1,
            e.start as f64 / clip.sample_rate,
            e.end as f64 / clip.sample_rate,
            e.len()
        );
    }
}
