//! Regenerates the paper's §4 data-reduction claim: "extraction of
//! ensembles from acoustic clips reduced the amount of data that
//! required further processing by 80.6 %".
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin reduction [-- --full]
//! ```

use ensemble_bench::{header, Scale};
use ensemble_core::prelude::*;

fn main() {
    let scale = Scale::from_args();
    let corpus = Corpus::build(scale.corpus_config());

    header("Data reduction through ensemble extraction (paper: 80.6%)");
    println!("{}", corpus.reduction);
    println!(
        "validated ensembles: {} | rejected (non-bird): {}",
        corpus.ensembles.len(),
        corpus.rejected
    );
    println!(
        "\nmeasured reduction: {:.1}%   paper: 80.6%",
        corpus.reduction.reduction_percent()
    );
    let bytes_in = corpus.reduction.input_samples * 2; // 16-bit samples
    let bytes_kept = corpus.reduction.kept_samples * 2;
    println!(
        "equivalent PCM16 volume: {:.1} MB scanned -> {:.1} MB retained",
        bytes_in as f64 / 1e6,
        bytes_kept as f64 / 1e6
    );
}
