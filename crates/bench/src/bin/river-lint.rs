//! `river-lint`: static chain verification over every pipeline this
//! repository ships (DESIGN.md §15).
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin river-lint [-- --json]
//! ```
//!
//! Each chain is checked with [`Pipeline::check_with`] under the
//! profile every Figure 5 chain actually runs with — audio records
//! (`F64` payloads) arriving inside clip scopes — and every diagnostic
//! is printed in rustc style (`error[RL0002]: … --> stage 2: operator
//! `trigger``). The lint set covers the full Figure 5 chain in both
//! spectral paths (fused `spectrum` and the four-operator oracle), with
//! and without PAA, plus the extraction and featurization segments on
//! their own — which between them are the chains built by every
//! example (`quickstart`, `parallel_archive`, `anomaly_monitor`,
//! `distributed_pipeline`, `species_survey` all compose
//! `full_pipeline` / `EnsembleExtractor`).
//!
//! Exit status is non-zero if any chain produces an `error`-severity
//! diagnostic; warnings are reported but do not fail the lint. With
//! `--json`, prints one machine-readable line
//! (`{"chains": …, "errors": …, "warnings": …, "elapsed_ms": …}`)
//! instead of the report — `ci.sh lint-chains` appends it to
//! `BENCH_fig5.json` so the chain count is tracked commit-over-commit.

use dynamic_river::analyze::{CheckOptions, Severity};
use dynamic_river::{PayloadKind, Pipeline, RecordClass};
use ensemble_core::pipeline::{
    extraction_segment, featurization_segment_with, full_pipeline_with, SpectralPath,
};
use ensemble_core::{scope_type, subtype, ExtractorConfig};
use std::time::Instant;

/// The analysis profile shared by every chain in this repository:
/// audio records with `F64` sample payloads, delivered inside clip
/// scopes by `clip_to_records` / `wav2rec`.
fn audio_input() -> CheckOptions {
    CheckOptions {
        input: vec![RecordClass::of(subtype::AUDIO, PayloadKind::F64)],
        input_scope_types: Some(vec![scope_type::CLIP]),
        ..CheckOptions::default()
    }
}

/// Every chain the repository ships, labeled for the report.
fn chains(cfg: ExtractorConfig) -> Vec<(String, Pipeline)> {
    let mut out = vec![("extraction-segment".to_string(), extraction_segment(cfg))];
    for (path_name, path) in [
        ("fused", SpectralPath::Fused),
        ("oracle", SpectralPath::Oracle),
    ] {
        for with_paa in [false, true] {
            let paa = if with_paa { "+paa" } else { "-paa" };
            out.push((
                format!("full-pipeline/{path_name}{paa}"),
                full_pipeline_with(cfg, with_paa, path),
            ));
            out.push((
                format!("featurization-segment/{path_name}{paa}"),
                featurization_segment_with(cfg, with_paa, path),
            ));
        }
    }
    out
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let t0 = Instant::now();
    let opts = audio_input();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let all = chains(ExtractorConfig::default());
    let total = all.len();
    for (label, chain) in all {
        let diags = chain.check_with(&opts);
        let stages = chain.names().len();
        if !json {
            let verdict = if diags.iter().any(|d| d.severity == Severity::Error) {
                "FAIL"
            } else if diags.is_empty() {
                "ok"
            } else {
                "ok (warnings)"
            };
            println!("river-lint: {label} ({stages} stages): {verdict}");
        }
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if !json {
                println!("{}", d.render());
            }
        }
    }

    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    if json {
        println!(
            "{{\"lint_chains\": {total}, \"errors\": {errors}, \
             \"warnings\": {warnings}, \"elapsed_ms\": {elapsed_ms:.2}}}"
        );
    } else {
        println!(
            "river-lint: {total} chains, {errors} error(s), {warnings} warning(s) \
             in {elapsed_ms:.1} ms"
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
