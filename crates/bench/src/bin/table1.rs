//! Regenerates **Table 1** of the paper: species codes, common names,
//! pattern counts and ensemble counts.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin table1 [-- --full]
//! ```

use ensemble_bench::{build_corpus_and_datasets, header, Scale};
use ensemble_core::dataset::table1;
use ensemble_core::SpeciesCode;

/// The paper's Table 1 (patterns, ensembles) per species, for
/// side-by-side comparison.
const PAPER: [(usize, usize); 10] = [
    (229, 42),
    (672, 68),
    (318, 51),
    (272, 50),
    (223, 26),
    (338, 24),
    (395, 42),
    (211, 27),
    (339, 59),
    (676, 84),
];

fn main() {
    let scale = Scale::from_args();
    let (corpus, bundle) = build_corpus_and_datasets(&scale);
    let rows = table1(&corpus, &bundle);

    header("Table 1: Bird species codes, names and counts");
    println!(
        "{:<6} {:<26} {:>9} {:>10}   {:>12} {:>13}",
        "Code", "Common name", "Patterns", "Ensembles", "Paper patt.", "Paper ens."
    );
    let mut total_p = 0usize;
    let mut total_e = 0usize;
    for (row, paper) in rows.iter().zip(PAPER) {
        println!(
            "{:<6} {:<26} {:>9} {:>10}   {:>12} {:>13}",
            row.species.code(),
            row.species.common_name(),
            row.patterns,
            row.ensembles,
            paper.0,
            paper.1
        );
        total_p += row.patterns;
        total_e += row.ensembles;
    }
    println!(
        "{:<6} {:<26} {:>9} {:>10}   {:>12} {:>13}",
        "TOTAL",
        "",
        total_p,
        total_e,
        PAPER.iter().map(|p| p.0).sum::<usize>(),
        PAPER.iter().map(|p| p.1).sum::<usize>()
    );
    println!(
        "\nnote: synthetic corpus ({} clips/species, seed {}); counts scale with",
        scale.clips_per_species, scale.seed
    );
    println!("--clips; the paper column is the published field-recording corpus.");
    let _ = SpeciesCode::ALL;
}
