//! Regenerates **Table 2** of the paper: MESO classification accuracy
//! (leave-one-out and resubstitution) with training/testing times for
//! the four datasets (Pattern, Ensemble, PAA Pattern, PAA Ensemble).
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin table2 [-- --full] [--retrain]
//! ```
//!
//! `--retrain` uses the paper's literal leave-one-out procedure
//! (retraining MESO for every held-out item); the default uses exact
//! removal-based LOO, which evaluates the identical memory state at a
//! fraction of the cost (see `DESIGN.md`).

use ensemble_bench::{build_corpus_and_datasets, header, pct, Scale};
use ensemble_core::classify::paper_meso_config;
use meso::crossval::{leave_one_out, resubstitution, CrossValConfig, LooMode};
use meso::Dataset;

/// Paper Table 2 values: (LOO mean, LOO std, resub mean, resub std).
const PAPER: [(&str, f64, f64, f64, f64); 4] = [
    ("Pattern", 0.715, 0.009, 0.923, 0.031),
    ("Ensemble", 0.760, 0.011, 0.963, 0.028),
    ("PAA Pattern", 0.804, 0.003, 0.947, 0.008),
    ("PAA Ensemble", 0.822, 0.009, 0.972, 0.012),
];

fn main() {
    let scale = Scale::from_args();
    let retrain = std::env::args().any(|a| a == "--retrain");
    let (_corpus, bundle) = build_corpus_and_datasets(&scale);

    let datasets: [(&str, &Dataset); 4] = [
        ("Pattern", &bundle.pattern),
        ("Ensemble", &bundle.ensemble),
        ("PAA Pattern", &bundle.paa_pattern),
        ("PAA Ensemble", &bundle.paa_ensemble),
    ];

    header("Table 2: MESO classification results");
    println!(
        "{:<14} {:>16} {:>16} {:>10} {:>10}   {:>14} {:>14}",
        "Data set",
        "Leave-one-out",
        "Resubstitution",
        "Train(s)",
        "Test(s)",
        "Paper LOO",
        "Paper resub"
    );
    for ((name, ds), paper) in datasets.iter().zip(PAPER) {
        let cv_loo = CrossValConfig {
            iterations: scale.loo_iters,
            seed: scale.seed,
            loo_mode: if retrain {
                LooMode::Retrain
            } else {
                LooMode::Removal
            },
            meso: paper_meso_config(),
        };
        let cv_resub = CrossValConfig {
            iterations: scale.resub_iters,
            ..cv_loo
        };
        let loo = leave_one_out(ds, &cv_loo);
        let resub = resubstitution(ds, &cv_resub);
        println!(
            "{:<14} {:>16} {:>16} {:>10.1} {:>10.1}   {:>14} {:>14}",
            name,
            pct(loo.mean_accuracy(), loo.std_accuracy()),
            pct(resub.mean_accuracy(), resub.std_accuracy()),
            loo.train_time.as_secs_f64() + resub.train_time.as_secs_f64(),
            loo.test_time.as_secs_f64() + resub.test_time.as_secs_f64(),
            pct(paper.1, paper.2),
            pct(paper.3, paper.4),
        );
    }
    println!(
        "\nnote: LOO {} iterations, resubstitution {} iterations, {} LOO mode.",
        scale.loo_iters,
        scale.resub_iters,
        if retrain { "retrain" } else { "removal" }
    );
    println!("Expected shape: ensemble > pattern, PAA > raw, resubstitution > LOO.");
}
