//! Regenerates **Table 3** of the paper: the 10×10 confusion matrix for
//! PAA-ensemble leave-one-out classification.
//!
//! ```text
//! cargo run -p ensemble-bench --release --bin table3 [-- --full]
//! ```

use ensemble_bench::{build_corpus_and_datasets, header, Scale};
use ensemble_core::classify::paper_meso_config;
use ensemble_core::SpeciesCode;
use meso::crossval::{leave_one_out, CrossValConfig, LooMode};

/// The paper's Table 3 main diagonal (percent correct per species).
const PAPER_DIAGONAL: [f64; 10] = [70.3, 69.2, 86.0, 90.5, 79.3, 67.0, 90.8, 94.7, 90.5, 86.1];

fn main() {
    let scale = Scale::from_args();
    let (_corpus, bundle) = build_corpus_and_datasets(&scale);

    let cv = CrossValConfig {
        iterations: scale.loo_iters,
        seed: scale.seed,
        loo_mode: LooMode::Removal,
        meso: paper_meso_config(),
    };
    let stats = leave_one_out(&bundle.paa_ensemble, &cv);

    header("Table 3: Confusion matrix using PAA ensembles (row %, actual x predicted)");
    let names: Vec<&str> = SpeciesCode::ALL.iter().map(|s| s.code()).collect();
    println!("{}", stats.confusion.render(&names));
    println!(
        "overall accuracy: {:.1}%",
        100.0 * stats.confusion.accuracy()
    );

    println!("\ndiagonal vs paper:");
    println!("{:<6} {:>10} {:>10}", "Code", "This run", "Paper");
    for (i, species) in SpeciesCode::ALL.iter().enumerate() {
        println!(
            "{:<6} {:>9.1}% {:>9.1}%",
            species.code(),
            stats.confusion.percent(i, i),
            PAPER_DIAGONAL[i]
        );
    }
}
