//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts:
//!
//! - `--full` — paper-scale corpus and iteration counts (slow);
//! - `--clips N` — override clips per species;
//! - `--iters N` — override cross-validation repetitions;
//! - `--seed N` — override the corpus seed.
//!
//! Without flags, a reduced "quick" scale runs in seconds and reproduces
//! the qualitative shape of each result.

use ensemble_core::prelude::*;

/// Scale parameters resolved from the command line.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Clips synthesized per species.
    pub clips_per_species: usize,
    /// Leave-one-out repetitions (paper: 20).
    pub loo_iters: usize,
    /// Resubstitution repetitions (paper: 100).
    pub resub_iters: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Whether `--full` was passed.
    pub full: bool,
}

impl Scale {
    /// Parses `std::env::args`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let mut scale = if full {
            Scale {
                clips_per_species: 30,
                loo_iters: 20,
                resub_iters: 100,
                seed: 2007,
                full: true,
            }
        } else {
            Scale {
                clips_per_species: 8,
                loo_iters: 3,
                resub_iters: 5,
                seed: 2007,
                full: false,
            }
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Option<u64> { args.get(i + 1)?.parse().ok() };
            match args[i].as_str() {
                "--clips" => {
                    if let Some(v) = take(i) {
                        scale.clips_per_species = v as usize;
                    }
                }
                "--iters" => {
                    if let Some(v) = take(i) {
                        scale.loo_iters = v as usize;
                        scale.resub_iters = v as usize;
                    }
                }
                "--seed" => {
                    if let Some(v) = take(i) {
                        scale.seed = v;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// The corpus configuration for this scale.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            clips_per_species: self.clips_per_species,
            seed: self.seed,
            synth: SynthConfig::paper(),
            extractor: ExtractorConfig::paper(),
        }
    }
}

/// Builds the corpus and dataset bundle for a scale, printing progress.
pub fn build_corpus_and_datasets(scale: &Scale) -> (Corpus, DatasetBundle) {
    let t0 = std::time::Instant::now();
    eprintln!(
        "building corpus: {} clips/species x {} species ({} s of audio)...",
        scale.clips_per_species,
        SpeciesCode::ALL.len(),
        scale.clips_per_species * SpeciesCode::ALL.len() * 30
    );
    let corpus = Corpus::build(scale.corpus_config());
    eprintln!(
        "  {} ensembles validated, {} rejected, {:.1}% data reduction ({:.1?})",
        corpus.ensembles.len(),
        corpus.rejected,
        corpus.reduction.reduction_percent(),
        t0.elapsed()
    );
    let bundle = DatasetBundle::build(&corpus);
    eprintln!(
        "  {} patterns ({}-dim raw / {}-dim PAA), {} short ensembles skipped",
        bundle.ensemble.len(),
        bundle.ensemble.dim(),
        bundle.paa_ensemble.dim(),
        bundle.skipped_short
    );
    (corpus, bundle)
}

/// Prints a titled separator.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats `mean ± std` percentages like the paper's Table 2.
pub fn pct(mean: f64, std: f64) -> String {
    format!("{:.1}%±{:.1}%", 100.0 * mean, 100.0 * std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // from_args reads real argv (the test binary's); just check the
        // constructor paths stay consistent.
        let quick = Scale {
            clips_per_species: 8,
            loo_iters: 3,
            resub_iters: 5,
            seed: 2007,
            full: false,
        };
        let cfg = quick.corpus_config();
        assert_eq!(cfg.clips_per_species, 8);
        assert_eq!(cfg.seed, 2007);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.715, 0.009), "71.5%±0.9%");
    }
}
