//! Species classification glue: the MESO configuration used by the
//! paper-reproduction experiments, and a convenience classifier that
//! trains on a dataset bundle and recognizes whole ensembles by voting.

use crate::config::ExtractorConfig;
use crate::pipeline::featurize_ensemble;
use crate::species::SpeciesCode;
use meso::classifier::{DeltaPolicy, Meso, MesoConfig, QueryMode};
use meso::crossval::vote;
use meso::Dataset;

/// The MESO configuration calibrated for the acoustic datasets
/// (sensitivity δ at 0.35 of the running mean nearest-sphere distance,
/// sphere-majority queries). Used by every table/figure harness.
pub fn paper_meso_config() -> MesoConfig {
    MesoConfig {
        delta_policy: DeltaPolicy::RunningMean { factor: 0.35 },
        query_mode: QueryMode::SphereMajority,
    }
}

/// A trained species recognizer over ensembles.
///
/// # Example
///
/// ```no_run
/// use ensemble_core::classify::SpeciesClassifier;
/// use ensemble_core::prelude::*;
///
/// let corpus = Corpus::build(CorpusConfig::test_scale());
/// let bundle = DatasetBundle::build(&corpus);
/// let clf = SpeciesClassifier::train(&bundle.paa_ensemble, *corpus.config());
/// let clip = ClipSynthesizer::new(SynthConfig::paper()).clip(SpeciesCode::Noca, 999);
/// let extractor = EnsembleExtractor::new(ExtractorConfig::default());
/// for ensemble in extractor.extract(&clip.samples) {
///     if let Some(species) = clf.recognize(&ensemble.samples) {
///         println!("heard {species}");
///     }
/// }
/// ```
#[derive(Debug)]
pub struct SpeciesClassifier {
    memory: Meso,
    extractor: ExtractorConfig,
    with_paa: bool,
}

impl SpeciesClassifier {
    /// Trains a recognizer on a labeled dataset (patterns labeled by
    /// [`SpeciesCode::label`]). The dataset's feature dimension decides
    /// whether ensembles are featurized with PAA.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its dimension matches neither
    /// the raw nor the PAA pattern geometry of `corpus_config`.
    pub fn train(dataset: &Dataset, corpus_config: crate::dataset::CorpusConfig) -> Self {
        assert!(!dataset.is_empty(), "dataset must not be empty");
        let ext = corpus_config.extractor;
        let with_paa = if dataset.dim() == ext.paa_pattern_features() {
            true
        } else if dataset.dim() == ext.pattern_features() {
            false
        } else {
            panic!(
                "dataset dimension {} matches neither raw ({}) nor PAA ({}) geometry",
                dataset.dim(),
                ext.pattern_features(),
                ext.paa_pattern_features()
            );
        };
        let mut memory = Meso::new(dataset.dim(), paper_meso_config());
        for (features, label, _) in dataset.iter() {
            memory.train(features, label);
        }
        SpeciesClassifier {
            memory,
            extractor: ext,
            with_paa,
        }
    }

    /// Number of sensitivity spheres in the trained memory.
    pub fn sphere_count(&self) -> usize {
        self.memory.sphere_count()
    }

    /// Recognizes the species of one ensemble (vote across its
    /// patterns); `None` when the ensemble is too short to featurize.
    pub fn recognize(&self, ensemble_samples: &[f64]) -> Option<SpeciesCode> {
        let patterns = featurize_ensemble(ensemble_samples, &self.extractor, self.with_paa);
        let votes: Vec<usize> = patterns
            .iter()
            .filter_map(|p| self.memory.classify(p))
            .collect();
        vote(&votes).and_then(SpeciesCode::from_label)
    }

    /// Classifies a single pattern vector directly.
    pub fn classify_pattern(&self, features: &[f64]) -> Option<SpeciesCode> {
        self.memory
            .classify(features)
            .and_then(SpeciesCode::from_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Corpus, CorpusConfig, DatasetBundle};
    use crate::extract::EnsembleExtractor;
    use crate::synth::ClipSynthesizer;

    #[test]
    fn paper_config_shape() {
        let cfg = paper_meso_config();
        assert!(matches!(
            cfg.delta_policy,
            DeltaPolicy::RunningMean { factor } if (factor - 0.35).abs() < 1e-12
        ));
    }

    #[test]
    fn classifier_recognizes_training_species_better_than_chance() {
        let corpus_cfg = CorpusConfig::test_scale();
        let corpus = Corpus::build(corpus_cfg);
        let bundle = DatasetBundle::build(&corpus);
        let clf = SpeciesClassifier::train(&bundle.paa_ensemble, corpus_cfg);
        assert!(clf.sphere_count() > 0);

        // Recognize fresh clips (unseen seeds).
        let synth = ClipSynthesizer::new(corpus_cfg.synth);
        let extractor = EnsembleExtractor::new(corpus_cfg.extractor);
        let mut correct = 0usize;
        let mut total = 0usize;
        for &species in &SpeciesCode::ALL {
            let clip = synth.clip(species, 987_654);
            for ensemble in extractor.extract(&clip.samples) {
                if clip.label_for_range(ensemble.start, ensemble.end) != Some(species) {
                    continue; // reject non-bird ensembles like the listener
                }
                if let Some(predicted) = clf.recognize(&ensemble.samples) {
                    total += 1;
                    if predicted == species {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 0, "no ensembles recognized at all");
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy > 0.3,
            "accuracy {accuracy:.2} not better than chance ({correct}/{total})"
        );
    }

    #[test]
    #[should_panic(expected = "matches neither")]
    fn rejects_foreign_dimension() {
        let mut ds = Dataset::new(7);
        ds.push_ungrouped(vec![0.0; 7], 0);
        SpeciesClassifier::train(&ds, CorpusConfig::test_scale());
    }
}
