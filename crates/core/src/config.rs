//! Pipeline configuration.
//!
//! Defaults reproduce the paper's experimental parameters (§3–4): SAX
//! anomaly window 100 samples, alphabet 8, moving-average window 2250
//! samples, trigger threshold 5σ, cutout ≈[1.2 kHz, 9.6 kHz], optional
//! PAA ×10, patterns of 3 records = 0.125 s = 1050 features.
//!
//! The record geometry (20.16 kHz, 840-sample records, 24 Hz bins) is
//! reverse-engineered from the published feature arithmetic — see
//! `DESIGN.md`.

use river_sax::anomaly::{AnomalyConfig, Normalization};

/// Full configuration for ensemble extraction and featurization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractorConfig {
    /// Audio sample rate in Hz (20 160 in this reproduction).
    pub sample_rate: f64,
    /// Samples per pipeline record (840 ⇒ 24 Hz DFT bins).
    pub record_len: usize,
    /// SAX anomaly window size in samples (paper: 100).
    pub anomaly_window: usize,
    /// SAX alphabet size (paper: 8).
    pub alphabet: usize,
    /// Bitmap n-gram length (Kumar et al. use 1–3; 2 here).
    pub ngram: usize,
    /// Sliding window (samples) for streaming Z-normalization before
    /// symbol quantization; `0` selects whole-stream (global
    /// incremental) normalization. SAX Z-normalizes each subsequence
    /// (paper §2); a sliding window is the streaming equivalent and
    /// keeps the quiet-time score baseline independent of loud events.
    pub norm_window: usize,
    /// Moving-average window over anomaly scores (paper: 2250).
    pub ma_window: usize,
    /// Trigger threshold in standard deviations from μ₀ (paper: 5; "the
    /// number of standard deviations is specific to the particular data
    /// set or application").
    pub trigger_sigmas: f64,
    /// Once fired, the trigger stays high until the score remains
    /// within the band for this many consecutive samples — bridging
    /// syllable gaps inside one song bout.
    pub trigger_hold: usize,
    /// Low edge of the `cutout` band in Hz (paper: ≈1.2 kHz).
    pub cutout_low_hz: f64,
    /// High edge of the `cutout` band in Hz (paper: ≈9.6 kHz).
    pub cutout_high_hz: f64,
    /// PAA reduction factor for the PAA datasets (paper: 10).
    pub paa_factor: usize,
    /// Spectral records merged per pattern (paper: 3 ⇒ 0.125 s).
    pub pattern_records: usize,
    /// Insert 50 %-overlap records (`reslice`) before windowing. The
    /// figure pipelines enable this; the dataset geometry keeps it off
    /// so that 3 records span exactly 0.125 s (see `DESIGN.md`).
    pub reslice: bool,
    /// Apply logarithmic magnitude compression (`ln(1 + 100·x)`) to the
    /// spectral features. This "equalizes similar acoustic patterns that
    /// differ in signal strength" (the paper's stated reason for
    /// Z-normalization, §2) at the pattern level; see `DESIGN.md`.
    pub log_scale: bool,
    /// Minimum ensemble length in samples; shorter trigger bursts are
    /// discarded as noise.
    pub min_ensemble_samples: usize,
}

impl ExtractorConfig {
    /// The paper's parameters on the reproduction's 20.16 kHz geometry.
    pub fn paper() -> Self {
        ExtractorConfig {
            sample_rate: 20_160.0,
            record_len: 840,
            anomaly_window: 100,
            alphabet: 8,
            ngram: 2,
            norm_window: 8_400,
            ma_window: 2_250,
            trigger_sigmas: 3.0,
            trigger_hold: 4_200,
            cutout_low_hz: 1_200.0,
            cutout_high_hz: 9_600.0,
            paa_factor: 10,
            pattern_records: 3,
            reslice: false,
            log_scale: true,
            min_ensemble_samples: 840,
        }
    }

    /// The [`AnomalyConfig`] slice of this configuration.
    pub fn anomaly_config(&self) -> AnomalyConfig {
        AnomalyConfig {
            window: self.anomaly_window,
            alphabet: self.alphabet,
            ngram: self.ngram,
            normalization: if self.norm_window == 0 {
                Normalization::Global
            } else {
                Normalization::Sliding(self.norm_window)
            },
        }
    }

    /// DFT bin width in Hz for this geometry.
    pub fn bin_hz(&self) -> f64 {
        self.sample_rate / self.record_len as f64
    }

    /// Index of the first kept DFT bin (`cutout` low edge).
    pub fn cutout_low_bin(&self) -> usize {
        (self.cutout_low_hz / self.bin_hz()).round() as usize
    }

    /// One past the last kept DFT bin (`cutout` high edge).
    pub fn cutout_high_bin(&self) -> usize {
        (self.cutout_high_hz / self.bin_hz()).round() as usize
    }

    /// Kept bins per record after `cutout`.
    pub fn bins_per_record(&self) -> usize {
        self.cutout_high_bin() - self.cutout_low_bin()
    }

    /// Features per merged pattern without PAA (the paper's 1050).
    pub fn pattern_features(&self) -> usize {
        self.bins_per_record() * self.pattern_records
    }

    /// Features per merged pattern with PAA (the paper's 105).
    pub fn paa_pattern_features(&self) -> usize {
        self.bins_per_record().div_ceil(self.paa_factor) * self.pattern_records
    }

    /// Seconds of audio represented by one pattern (the paper's 0.125 s
    /// when `reslice` is off).
    pub fn pattern_seconds(&self) -> f64 {
        (self.pattern_records * self.record_len) as f64 / self.sample_rate
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero lengths, inverted
    /// cutout band, band beyond Nyquist).
    pub fn validate(&self) {
        assert!(self.sample_rate > 0.0, "sample_rate must be positive");
        assert!(self.record_len > 0, "record_len must be non-zero");
        assert!(self.anomaly_window > 0, "anomaly_window must be non-zero");
        assert!(self.ma_window > 0, "ma_window must be non-zero");
        assert!(self.trigger_sigmas > 0.0, "trigger_sigmas must be positive");
        assert!(
            self.cutout_low_hz < self.cutout_high_hz,
            "cutout band inverted"
        );
        assert!(
            self.cutout_high_hz <= self.sample_rate / 2.0,
            "cutout band beyond Nyquist"
        );
        assert!(self.paa_factor > 0, "paa_factor must be non-zero");
        assert!(self.pattern_records > 0, "pattern_records must be non-zero");
    }
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_reproduces_published_numbers() {
        let c = ExtractorConfig::paper();
        c.validate();
        assert_eq!(c.bin_hz(), 24.0);
        assert_eq!(c.cutout_low_bin(), 50); // 1.2 kHz
        assert_eq!(c.cutout_high_bin(), 400); // 9.6 kHz
        assert_eq!(c.bins_per_record(), 350);
        assert_eq!(c.pattern_features(), 1_050); // paper §4
        assert_eq!(c.paa_pattern_features(), 105); // paper §4
        assert!((c.pattern_seconds() - 0.125).abs() < 1e-12); // paper §4
    }

    #[test]
    fn anomaly_config_mirrors_fields() {
        let c = ExtractorConfig::paper();
        let a = c.anomaly_config();
        assert_eq!(a.window, 100);
        assert_eq!(a.alphabet, 8);
    }

    #[test]
    #[should_panic(expected = "cutout band inverted")]
    fn validate_rejects_inverted_band() {
        let c = ExtractorConfig {
            cutout_low_hz: 9_600.0,
            cutout_high_hz: 1_200.0,
            ..ExtractorConfig::paper()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "beyond Nyquist")]
    fn validate_rejects_band_beyond_nyquist() {
        let c = ExtractorConfig {
            cutout_high_hz: 9_000_000.0,
            ..ExtractorConfig::paper()
        };
        c.validate();
    }
}
