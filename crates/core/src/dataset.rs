//! Corpus generation and the four experimental datasets of the paper's
//! §4: *Pattern*, *Ensemble*, *PAA Pattern* and *PAA Ensemble*.
//!
//! A corpus is built by synthesizing clips per species, extracting
//! ensembles, and labeling each ensemble from the synthesizer's ground
//! truth — the stand-in for the paper's "ensembles produced by the
//! `cutter` operator were validated by a human listener as being a bird
//! vocalization". Ensembles overlapping no song bout are rejected, like
//! the listener rejecting wind/human noise.

use crate::config::ExtractorConfig;
use crate::extract::{Ensemble, EnsembleExtractor};
use crate::pipeline::featurize_ensemble;
use crate::reduction::ReductionStats;
use crate::species::SpeciesCode;
use crate::synth::{ClipSynthesizer, SynthConfig};
use meso::Dataset;

/// Parameters for corpus construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Clips synthesized per species.
    pub clips_per_species: usize,
    /// Base RNG seed; clip `c` of species `s` uses a seed derived from
    /// it deterministically.
    pub seed: u64,
    /// Clip synthesis parameters.
    pub synth: SynthConfig,
    /// Extraction parameters.
    pub extractor: ExtractorConfig,
}

impl CorpusConfig {
    /// Paper-magnitude corpus: enough 30 s clips that ensemble counts
    /// land in the range of the paper's Table 1 (tens per species).
    pub fn paper_scale() -> Self {
        CorpusConfig {
            clips_per_species: 30,
            seed: 2007,
            synth: SynthConfig::paper(),
            extractor: ExtractorConfig::paper(),
        }
    }

    /// Small, fast corpus for tests and quick runs: short clips, few per
    /// species.
    pub fn test_scale() -> Self {
        CorpusConfig {
            clips_per_species: 2,
            seed: 7,
            synth: SynthConfig {
                clip_seconds: 10.0,
                ..SynthConfig::paper()
            },
            extractor: ExtractorConfig::paper(),
        }
    }
}

/// One validated (species-labeled) ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledEnsemble {
    /// Ground-truth species.
    pub species: SpeciesCode,
    /// Which clip (0-based, within the species) it came from.
    pub clip_index: usize,
    /// The extracted ensemble.
    pub ensemble: Ensemble,
}

/// A fully built corpus: validated ensembles plus extraction
/// accounting.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The validated ensembles, grouped by construction order.
    pub ensembles: Vec<LabeledEnsemble>,
    /// Data-reduction accounting over every clip scanned.
    pub reduction: ReductionStats,
    /// Ensembles rejected by validation (no ground-truth overlap — the
    /// "not a bird" pile).
    pub rejected: usize,
    config: CorpusConfig,
}

impl Corpus {
    /// Synthesizes, extracts and validates a corpus. Deterministic for
    /// a given configuration.
    pub fn build(config: CorpusConfig) -> Corpus {
        let synth = ClipSynthesizer::new(config.synth);
        let extractor = EnsembleExtractor::new(config.extractor);
        let mut ensembles = Vec::new();
        let mut reduction = ReductionStats::default();
        let mut rejected = 0usize;
        for &species in &SpeciesCode::ALL {
            for clip_index in 0..config.clips_per_species {
                let seed = config
                    .seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add(clip_index as u64);
                let clip = synth.clip(species, seed);
                let extracted = extractor.extract(&clip.samples);
                let kept: usize = extracted.iter().map(Ensemble::len).sum();
                reduction.record_clip(clip.samples.len(), kept);
                for ensemble in extracted {
                    match clip.label_for_range(ensemble.start, ensemble.end) {
                        Some(label) if label == species => {
                            ensembles.push(LabeledEnsemble {
                                species,
                                clip_index,
                                ensemble,
                            });
                        }
                        _ => rejected += 1,
                    }
                }
            }
        }
        reduction.record_ensembles(ensembles.len() + rejected);
        Corpus {
            ensembles,
            reduction,
            rejected,
            config,
        }
    }

    /// The configuration the corpus was built with.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of validated ensembles per species (Table 1's "Ensembles"
    /// column), in [`SpeciesCode::ALL`] order.
    pub fn ensembles_per_species(&self) -> [usize; 10] {
        let mut counts = [0usize; 10];
        for e in &self.ensembles {
            counts[e.species.label()] += 1;
        }
        counts
    }
}

/// The four datasets of the paper's Table 2. Groups correspond to
/// ensembles; the pattern datasets discard grouping ("ensemble grouping
/// is not retained", §4).
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Ensemble data set (grouped patterns, 1050 features).
    pub ensemble: Dataset,
    /// Pattern data set (ungrouped, 1050 features).
    pub pattern: Dataset,
    /// PAA ensemble data set (grouped, 105 features).
    pub paa_ensemble: Dataset,
    /// PAA pattern data set (ungrouped, 105 features).
    pub paa_pattern: Dataset,
    /// Ensembles that produced no complete pattern (shorter than
    /// `pattern_records` records) and were skipped.
    pub skipped_short: usize,
}

impl DatasetBundle {
    /// Featurizes every corpus ensemble into the four datasets.
    pub fn build(corpus: &Corpus) -> DatasetBundle {
        let cfg = &corpus.config().extractor;
        let mut ensemble_ds = Dataset::new(cfg.pattern_features());
        let mut paa_ds = Dataset::new(cfg.paa_pattern_features());
        let mut skipped = 0usize;
        for le in &corpus.ensembles {
            let raw = featurize_ensemble(&le.ensemble.samples, cfg, false);
            if raw.is_empty() {
                skipped += 1;
                continue;
            }
            let paa = featurize_ensemble(&le.ensemble.samples, cfg, true);
            debug_assert_eq!(raw.len(), paa.len());
            let label = le.species.label();
            let g_raw = ensemble_ds.push_group();
            let g_paa = paa_ds.push_group();
            for features in raw {
                ensemble_ds.push(features, label, g_raw);
            }
            for features in paa {
                paa_ds.push(features, label, g_paa);
            }
        }
        DatasetBundle {
            pattern: ensemble_ds.ungrouped(),
            paa_pattern: paa_ds.ungrouped(),
            ensemble: ensemble_ds,
            paa_ensemble: paa_ds,
            skipped_short: skipped,
        }
    }

    /// Pattern count per species (Table 1's "Patterns" column), in
    /// [`SpeciesCode::ALL`] order.
    pub fn patterns_per_species(&self) -> [usize; 10] {
        let mut counts = [0usize; 10];
        for i in 0..self.ensemble.len() {
            counts[self.ensemble.label(i)] += 1;
        }
        counts
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Species code.
    pub species: SpeciesCode,
    /// Pattern count.
    pub patterns: usize,
    /// Ensemble count.
    pub ensembles: usize,
}

/// Assembles Table 1 from a corpus and its dataset bundle.
pub fn table1(corpus: &Corpus, bundle: &DatasetBundle) -> Vec<Table1Row> {
    let patterns = bundle.patterns_per_species();
    // Count only ensembles that contributed at least one pattern, to
    // match the paper's "each ensemble comprises one or more patterns".
    let mut ensembles = [0usize; 10];
    for g in 0..bundle.ensemble.group_count() {
        if let Some(label) = bundle.ensemble.group_label(g) {
            ensembles[label] += 1;
        }
    }
    let _ = corpus;
    SpeciesCode::ALL
        .iter()
        .map(|&species| Table1Row {
            species,
            patterns: patterns[species.label()],
            ensembles: ensembles[species.label()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::build(CorpusConfig::test_scale())
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.ensembles.len(), b.ensembles.len());
        assert_eq!(a.rejected, b.rejected);
        for (x, y) in a.ensembles.iter().zip(&b.ensembles) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn corpus_extracts_labeled_ensembles() {
        let corpus = small_corpus();
        assert!(
            corpus.ensembles.len() >= 10,
            "only {} ensembles",
            corpus.ensembles.len()
        );
        // Most species should be represented even in the tiny corpus.
        let covered = corpus
            .ensembles_per_species()
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert!(covered >= 6, "only {covered} species covered");
    }

    #[test]
    fn reduction_in_paper_ballpark() {
        let corpus = small_corpus();
        let r = corpus.reduction.reduction_percent();
        // Paper: 80.6 %. The synthetic corpus should be within a broad
        // band of that.
        assert!((55.0..99.5).contains(&r), "reduction {r}%");
    }

    #[test]
    fn bundle_has_paper_feature_geometry() {
        let corpus = small_corpus();
        let bundle = DatasetBundle::build(&corpus);
        assert_eq!(bundle.ensemble.dim(), 1_050);
        assert_eq!(bundle.paa_ensemble.dim(), 105);
        assert_eq!(bundle.pattern.dim(), 1_050);
        assert!(!bundle.ensemble.is_empty());
        // The PAA and raw bundles describe the same patterns.
        assert_eq!(bundle.ensemble.len(), bundle.paa_ensemble.len());
        assert_eq!(bundle.pattern.len(), bundle.ensemble.len());
    }

    #[test]
    fn pattern_dataset_is_ungrouped_version() {
        let corpus = small_corpus();
        let bundle = DatasetBundle::build(&corpus);
        assert_eq!(bundle.pattern.group_count(), bundle.pattern.len());
        assert!(bundle.ensemble.group_count() <= bundle.ensemble.len());
        for i in 0..bundle.pattern.len() {
            assert_eq!(bundle.pattern.label(i), bundle.ensemble.label(i));
        }
    }

    #[test]
    fn table1_totals_match_bundle() {
        let corpus = small_corpus();
        let bundle = DatasetBundle::build(&corpus);
        let rows = table1(&corpus, &bundle);
        assert_eq!(rows.len(), 10);
        let total_patterns: usize = rows.iter().map(|r| r.patterns).sum();
        let total_ensembles: usize = rows.iter().map(|r| r.ensembles).sum();
        assert_eq!(total_patterns, bundle.ensemble.len());
        assert_eq!(total_ensembles, bundle.ensemble.group_count());
        for r in &rows {
            assert!(
                r.patterns >= r.ensembles,
                "{}: {} patterns < {} ensembles",
                r.species,
                r.patterns,
                r.ensembles
            );
        }
    }

    #[test]
    fn every_group_is_single_species() {
        let corpus = small_corpus();
        let bundle = DatasetBundle::build(&corpus);
        let members = bundle.ensemble.group_members();
        for group in members {
            let labels: std::collections::HashSet<usize> =
                group.iter().map(|&i| bundle.ensemble.label(i)).collect();
            assert!(labels.len() <= 1);
        }
    }
}
