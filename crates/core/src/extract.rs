//! High-level ensemble extraction: the `saxanomaly` → `trigger` →
//! `cutter` chain as one convenient call over raw samples.
//!
//! "The moving average of the SAX anomaly score … is output by
//! `saxanomaly` … The `trigger` operator transforms the anomaly score
//! into a trigger signal that has the discrete values of either 0 or 1.
//! The `trigger` operator is adaptive in that it incrementally computes
//! an estimate of the mean anomaly score, μ₀, for values when the
//! trigger value is 0. `Trigger` emits a value of 1 when the anomaly
//! score is more than 5 standard deviations from μ₀ … When the trigger
//! signal transitions from 0 to 1, `cutter` emits an `OpenScope` record
//! … Each ensemble comprises values from the original acoustic signal
//! that correspond to when the trigger value is 1" (paper §3).

use crate::config::ExtractorConfig;
use dynamic_river::error::PipelineError;
use dynamic_river::serve::{PipelineServer, ServerHandle, SessionInfo, SessionSink};
use dynamic_river::telemetry::TelemetryConfig;
use dynamic_river::SampleBuf;
use river_dsp::stats::{MovingAverage, Welford};
use river_sax::anomaly::BitmapAnomaly;
use std::net::TcpListener;

/// One extracted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    /// Index of the first sample (within the source clip).
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// The ensemble's samples, as a shared buffer: cloning an
    /// `Ensemble` (dataset construction, cross-validation resampling)
    /// is O(1) and never copies audio. Dereferences to `&[f64]`.
    pub samples: SampleBuf,
}

impl Ensemble {
    /// Ensemble length in samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the ensemble holds no samples (never produced by the
    /// extractor).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds at `sample_rate`.
    pub fn duration(&self, sample_rate: f64) -> f64 {
        self.samples.len() as f64 / sample_rate
    }
}

/// Per-sample traces from an extraction run — the data behind the
/// paper's Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionTrace {
    /// Smoothed anomaly score per sample.
    pub scores: Vec<f64>,
    /// Trigger value (0 or 1) per sample.
    pub trigger: Vec<u8>,
    /// The extracted ensembles.
    pub ensembles: Vec<Ensemble>,
}

/// The adaptive trigger: estimates μ₀/σ₀ of the smoothed anomaly score
/// *while the trigger is 0* and fires when the score is "more than 5
/// standard deviations **from** μ₀" (paper §3) — a two-sided test.
///
/// Two-sidedness matters: at the SAX-bitmap level, broadband noise has a
/// stable, *positive* baseline (multinomial sampling noise between the
/// lag/lead matrices), song onsets push the score above it, and
/// sustained tonal vocalizations *concentrate* the symbol distribution
/// and pull the score below it.
#[derive(Debug, Clone)]
pub struct AdaptiveTrigger {
    sigmas: f64,
    quiet: Welford,
    state: bool,
    warmup: u64,
    seen: u64,
    hold: u64,
    calm: u64,
}

impl AdaptiveTrigger {
    /// Creates a trigger with threshold `sigmas` standard deviations;
    /// `warmup` initial samples never fire (lets the anomaly detector
    /// and smoother settle).
    pub fn new(sigmas: f64, warmup: u64) -> Self {
        Self::with_hold(sigmas, warmup, 0)
    }

    /// Like [`new`](Self::new), but once fired the trigger stays high
    /// until the score remains inside the band for `hold` consecutive
    /// samples — bridging the quiet gaps between a song bout's
    /// syllables so one bout yields one ensemble rather than fragments.
    pub fn with_hold(sigmas: f64, warmup: u64, hold: u64) -> Self {
        AdaptiveTrigger {
            sigmas,
            quiet: Welford::new(),
            state: false,
            warmup,
            seen: 0,
            hold,
            calm: 0,
        }
    }

    /// Current trigger value.
    pub fn state(&self) -> bool {
        self.state
    }

    /// The quiet-score mean μ₀ estimated so far.
    pub fn mu0(&self) -> f64 {
        self.quiet.mean()
    }

    /// The half-width of the firing band around μ₀.
    pub fn band(&self) -> f64 {
        let sigma = self
            .quiet
            .population_std_dev()
            // σ floor: on extremely flat noise the 5σ band collapses to
            // nothing and quantization dust would fire the trigger.
            .max(0.02 * self.quiet.mean());
        self.sigmas * sigma
    }

    /// Consumes one smoothed score, returning the new trigger value.
    pub fn push(&mut self, score: f64) -> bool {
        self.seen += 1;
        if self.seen <= self.warmup {
            self.quiet.push(score);
            self.state = false;
            return false;
        }
        let deviation = (score - self.quiet.mean()).abs();
        if self.state {
            // Falls back to 0 when the score stays inside the band for
            // `hold` consecutive samples.
            if deviation <= self.band() {
                self.calm += 1;
                if self.calm > self.hold {
                    self.state = false;
                    self.calm = 0;
                    self.quiet.push(score);
                }
            } else {
                self.calm = 0;
            }
        } else if deviation > self.band() && self.quiet.count() > 0 {
            self.state = true;
            self.calm = 0;
        } else {
            // Only quiet samples update μ₀/σ₀ (paper §3).
            self.quiet.push(score);
        }
        self.state
    }
}

/// Runs the extraction chain over raw audio.
///
/// # Example
///
/// ```
/// use ensemble_core::prelude::*;
///
/// let clip = ClipSynthesizer::new(SynthConfig::short_test()).clip(SpeciesCode::Rwbl, 3);
/// let ensembles = EnsembleExtractor::new(ExtractorConfig::default()).extract(&clip.samples);
/// for e in &ensembles {
///     assert!(e.len() >= 840); // min_ensemble_samples default
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EnsembleExtractor {
    config: ExtractorConfig,
}

impl EnsembleExtractor {
    /// Creates an extractor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`ExtractorConfig::validate`]).
    pub fn new(config: ExtractorConfig) -> Self {
        config.validate();
        EnsembleExtractor { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Extracts ensembles from `samples`.
    pub fn extract(&self, samples: &[f64]) -> Vec<Ensemble> {
        self.extract_with_trace(samples).ensembles
    }

    /// Extracts ensembles and returns the full per-sample traces
    /// (Figure 6).
    pub fn extract_with_trace(&self, samples: &[f64]) -> ExtractionTrace {
        let mut stream = self.extract_stream();
        let mut scores = Vec::with_capacity(samples.len());
        let mut trig = Vec::with_capacity(samples.len());
        let mut ensembles = Vec::new();
        for &x in samples {
            let step = stream.push_sample(x);
            scores.push(step.score);
            trig.push(u8::from(step.triggered));
            if let Some(e) = step.completed {
                ensembles.push(e);
            }
        }
        // Trigger still high at end of clip: close the dangling ensemble
        // (the record pipeline emits CloseScope at clip close).
        ensembles.extend(stream.finish());
        ExtractionTrace {
            scores,
            trigger: trig,
            ensembles,
        }
    }

    /// Starts an incremental extraction over a stream of sample chunks.
    ///
    /// The returned [`StreamingExtractor`] ingests samples as they
    /// arrive and yields each ensemble the moment its trigger releases,
    /// so a sensor feed of unbounded length is processed with memory
    /// bounded by the detector windows plus the currently open ensemble
    /// — never by stream length. [`extract`](Self::extract) and
    /// [`extract_with_trace`](Self::extract_with_trace) are wrappers
    /// over this same state machine, so the two paths agree
    /// sample-for-sample whatever the chunking.
    ///
    /// # Example
    ///
    /// ```
    /// use ensemble_core::prelude::*;
    ///
    /// let clip = ClipSynthesizer::new(SynthConfig::short_test()).clip(SpeciesCode::Rwbl, 3);
    /// let extractor = EnsembleExtractor::new(ExtractorConfig::default());
    ///
    /// let mut stream = extractor.extract_stream();
    /// let mut streamed = Vec::new();
    /// for chunk in clip.samples.chunks(512) {
    ///     stream.push_chunk(chunk, &mut streamed);
    /// }
    /// streamed.extend(stream.finish());
    /// assert_eq!(streamed, extractor.extract(&clip.samples));
    /// ```
    pub fn extract_stream(&self) -> StreamingExtractor {
        let c = self.config;
        // Let the detector windows fill and the smoother settle before
        // the trigger may fire.
        let warmup = (2 * c.anomaly_window + c.ma_window) as u64;
        StreamingExtractor {
            config: c,
            detector: BitmapAnomaly::new(c.anomaly_config()),
            smoother: MovingAverage::new(c.ma_window),
            trigger: AdaptiveTrigger::with_hold(c.trigger_sigmas, warmup, c.trigger_hold as u64),
            pos: 0,
            open: None,
        }
    }

    /// Extracts ensembles from many independent clips in parallel:
    /// clip *i* is processed by worker *i* mod `workers`, each through
    /// its own fresh [`StreamingExtractor`], and the results come back
    /// in clip order. Deterministic: `result[i]` is exactly what
    /// `extract(&clips[i])` on a fresh extractor returns, whatever the
    /// worker count — the extractor-level counterpart of the
    /// record-level sharded runtime (`Pipeline::run_sharded`), where a
    /// clip scope is likewise the unit of partitioning.
    ///
    /// Ensemble positions are clip-local (each clip restarts the stream
    /// clock), matching per-clip extraction rather than concatenated
    /// extraction.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use ensemble_core::prelude::*;
    ///
    /// let synth = ClipSynthesizer::new(SynthConfig::short_test());
    /// let clips: Vec<Vec<f64>> = (0..4)
    ///     .map(|i| synth.clip(SpeciesCode::Rwbl, i).samples)
    ///     .collect();
    /// let ex = EnsembleExtractor::new(ExtractorConfig::default());
    /// let sharded = ex.extract_stream_sharded(&clips, 2);
    /// assert_eq!(sharded.len(), 4);
    /// for (i, per_clip) in sharded.iter().enumerate() {
    ///     assert_eq!(per_clip, &ex.extract(&clips[i]));
    /// }
    /// ```
    pub fn extract_stream_sharded(
        &self,
        clips: &[impl AsRef<[f64]> + Sync],
        workers: usize,
    ) -> Vec<Vec<Ensemble>> {
        assert!(workers > 0, "workers must be non-zero");
        let workers = workers.min(clips.len()).max(1);
        let mut results: Vec<Vec<Ensemble>> = vec![Vec::new(); clips.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (i, clip) in clips.iter().enumerate().skip(w).step_by(workers) {
                        let mut stream = self.extract_stream();
                        let mut ensembles = Vec::new();
                        stream.push_chunk(clip.as_ref(), &mut ensembles);
                        ensembles.extend(stream.finish());
                        mine.push((i, ensembles));
                    }
                    mine
                }));
            }
            for handle in handles {
                for (i, ensembles) in handle.join().expect("shard worker panicked") {
                    results[i] = ensembles;
                }
            }
        });
        results
    }

    /// Serves the full Figure 5 analysis chain to a fleet of networked
    /// clients: a [`PipelineServer`] multiplexing up to `max_sessions`
    /// concurrent `streamin` connections over its event loop and
    /// worker pool (DESIGN.md §17), each session running its own fresh
    /// `full_pipeline` instance over this extractor's configuration.
    /// For separate control of the pool width or an idle-session
    /// timeout, build the [`PipelineServer`] directly
    /// (`set_workers` / `set_idle_timeout`).
    /// Clients push framed clip records (e.g. via
    /// [`clip_to_records`](crate::ops::clip_to_records) +
    /// `send_all`); each session's pattern output lands in the sink
    /// produced by `make_sink`. Returns immediately with the
    /// [`ServerHandle`]; call
    /// [`shutdown`](ServerHandle::shutdown) for the per-session and
    /// aggregate statistics.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the listener's address cannot
    /// be resolved or the service threads cannot be spawned.
    ///
    /// # Panics
    ///
    /// Panics if `max_sessions == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use dynamic_river::net::send_all;
    /// use dynamic_river::operator::SharedSink;
    /// use ensemble_core::ops::clip_to_records;
    /// use ensemble_core::prelude::*;
    /// use std::net::TcpListener;
    ///
    /// let cfg = ExtractorConfig::default();
    /// let ex = EnsembleExtractor::new(cfg);
    /// let out = SharedSink::new();
    /// let per_session = out.clone();
    /// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    /// let handle = ex
    ///     .serve(listener, 2, move |_info| Box::new(per_session.clone()))
    ///     .unwrap();
    ///
    /// // One "sensor host" pushes a (quiet) clip.
    /// let clip = vec![0.01; cfg.record_len * 4];
    /// let records = clip_to_records(&clip, cfg.sample_rate, cfg.record_len, &[]);
    /// send_all(handle.local_addr(), &records).unwrap();
    ///
    /// handle.wait_for_completed(1);
    /// let report = handle.shutdown().unwrap();
    /// assert_eq!(report.clean_sessions(), 1);
    /// assert_eq!(out.take().len(), 2); // quiet clip: scope markers only
    /// ```
    pub fn serve<F>(
        &self,
        listener: TcpListener,
        max_sessions: usize,
        make_sink: F,
    ) -> Result<ServerHandle, PipelineError>
    where
        F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
    {
        self.serve_with_telemetry(listener, max_sessions, TelemetryConfig::Off, make_sink)
    }

    /// [`serve`](Self::serve) with telemetry enabled: every session
    /// records per-stage latency histograms (its lane is its session
    /// id) into the server's shared registry, and with
    /// [`TelemetryConfig::Full`] traces session and scope events. Read
    /// the merged view live from
    /// [`ServerHandle::telemetry_snapshot`], or per session from each
    /// [`SessionReport`](dynamic_river::serve::SessionReport) after
    /// shutdown (DESIGN.md §16).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the listener's address cannot
    /// be resolved or the service threads cannot be spawned.
    ///
    /// # Panics
    ///
    /// Panics if `max_sessions == 0`.
    pub fn serve_with_telemetry<F>(
        &self,
        listener: TcpListener,
        max_sessions: usize,
        telemetry: TelemetryConfig,
        make_sink: F,
    ) -> Result<ServerHandle, PipelineError>
    where
        F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
    {
        let cfg = self.config;
        let mut server =
            PipelineServer::from_factory(move |_session| crate::pipeline::full_pipeline(cfg, true));
        server.set_max_sessions(max_sessions);
        server.set_telemetry(telemetry);
        server.start(listener, make_sink)
    }
}

/// The outcome of feeding one sample to a [`StreamingExtractor`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStep {
    /// Smoothed anomaly score for the sample.
    pub score: f64,
    /// Trigger value after the sample.
    pub triggered: bool,
    /// An ensemble completed by this sample (its trigger released and
    /// it met the minimum length), if any.
    pub completed: Option<Ensemble>,
}

/// Incremental ensemble extraction over a stream of samples — the
/// `saxanomaly` → `trigger` → `cutter` chain as a resumable state
/// machine ([`EnsembleExtractor::extract_stream`]).
///
/// State is the SAX/normalization windows, the moving average, the
/// trigger estimate, and the currently open ensemble's samples;
/// completed ensembles are handed to the caller immediately, so nothing
/// grows with stream length.
#[derive(Debug, Clone)]
pub struct StreamingExtractor {
    config: ExtractorConfig,
    detector: BitmapAnomaly,
    smoother: MovingAverage,
    trigger: AdaptiveTrigger,
    /// Absolute index of the next sample (monotonic across chunks and
    /// clips — ensemble positions are stream positions).
    pos: usize,
    open: Option<OpenEnsemble>,
}

#[derive(Debug, Clone)]
struct OpenEnsemble {
    start: usize,
    samples: Vec<f64>,
}

impl StreamingExtractor {
    /// Feeds one sample, returning its score, trigger state, and any
    /// ensemble it completed.
    pub fn push_sample(&mut self, x: f64) -> StreamStep {
        let raw = self.detector.push(x);
        let score = self.smoother.push(raw);
        let triggered = self.trigger.push(score);
        let completed = if triggered {
            match &mut self.open {
                Some(open) => open.samples.push(x),
                None => {
                    self.open = Some(OpenEnsemble {
                        start: self.pos,
                        samples: vec![x],
                    });
                }
            }
            None
        } else {
            self.take_open()
        };
        self.pos += 1;
        StreamStep {
            score,
            triggered,
            completed,
        }
    }

    /// Feeds a chunk of samples, appending completed ensembles to
    /// `out`.
    pub fn push_chunk(&mut self, chunk: &[f64], out: &mut Vec<Ensemble>) {
        for &x in chunk {
            if let Some(e) = self.push_sample(x).completed {
                out.push(e);
            }
        }
    }

    /// Ends the stream: closes a still-open ensemble (the batch path's
    /// dangling-ensemble rule). The extractor remains usable, but the
    /// trigger keeps its learned state — create a fresh one per
    /// independent stream.
    pub fn finish(&mut self) -> Option<Ensemble> {
        self.take_open()
    }

    /// Samples consumed so far — the absolute stream clock.
    pub fn samples_seen(&self) -> usize {
        self.pos
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    fn take_open(&mut self) -> Option<Ensemble> {
        let open = self.open.take()?;
        if open.samples.len() < self.config.min_ensemble_samples {
            return None; // too short to be a vocalization
        }
        Some(Ensemble {
            start: open.start,
            end: open.start + open.samples.len(),
            // One conversion into the shared buffer; every later clone
            // or hand-off of this ensemble is O(1).
            samples: open.samples.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::SpeciesCode;
    use crate::synth::{ClipSynthesizer, SynthConfig};

    fn extractor() -> EnsembleExtractor {
        EnsembleExtractor::new(ExtractorConfig::default())
    }

    #[test]
    fn adaptive_trigger_fires_on_outliers_only() {
        let mut t = AdaptiveTrigger::new(5.0, 10);
        // Quiet phase: scores near 0.1 with small jitter.
        for i in 0..500 {
            let s = 0.1 + 0.001 * ((i % 7) as f64 - 3.0);
            assert!(!t.push(s), "fired during quiet at {i}");
        }
        // Outlier fires.
        assert!(t.push(0.5));
        // Recedes.
        assert!(!t.push(0.1));
    }

    #[test]
    fn trigger_does_not_adapt_while_high() {
        let mut t = AdaptiveTrigger::new(5.0, 5);
        for _ in 0..100 {
            t.push(0.1);
        }
        let mu_before = t.mu0();
        t.push(0.9); // fire
        for _ in 0..50 {
            t.push(0.9); // stays high, must not pollute mu0
        }
        assert!((t.mu0() - mu_before).abs() < 1e-9);
        assert!(t.state());
    }

    #[test]
    fn trigger_warmup_suppresses_firing() {
        let mut t = AdaptiveTrigger::new(5.0, 100);
        for i in 0..100 {
            assert!(!t.push(10.0 + i as f64), "fired during warmup");
        }
    }

    #[test]
    fn clip_with_songs_yields_ensembles_overlapping_events() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Noca, 42);
        let trace = extractor().extract_with_trace(&clip.samples);
        assert!(
            !trace.ensembles.is_empty(),
            "no ensembles extracted from a clip with {} song bouts",
            clip.events.len()
        );
        // Most extracted ensembles should overlap a ground-truth bout.
        let overlapping = trace
            .ensembles
            .iter()
            .filter(|e| clip.label_for_range(e.start, e.end).is_some())
            .count();
        assert!(
            overlapping * 2 >= trace.ensembles.len(),
            "{overlapping}/{} ensembles overlap ground truth",
            trace.ensembles.len()
        );
    }

    #[test]
    fn ambience_only_clip_yields_few_or_no_ensembles() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.silence_clip(9);
        let ensembles = extractor().extract(&clip.samples);
        let extracted: usize = ensembles.iter().map(Ensemble::len).sum();
        // The ambience may trip the trigger occasionally (human-activity
        // bursts), but the bulk of the clip must not be extracted.
        assert!(
            extracted < clip.samples.len() / 4,
            "{extracted} of {} samples extracted from silence",
            clip.samples.len()
        );
    }

    #[test]
    fn ensembles_are_ordered_and_disjoint() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Hofi, 7);
        let ensembles = extractor().extract(&clip.samples);
        for w in ensembles.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        for e in &ensembles {
            assert_eq!(e.samples.len(), e.end - e.start);
            assert!(e.len() >= ExtractorConfig::default().min_ensemble_samples);
        }
    }

    #[test]
    fn trace_lengths_match_input() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Bcch, 1);
        let trace = extractor().extract_with_trace(&clip.samples);
        assert_eq!(trace.scores.len(), clip.samples.len());
        assert_eq!(trace.trigger.len(), clip.samples.len());
    }

    #[test]
    fn trigger_trace_is_binary_and_matches_ensembles() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Wbnu, 3);
        let trace = extractor().extract_with_trace(&clip.samples);
        assert!(trace.trigger.iter().all(|&t| t <= 1));
        // Inside every reported ensemble, the trigger is 1 throughout.
        for e in &trace.ensembles {
            assert!(trace.trigger[e.start..e.end].iter().all(|&t| t == 1));
        }
    }

    #[test]
    fn empty_input() {
        let trace = extractor().extract_with_trace(&[]);
        assert!(trace.ensembles.is_empty());
        assert!(trace.scores.is_empty());
    }

    #[test]
    fn deterministic() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Dowo, 5);
        let a = extractor().extract(&clip.samples);
        let b = extractor().extract(&clip.samples);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_extraction_matches_per_clip_extraction() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clips: Vec<Vec<f64>> = (0..5u64)
            .map(|seed| synth.clip(SpeciesCode::Noca, seed).samples)
            .collect();
        let ex = extractor();
        let expected: Vec<Vec<Ensemble>> = clips.iter().map(|c| ex.extract(c)).collect();
        // Worker counts below, equal to, and above the clip count all
        // return the same clip-ordered results.
        for workers in [1usize, 2, 5, 9] {
            let sharded = ex.extract_stream_sharded(&clips, workers);
            assert_eq!(sharded, expected, "workers={workers}");
        }
    }

    #[test]
    fn streaming_matches_batch_for_any_chunking() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Noca, 11);
        let ex = extractor();
        let batch = ex.extract(&clip.samples);
        for chunk_len in [1usize, 17, 840, 4_096, clip.samples.len()] {
            let mut stream = ex.extract_stream();
            let mut streamed = Vec::new();
            for chunk in clip.samples.chunks(chunk_len) {
                stream.push_chunk(chunk, &mut streamed);
            }
            streamed.extend(stream.finish());
            assert_eq!(streamed, batch, "chunk_len={chunk_len}");
            assert_eq!(stream.samples_seen(), clip.samples.len());
        }
    }

    #[test]
    fn streaming_yields_ensembles_before_finish() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Noca, 42);
        let ex = extractor();
        let batch = ex.extract(&clip.samples);
        assert!(!batch.is_empty());
        // Every ensemble whose trigger released inside the clip arrives
        // incrementally, not at finish().
        let mut stream = ex.extract_stream();
        let mut incremental = Vec::new();
        stream.push_chunk(&clip.samples, &mut incremental);
        let at_finish = stream.finish();
        assert_eq!(
            incremental.len() + usize::from(at_finish.is_some()),
            batch.len()
        );
        for (a, b) in incremental.iter().zip(&batch) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn streaming_positions_are_absolute_across_chunks() {
        // Two clips fed back-to-back: ensemble positions land on the
        // concatenated stream's clock.
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let a = synth.clip(SpeciesCode::Hofi, 1);
        let b = synth.clip(SpeciesCode::Hofi, 2);
        let mut joined = a.samples.clone();
        joined.extend_from_slice(&b.samples);
        let batch = extractor().extract(&joined);

        let mut stream = extractor().extract_stream();
        let mut streamed = Vec::new();
        stream.push_chunk(&a.samples, &mut streamed);
        stream.push_chunk(&b.samples, &mut streamed);
        streamed.extend(stream.finish());
        assert_eq!(streamed, batch);
        assert_eq!(stream.samples_seen(), joined.len());
    }

    #[test]
    fn streaming_trace_matches_extract_with_trace() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Wbnu, 8);
        let ex = extractor();
        let trace = ex.extract_with_trace(&clip.samples);
        let mut stream = ex.extract_stream();
        for (i, &x) in clip.samples.iter().enumerate() {
            let step = stream.push_sample(x);
            assert_eq!(step.score, trace.scores[i], "score at {i}");
            assert_eq!(u8::from(step.triggered), trace.trigger[i], "trigger at {i}");
        }
    }
}
