//! # ensemble-core — automated ensemble extraction from acoustic streams
//!
//! The primary contribution of Kasten, McKinley & Gage (DEPSA/ICDCS
//! 2007): "a process that enables detection and extraction of meaningful
//! sequences, called **ensembles**, from acoustic data streams …
//! ensembles are time series sequences that recur, though perhaps
//! rarely. … An anomaly score greater than a specified threshold is
//! considered as indicating the start of an ensemble that continues
//! until the anomaly score falls below the threshold" (§1, §3).
//!
//! ## Contents
//!
//! - [`ops`] — every pipeline operator of the paper's Figure 5:
//!   `wav2rec`, `saxanomaly`, `trigger`, `cutter`, `reslice`,
//!   `welchwindow`, `float2cplx`, `dft`, `cabs`, `cutout`, `paa`,
//!   `rec2vect` (plus `readout`), each a `dynamic_river::Operator`;
//! - [`extract`] — [`extract::EnsembleExtractor`], a convenience API
//!   that runs the extraction chain over raw samples;
//! - [`pipeline`] — assembles the full Figure 5 operator graph;
//! - [`synth`] — the synthetic birdsong workload generator standing in
//!   for the paper's field recordings (see `DESIGN.md` substitutions):
//!   species-specific song grammars for the ten species of Table 1 over
//!   wind/noise ambience;
//! - [`dataset`] — corpus generation and the four experimental datasets
//!   (Pattern, Ensemble, PAA Pattern, PAA Ensemble) of Table 2;
//! - [`reduction`] — the §4 data-reduction accounting (the paper
//!   reports 80.6 %);
//! - [`render`] — text rendering of oscillograms/trigger traces for the
//!   figure-regeneration binaries.
//!
//! ## Quickstart
//!
//! ```
//! use ensemble_core::prelude::*;
//!
//! // Synthesize a 4-second clip of a Northern cardinal over ambience …
//! let clip = ClipSynthesizer::new(SynthConfig::short_test()).clip(SpeciesCode::Noca, 42);
//! // … and extract ensembles from it.
//! let extractor = EnsembleExtractor::new(ExtractorConfig::default());
//! let ensembles = extractor.extract(&clip.samples);
//! // The clip contains song bouts, so some ensembles should be found.
//! assert!(!ensembles.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod config;
pub mod dataset;
pub mod extract;
pub mod ops;
pub mod pipeline;
pub mod reduction;
pub mod render;
pub mod species;
pub mod synth;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::config::ExtractorConfig;
    pub use crate::dataset::{Corpus, CorpusConfig, DatasetBundle};
    pub use crate::extract::{Ensemble, EnsembleExtractor};
    pub use crate::species::SpeciesCode;
    pub use crate::synth::{Clip, ClipSynthesizer, SongEvent, SynthConfig};
}

pub use classify::SpeciesClassifier;
pub use config::ExtractorConfig;
pub use extract::{Ensemble, EnsembleExtractor};
pub use species::SpeciesCode;

/// Record subtypes used by the acoustic pipeline.
pub mod subtype {
    /// Raw audio samples.
    pub const AUDIO: u16 = 1;
    /// Smoothed SAX anomaly scores (output of `saxanomaly`).
    pub const SCORE: u16 = 2;
    /// Trigger values, 0.0 or 1.0 (output of `trigger`).
    pub const TRIGGER: u16 = 3;
    /// Complex spectral values (output of `float2cplx`/`dft`).
    pub const SPECTRUM: u16 = 4;
    /// Power-spectrum magnitudes (output of `cabs` and later stages).
    pub const POWER: u16 = 5;
    /// Merged feature patterns (output of `rec2vect`).
    pub const PATTERN: u16 = 6;
}

/// Scope types used by the acoustic pipeline.
pub mod scope_type {
    /// An acoustic clip ("scope_clip" in the paper).
    pub const CLIP: u16 = 1;
    /// An extracted ensemble ("scope_ensemble" in the paper).
    pub const ENSEMBLE: u16 = 2;
}

/// Context keys attached to `OpenScope` records.
pub mod context_key {
    /// Sample rate in Hz of the audio inside a clip scope.
    pub const SAMPLE_RATE: &str = "sample_rate";
    /// First sample index (within the clip) of an ensemble scope.
    pub const START_SAMPLE: &str = "start_sample";
    /// Ground-truth species code (synthetic corpora only).
    pub const SPECIES: &str = "species";
}
