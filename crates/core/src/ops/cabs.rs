//! `cabs`: complex absolute value — converts the DFT output to a real
//! power-spectrum record (paper §3).

use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `cabs` operator: interleaved complex payloads become `F64`
/// magnitude payloads with subtype [`crate::subtype::POWER`].
#[derive(Debug, Default, Clone)]
pub struct Cabs;

impl Cabs {
    /// Creates the operator.
    pub fn new() -> Self {
        Self
    }
}

impl Operator for Cabs {
    fn name(&self) -> &'static str {
        "cabs"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::SPECTRUM {
            if let Payload::Complex(v) = &record.payload {
                let mags: Vec<f64> = v.chunks_exact(2).map(|c| c[0].hypot(c[1])).collect();
                record.payload = Payload::f64(mags);
                record.subtype = subtype::POWER;
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::SPECTRUM, PayloadKind::Complex),
            RecordClass::of(subtype::POWER, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn magnitudes_computed() {
        let mut p = Pipeline::new();
        p.add(Cabs::new());
        let out = p
            .run(vec![Record::data(
                subtype::SPECTRUM,
                Payload::complex(vec![3.0, 4.0, 0.0, -2.0]),
            )])
            .unwrap();
        assert_eq!(out[0].subtype, subtype::POWER);
        assert_eq!(out[0].payload.as_f64().unwrap(), &[5.0, 2.0]);
    }

    #[test]
    fn other_records_pass() {
        let mut p = Pipeline::new();
        p.add(Cabs::new());
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![1.0]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }
}
