//! `cutout`: selects the analysis frequency band from each spectral
//! record.
//!
//! "The `cutout` operator selects specific frequency ranges from each
//! record and emits records comprising only these ranges. Data outside
//! of the selected range is discarded. For our classification
//! experiments, the frequency range ≈[1.2 kHz, 9.6 kHz] was cut out.
//! … data below this range typically comprises low frequency noise,
//! including the sound of wind and sounds produced by human activity"
//! (paper §3).

use crate::{context_key, scope_type, subtype};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `cutout` operator. The sample rate is taken from the enclosing
/// clip scope's context (falling back to the configured default), and
/// bin indices are derived per record length, so the operator works for
/// any record geometry.
#[derive(Debug, Clone)]
pub struct Cutout {
    low_hz: f64,
    high_hz: f64,
    default_rate: f64,
    current_rate: f64,
}

impl Cutout {
    /// Creates the operator for the band `[low_hz, high_hz)`.
    ///
    /// # Panics
    ///
    /// Panics if the band is inverted or not positive.
    pub fn new(low_hz: f64, high_hz: f64, default_rate: f64) -> Self {
        assert!(low_hz >= 0.0 && low_hz < high_hz, "invalid cutout band");
        assert!(default_rate > 0.0, "default rate must be positive");
        Cutout {
            low_hz,
            high_hz,
            default_rate,
            current_rate: default_rate,
        }
    }

    /// Bin range kept for a record of `n` DFT bins at the current rate.
    fn bin_range(&self, n: usize) -> (usize, usize) {
        let bin_hz = self.current_rate / n as f64;
        let lo = (self.low_hz / bin_hz).round() as usize;
        let hi = ((self.high_hz / bin_hz).round() as usize).min(n);
        (lo.min(n), hi)
    }
}

impl Operator for Cutout {
    fn name(&self) -> &'static str {
        "cutout"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.current_rate = record
                    .payload
                    .context(context_key::SAMPLE_RATE)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(self.default_rate);
                out.push(record)
            }
            RecordKind::Data if record.subtype == subtype::POWER => {
                if let Payload::F64(v) = &record.payload {
                    let (lo, hi) = self.bin_range(v.len());
                    // Band selection is a pure view: the kept bins share
                    // the spectral record's allocation, no copy.
                    record.payload = Payload::F64(v.slice(lo..hi));
                }
                out.push(record)
            }
            _ => out.push(record),
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::POWER, PayloadKind::F64),
            RecordClass::of(subtype::POWER, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn production_geometry_keeps_350_bins() {
        let mut p = Pipeline::new();
        p.add(Cutout::new(1_200.0, 9_600.0, 20_160.0));
        let out = p
            .run(vec![Record::data(
                subtype::POWER,
                Payload::F64((0..840).map(|i| i as f64).collect()),
            )])
            .unwrap();
        let kept = out[0].payload.as_f64().unwrap();
        assert_eq!(kept.len(), 350);
        // First kept bin is bin 50 (1.2 kHz at 24 Hz bins).
        assert_eq!(kept[0], 50.0);
        assert_eq!(kept[349], 399.0);
    }

    #[test]
    fn band_selection_is_a_view_into_the_spectrum() {
        use dynamic_river::SampleBuf;
        let spectrum = SampleBuf::from((0..840).map(|i| i as f64).collect::<Vec<f64>>());
        let mut p = Pipeline::new();
        p.add(Cutout::new(1_200.0, 9_600.0, 20_160.0));
        let out = p
            .run(vec![Record::data(
                subtype::POWER,
                Payload::F64(spectrum.clone()),
            )])
            .unwrap();
        let kept = out[0].payload.as_f64_buf().unwrap();
        assert!(
            SampleBuf::shares_backing(kept, &spectrum),
            "cutout copied the kept band"
        );
        assert_eq!(kept.offset(), 50);
        assert_eq!(kept.len(), 350);
    }

    #[test]
    fn rate_from_scope_context_overrides_default() {
        let mut p = Pipeline::new();
        p.add(Cutout::new(1_200.0, 9_600.0, 20_160.0));
        let out = p
            .run(vec![
                Record::open_scope(
                    scope_type::CLIP,
                    vec![(context_key::SAMPLE_RATE.into(), "40320".into())],
                ),
                Record::data(subtype::POWER, Payload::f64(vec![0.0; 840])),
                Record::close_scope(scope_type::CLIP),
            ])
            .unwrap();
        // Doubled rate halves the kept bin count: 48 Hz bins -> 25..200.
        assert_eq!(out[1].payload.as_f64().unwrap().len(), 175);
    }

    #[test]
    fn band_clamps_to_record() {
        let mut p = Pipeline::new();
        p.add(Cutout::new(1_200.0, 9_600.0, 4_000.0));
        // At a 4 kHz rate the upper band edge exceeds the spectrum; the
        // kept range is clamped.
        let out = p
            .run(vec![Record::data(
                subtype::POWER,
                Payload::f64(vec![1.0; 100]),
            )])
            .unwrap();
        let kept = out[0].payload.as_f64().unwrap();
        assert!(kept.len() <= 100);
        assert!(!kept.is_empty());
    }

    #[test]
    fn non_power_records_pass() {
        let mut p = Pipeline::new();
        p.add(Cutout::new(1_200.0, 9_600.0, 20_160.0));
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![0.0; 16]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }

    #[test]
    #[should_panic(expected = "invalid cutout band")]
    fn rejects_inverted_band() {
        Cutout::new(9_600.0, 1_200.0, 20_160.0);
    }
}
