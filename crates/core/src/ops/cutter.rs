//! `cutter`: turns triggered stretches of audio into ensemble scopes.
//!
//! "When the trigger signal transitions from 0 to 1, `cutter` emits an
//! `OpenScope` record, designating the start of an ensemble, and begins
//! composing an ensemble. Each ensemble comprises values from the
//! original acoustic signal that correspond to when the trigger value
//! is 1. When the trigger value transitions from 1 to 0, `cutter` emits
//! a `CloseScope` record … The record stream, as emitted from `cutter`,
//! comprises clips that contain one or more ensembles" (paper §3).
//!
//! Ensemble audio is re-chunked into full `record_len`-sample records so
//! every downstream DFT sees the production record geometry; a final
//! partial chunk is zero-padded when at least half full, otherwise
//! dropped. Ensembles shorter than `min_ensemble_samples` are
//! suppressed entirely (the `OpenScope` is emitted lazily, so a
//! suppressed ensemble leaves no trace).

use crate::config::ExtractorConfig;
use crate::{context_key, scope_type, subtype};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use std::collections::VecDeque;

/// The `cutter` operator.
pub struct Cutter {
    config: ExtractorConfig,
    /// Audio records awaiting their trigger record, by arrival order.
    pending_audio: VecDeque<Record>,
    /// Currently open ensemble, if any.
    open: Option<OpenEnsemble>,
    /// Index of the next sample within the current clip.
    clip_sample: usize,
    /// Sequence counter for emitted ensemble records (clip-wide).
    out_seq: u64,
}

struct OpenEnsemble {
    start_sample: usize,
    total_samples: usize,
    /// Samples accumulated toward the next full record.
    chunk: Vec<f64>,
    /// Records buffered until the ensemble proves long enough to emit.
    buffered: Vec<Record>,
    emitted_open: bool,
}

impl Cutter {
    /// Creates the operator from the pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ExtractorConfig) -> Self {
        config.validate();
        Cutter {
            config,
            pending_audio: VecDeque::new(),
            open: None,
            clip_sample: 0,
            out_seq: 0,
        }
    }

    fn open_ensemble(&mut self, start_sample: usize) {
        self.open = Some(OpenEnsemble {
            start_sample,
            total_samples: 0,
            chunk: Vec::with_capacity(self.config.record_len),
            buffered: Vec::new(),
            emitted_open: false,
        });
    }

    /// Pushes one triggered sample into the open ensemble, emitting any
    /// completed record into the buffer.
    fn push_sample(&mut self, x: f64, out: &mut dyn Sink) -> Result<(), PipelineError> {
        let record_len = self.config.record_len;
        let min_len = self.config.min_ensemble_samples;
        let ensemble = self.open.as_mut().expect("ensemble open");
        ensemble.chunk.push(x);
        ensemble.total_samples += 1;
        if ensemble.chunk.len() == record_len {
            let seq = self.out_seq;
            self.out_seq += 1;
            let rec = Record::data(
                subtype::AUDIO,
                Payload::F64(std::mem::take(&mut ensemble.chunk)),
            )
            .with_seq(seq)
            .with_depth(2);
            ensemble.chunk = Vec::with_capacity(record_len);
            ensemble.buffered.push(rec);
        }
        // Once the ensemble is long enough, stream its buffer out.
        if ensemble.total_samples >= min_len && !ensemble.buffered.is_empty() {
            if !ensemble.emitted_open {
                ensemble.emitted_open = true;
                let open = Record::open_scope(
                    scope_type::ENSEMBLE,
                    vec![(
                        context_key::START_SAMPLE.to_string(),
                        ensemble.start_sample.to_string(),
                    )],
                )
                .with_depth(1);
                out.push(open)?;
            }
            for rec in ensemble.buffered.drain(..) {
                out.push(rec)?;
            }
        }
        Ok(())
    }

    /// Closes the open ensemble (if emitted) with a `CloseScope`.
    fn close_ensemble(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        let record_len = self.config.record_len;
        let Some(mut ensemble) = self.open.take() else {
            return Ok(());
        };
        // Final partial chunk: zero-pad when at least half full.
        if ensemble.emitted_open && ensemble.chunk.len() >= record_len / 2 {
            ensemble.chunk.resize(record_len, 0.0);
            let seq = self.out_seq;
            self.out_seq += 1;
            out.push(
                Record::data(subtype::AUDIO, Payload::F64(ensemble.chunk))
                    .with_seq(seq)
                    .with_depth(2),
            )?;
        }
        if ensemble.emitted_open {
            out.push(Record::close_scope(scope_type::ENSEMBLE).with_depth(1))?;
        }
        Ok(())
    }

    /// Processes one matched (audio, trigger) record pair.
    fn process_pair(
        &mut self,
        audio: Record,
        trigger: &[f64],
        out: &mut dyn Sink,
    ) -> Result<(), PipelineError> {
        let samples = audio
            .payload
            .as_f64()
            .ok_or_else(|| PipelineError::operator("cutter", "audio record without F64 payload"))?;
        if samples.len() != trigger.len() {
            return Err(PipelineError::operator(
                "cutter",
                format!(
                    "audio/trigger length mismatch: {} vs {} (seq {})",
                    samples.len(),
                    trigger.len(),
                    audio.seq
                ),
            ));
        }
        for (&x, &t) in samples.iter().zip(trigger) {
            let high = t >= 0.5;
            match (self.open.is_some(), high) {
                (false, true) => {
                    self.open_ensemble(self.clip_sample);
                    self.push_sample(x, out)?;
                }
                (true, true) => self.push_sample(x, out)?,
                (true, false) => self.close_ensemble(out)?,
                (false, false) => {}
            }
            self.clip_sample += 1;
        }
        Ok(())
    }
}

impl Operator for Cutter {
    fn name(&self) -> &str {
        "cutter"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.pending_audio.clear();
                self.open = None;
                self.clip_sample = 0;
                self.out_seq = 0;
                out.push(record)
            }
            RecordKind::CloseScope | RecordKind::BadCloseScope
                if record.scope_type == scope_type::CLIP =>
            {
                // Close any dangling ensemble before the clip ends.
                self.close_ensemble(out)?;
                self.pending_audio.clear();
                out.push(record)
            }
            RecordKind::Data if record.subtype == subtype::AUDIO => {
                self.pending_audio.push_back(record);
                Ok(())
            }
            RecordKind::Data if record.subtype == subtype::TRIGGER => {
                let audio = self.pending_audio.pop_front().ok_or_else(|| {
                    PipelineError::operator("cutter", "trigger record without pending audio")
                })?;
                if audio.seq != record.seq {
                    return Err(PipelineError::operator(
                        "cutter",
                        format!("trigger seq {} does not match audio seq {}", record.seq, audio.seq),
                    ));
                }
                let trigger = record.payload.as_f64().ok_or_else(|| {
                    PipelineError::operator("cutter", "trigger record without F64 payload")
                })?;
                let trigger = trigger.to_vec();
                self.process_pair(audio, &trigger, out)
            }
            // Scores or anything else inside the clip are dropped; outer
            // scope records pass through.
            RecordKind::Data => Ok(()),
            _ => out.push(record),
        }
    }

    fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        self.close_ensemble(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SaxAnomaly, TriggerOp};
    use crate::ops::wav2rec::clip_to_records;
    use crate::prelude::*;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::Pipeline;

    fn extraction_pipeline(cfg: ExtractorConfig) -> Pipeline {
        let mut p = Pipeline::new();
        p.add(SaxAnomaly::new(cfg));
        p.add(TriggerOp::new(cfg));
        p.add(Cutter::new(cfg));
        p
    }

    fn run_extraction(samples: &[f64]) -> Vec<Record> {
        let cfg = ExtractorConfig::default();
        extraction_pipeline(cfg)
            .run(clip_to_records(samples, cfg.sample_rate, cfg.record_len, &[]))
            .unwrap()
    }

    #[test]
    fn quiet_clip_produces_no_ensembles() {
        // Deterministic pseudo-noise, no events.
        let samples: Vec<f64> = (0..840 * 24)
            .map(|i| (((i * 2654435761usize) % 997) as f64 / 997.0 - 0.5) * 0.02)
            .collect();
        let out = run_extraction(&samples);
        validate_scopes(&out).unwrap();
        let ensembles = out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
            .count();
        assert_eq!(ensembles, 0);
        // Only clip open/close remain.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn clip_with_song_produces_nested_ensembles() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Rwbl, 42);
        let cfg = ExtractorConfig::default();
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let out = run_extraction(&clip.samples[..usable]);
        validate_scopes(&out).unwrap();
        let opens = out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
            .count();
        assert!(opens > 0, "no ensembles cut from a clip with songs");
        // All ensemble records are full length.
        for r in out.iter().filter(|r| r.kind == RecordKind::Data) {
            assert_eq!(r.subtype, subtype::AUDIO);
            assert_eq!(r.payload.as_f64().unwrap().len(), cfg.record_len);
            assert_eq!(r.scope_depth, 2);
        }
        // Ensemble scopes carry their start sample.
        for r in out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
        {
            let start: usize = r
                .payload
                .context(context_key::START_SAMPLE)
                .expect("start_sample context")
                .parse()
                .expect("numeric");
            assert!(start < usable);
        }
    }

    #[test]
    fn agrees_with_direct_extractor_on_ensemble_count() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let cfg = ExtractorConfig::default();
        for seed in [7u64, 21] {
            let clip = synth.clip(SpeciesCode::Bcch, seed);
            let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
            let direct = crate::extract::EnsembleExtractor::new(cfg)
                .extract(&clip.samples[..usable]);
            let out = run_extraction(&clip.samples[..usable]);
            let record_count = out
                .iter()
                .filter(|r| {
                    r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE
                })
                .count();
            // Chunk-dropping can suppress an ensemble whose length is
            // under one record; allow that slack but no more.
            let direct_full = direct
                .iter()
                .filter(|e| e.len() >= cfg.record_len)
                .count();
            assert!(
                record_count <= direct.len() && record_count >= direct_full.saturating_sub(1),
                "record pipeline {record_count} vs direct {} (full {direct_full})",
                direct.len()
            );
        }
    }

    #[test]
    fn ensemble_records_match_source_samples() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let cfg = ExtractorConfig::default();
        let clip = synth.clip(SpeciesCode::Noca, 3);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let out = run_extraction(&clip.samples[..usable]);
        // For each ensemble, the first record's samples must appear
        // verbatim at start_sample in the source.
        let mut i = 0;
        while i < out.len() {
            if out[i].kind == RecordKind::OpenScope
                && out[i].scope_type == scope_type::ENSEMBLE
            {
                let start: usize = out[i]
                    .payload
                    .context(context_key::START_SAMPLE)
                    .unwrap()
                    .parse()
                    .unwrap();
                let first = out[i + 1].payload.as_f64().unwrap();
                assert_eq!(
                    first,
                    &clip.samples[start..start + first.len()],
                    "ensemble at {start}"
                );
            }
            i += 1;
        }
    }

    #[test]
    fn unmatched_trigger_is_error() {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(Cutter::new(cfg));
        let err = p
            .run(vec![
                Record::open_scope(scope_type::CLIP, vec![]),
                Record::data(subtype::TRIGGER, Payload::F64(vec![0.0; 840])),
            ])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn seq_mismatch_is_error() {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(Cutter::new(cfg));
        let err = p
            .run(vec![
                Record::open_scope(scope_type::CLIP, vec![]),
                Record::data(subtype::AUDIO, Payload::F64(vec![0.0; 840])).with_seq(0),
                Record::data(subtype::TRIGGER, Payload::F64(vec![0.0; 840])).with_seq(5),
            ])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }
}
