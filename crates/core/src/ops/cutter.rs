//! `cutter`: turns triggered stretches of audio into ensemble scopes.
//!
//! "When the trigger signal transitions from 0 to 1, `cutter` emits an
//! `OpenScope` record, designating the start of an ensemble, and begins
//! composing an ensemble. Each ensemble comprises values from the
//! original acoustic signal that correspond to when the trigger value
//! is 1. When the trigger value transitions from 1 to 0, `cutter` emits
//! a `CloseScope` record … The record stream, as emitted from `cutter`,
//! comprises clips that contain one or more ensembles" (paper §3).
//!
//! Ensemble audio is re-chunked into full `record_len`-sample records so
//! every downstream DFT sees the production record geometry; a final
//! partial chunk is zero-padded when at least half full, otherwise
//! dropped. Ensembles shorter than `min_ensemble_samples` are
//! suppressed entirely (the `OpenScope` is emitted lazily, so a
//! suppressed ensemble leaves no trace).
//!
//! Slicing is zero-copy: triggered stretches are taken as
//! [`SampleBuf`] views into the incoming audio records, adjacent views
//! into the same clip allocation are merged, and full ensemble records
//! are sliced straight out of the merged run. Samples are copied only
//! when a record genuinely spans two unrelated allocations or needs
//! zero-padding at ensemble close.

use crate::config::ExtractorConfig;
use crate::{context_key, scope_type, subtype};
use dynamic_river::telemetry::{EventKind, EventSink};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, SampleBuf, Sink};
use std::collections::VecDeque;

/// The `cutter` operator.
#[derive(Clone)]
pub struct Cutter {
    config: ExtractorConfig,
    /// Audio records awaiting their trigger record, by arrival order.
    pending_audio: VecDeque<Record>,
    /// Currently open ensemble, if any.
    open: Option<OpenEnsemble>,
    /// Index of the next sample within the current clip.
    clip_sample: usize,
    /// Sequence counter for emitted ensemble records (clip-wide).
    out_seq: u64,
    /// Telemetry event sink (disabled unless a runner attaches one);
    /// reports each ensemble run that proves long enough to emit as a
    /// `CutterRun` — suppressed ensembles stay silent, mirroring their
    /// lazy `OpenScope`.
    events: EventSink,
}

#[derive(Clone)]
struct OpenEnsemble {
    start_sample: usize,
    total_samples: usize,
    /// Triggered sample runs not yet assembled into full records.
    /// Adjacent views into the same backing allocation are pre-merged on
    /// push, so within one clip this usually holds a single contiguous
    /// view. Total length stays below `record_len` between pushes.
    pending: VecDeque<SampleBuf>,
    pending_len: usize,
    /// Records buffered until the ensemble proves long enough to emit.
    buffered: Vec<Record>,
    emitted_open: bool,
}

/// Takes exactly `n` samples off the front of `pending`: a pure view
/// slice when the front run is long enough (the zero-copy fast path),
/// one copy when the record spans runs from different allocations.
fn take_chunk(pending: &mut VecDeque<SampleBuf>, n: usize) -> SampleBuf {
    let front = pending.front_mut().expect("pending samples available");
    if front.len() > n {
        let chunk = front.slice(..n);
        *front = front.slice(n..);
        return chunk;
    }
    if front.len() == n {
        return pending.pop_front().expect("non-empty");
    }
    let mut buf = Vec::with_capacity(n);
    while buf.len() < n {
        let need = n - buf.len();
        let front = pending.front_mut().expect("enough pending samples");
        if front.len() <= need {
            buf.extend_from_slice(front);
            pending.pop_front();
        } else {
            buf.extend_from_slice(&front.slice(..need));
            *front = front.slice(need..);
        }
    }
    buf.into()
}

impl Cutter {
    /// Creates the operator from the pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ExtractorConfig) -> Self {
        config.validate();
        Cutter {
            config,
            pending_audio: VecDeque::new(),
            open: None,
            clip_sample: 0,
            out_seq: 0,
            events: EventSink::disabled(),
        }
    }

    fn open_ensemble(&mut self, start_sample: usize) {
        self.open = Some(OpenEnsemble {
            start_sample,
            total_samples: 0,
            pending: VecDeque::new(),
            pending_len: 0,
            buffered: Vec::new(),
            emitted_open: false,
        });
    }

    /// Pushes one run of consecutively triggered samples (a view into
    /// the audio record) into the open ensemble, assembling full records
    /// and streaming the buffer out once the ensemble proves long
    /// enough.
    fn push_run(&mut self, run: SampleBuf, out: &mut dyn Sink) -> Result<(), PipelineError> {
        let record_len = self.config.record_len;
        let min_len = self.config.min_ensemble_samples;
        let ensemble = self.open.as_mut().expect("ensemble open");
        ensemble.total_samples += run.len();
        ensemble.pending_len += run.len();
        match ensemble.pending.back_mut() {
            Some(last) => match last.merged_with(&run) {
                Some(joined) => *last = joined,
                None => ensemble.pending.push_back(run),
            },
            None => ensemble.pending.push_back(run),
        }
        while ensemble.pending_len >= record_len {
            let chunk = take_chunk(&mut ensemble.pending, record_len);
            ensemble.pending_len -= record_len;
            let seq = self.out_seq;
            self.out_seq += 1;
            ensemble.buffered.push(
                Record::data(subtype::AUDIO, Payload::F64(chunk))
                    .with_seq(seq)
                    .with_depth(2),
            );
        }
        // Once the ensemble is long enough, stream its buffer out.
        if ensemble.total_samples >= min_len && !ensemble.buffered.is_empty() {
            if !ensemble.emitted_open {
                ensemble.emitted_open = true;
                self.events
                    .emit(EventKind::CutterRun, ensemble.start_sample as u64);
                let open = Record::open_scope(
                    scope_type::ENSEMBLE,
                    vec![(
                        context_key::START_SAMPLE.to_string(),
                        ensemble.start_sample.to_string(),
                    )],
                )
                .with_depth(1);
                out.push(open)?;
            }
            for rec in ensemble.buffered.drain(..) {
                out.push(rec)?;
            }
        }
        Ok(())
    }

    /// Closes the open ensemble (if emitted) with a `CloseScope`.
    fn close_ensemble(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        let record_len = self.config.record_len;
        let Some(ensemble) = self.open.take() else {
            return Ok(());
        };
        // Final partial chunk: zero-pad when at least half full (padding
        // forces the one honest copy on this path).
        if ensemble.emitted_open && ensemble.pending_len >= record_len / 2 {
            let mut chunk = Vec::with_capacity(record_len);
            for run in &ensemble.pending {
                chunk.extend_from_slice(run);
            }
            chunk.resize(record_len, 0.0);
            let seq = self.out_seq;
            self.out_seq += 1;
            out.push(
                Record::data(subtype::AUDIO, Payload::f64(chunk))
                    .with_seq(seq)
                    .with_depth(2),
            )?;
        }
        if ensemble.emitted_open {
            out.push(Record::close_scope(scope_type::ENSEMBLE).with_depth(1))?;
        }
        Ok(())
    }

    /// Processes one matched (audio, trigger) record pair: scans the
    /// trigger for maximal high/low runs and turns each high run into a
    /// view of the audio record — samples are inspected, never copied.
    fn process_pair(
        &mut self,
        audio: &Record,
        trigger: &[f64],
        out: &mut dyn Sink,
    ) -> Result<(), PipelineError> {
        let samples = audio
            .payload
            .as_f64_buf()
            .ok_or_else(|| PipelineError::operator("cutter", "audio record without F64 payload"))?;
        if samples.len() != trigger.len() {
            return Err(PipelineError::operator(
                "cutter",
                format!(
                    "audio/trigger length mismatch: {} vs {} (seq {})",
                    samples.len(),
                    trigger.len(),
                    audio.seq
                ),
            ));
        }
        let base = self.clip_sample;
        let mut i = 0;
        while i < trigger.len() {
            let high = trigger[i] >= 0.5;
            let mut j = i + 1;
            while j < trigger.len() && (trigger[j] >= 0.5) == high {
                j += 1;
            }
            if high {
                if self.open.is_none() {
                    self.open_ensemble(base + i);
                }
                self.push_run(samples.slice(i..j), out)?;
            } else {
                self.close_ensemble(out)?;
            }
            i = j;
        }
        self.clip_sample = base + trigger.len();
        Ok(())
    }
}

impl Operator for Cutter {
    fn name(&self) -> &'static str {
        "cutter"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.pending_audio.clear();
                self.open = None;
                self.clip_sample = 0;
                self.out_seq = 0;
                out.push(record)
            }
            RecordKind::CloseScope | RecordKind::BadCloseScope
                if record.scope_type == scope_type::CLIP =>
            {
                // Close any dangling ensemble before the clip ends.
                self.close_ensemble(out)?;
                self.pending_audio.clear();
                out.push(record)
            }
            RecordKind::Data if record.subtype == subtype::AUDIO => {
                self.pending_audio.push_back(record);
                Ok(())
            }
            RecordKind::Data if record.subtype == subtype::TRIGGER => {
                let audio = self.pending_audio.pop_front().ok_or_else(|| {
                    PipelineError::operator("cutter", "trigger record without pending audio")
                })?;
                if audio.seq != record.seq {
                    return Err(PipelineError::operator(
                        "cutter",
                        format!(
                            "trigger seq {} does not match audio seq {}",
                            record.seq, audio.seq
                        ),
                    ));
                }
                let trigger = record
                    .payload
                    .as_f64_buf()
                    .ok_or_else(|| {
                        PipelineError::operator("cutter", "trigger record without F64 payload")
                    })?
                    .clone(); // O(1): a view, not a copy of the trigger
                self.process_pair(&audio, &trigger, out)
            }
            // Scores or anything else inside the clip are dropped; outer
            // scope records pass through.
            RecordKind::Data => Ok(()),
            _ => out.push(record),
        }
    }

    fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        self.close_ensemble(out)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn attach_events(&mut self, events: &EventSink) {
        self.events = events.clone();
    }

    /// Consumes audio + trigger pairs, drops any other data record
    /// inside the clip, and re-emits triggered audio inside ensemble
    /// scopes it opens and closes itself (balanced by the EOS flush).
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, ScopeEffect, Signature, UnmatchedPolicy};
        Some(Signature {
            consumes: vec![
                RecordClass::of(subtype::AUDIO, PayloadKind::F64),
                RecordClass::of(subtype::TRIGGER, PayloadKind::F64),
            ],
            passes_matched: false,
            produces: vec![RecordClass::of(subtype::AUDIO, PayloadKind::F64)],
            unmatched: UnmatchedPolicy::Drop,
            strict_payload: true,
            scope: ScopeEffect::OpensBalanced {
                scope_type: scope_type::ENSEMBLE,
            },
            flushes_at_eos: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::wav2rec::clip_to_records;
    use crate::ops::{SaxAnomaly, TriggerOp};
    use crate::prelude::*;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::Pipeline;

    fn extraction_pipeline(cfg: ExtractorConfig) -> Pipeline {
        let mut p = Pipeline::new();
        p.add(SaxAnomaly::new(cfg));
        p.add(TriggerOp::new(cfg));
        p.add(Cutter::new(cfg));
        p
    }

    fn run_extraction(samples: &[f64]) -> Vec<Record> {
        let cfg = ExtractorConfig::default();
        extraction_pipeline(cfg)
            .run(clip_to_records(
                samples,
                cfg.sample_rate,
                cfg.record_len,
                &[],
            ))
            .unwrap()
    }

    #[test]
    fn quiet_clip_produces_no_ensembles() {
        // Deterministic pseudo-noise, no events.
        let samples: Vec<f64> = (0..840 * 24)
            .map(|i| (((i * 2654435761usize) % 997) as f64 / 997.0 - 0.5) * 0.02)
            .collect();
        let out = run_extraction(&samples);
        validate_scopes(&out).unwrap();
        let ensembles = out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
            .count();
        assert_eq!(ensembles, 0);
        // Only clip open/close remain.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn clip_with_song_produces_nested_ensembles() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Rwbl, 42);
        let cfg = ExtractorConfig::default();
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let out = run_extraction(&clip.samples[..usable]);
        validate_scopes(&out).unwrap();
        let opens = out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
            .count();
        assert!(opens > 0, "no ensembles cut from a clip with songs");
        // All ensemble records are full length.
        for r in out.iter().filter(|r| r.kind == RecordKind::Data) {
            assert_eq!(r.subtype, subtype::AUDIO);
            assert_eq!(r.payload.as_f64().unwrap().len(), cfg.record_len);
            assert_eq!(r.scope_depth, 2);
        }
        // Ensemble scopes carry their start sample.
        for r in out
            .iter()
            .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
        {
            let start: usize = r
                .payload
                .context(context_key::START_SAMPLE)
                .expect("start_sample context")
                .parse()
                .expect("numeric");
            assert!(start < usable);
        }
    }

    #[test]
    fn agrees_with_direct_extractor_on_ensemble_count() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let cfg = ExtractorConfig::default();
        for seed in [7u64, 21] {
            let clip = synth.clip(SpeciesCode::Bcch, seed);
            let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
            let direct =
                crate::extract::EnsembleExtractor::new(cfg).extract(&clip.samples[..usable]);
            let out = run_extraction(&clip.samples[..usable]);
            let record_count = out
                .iter()
                .filter(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::ENSEMBLE)
                .count();
            // Chunk-dropping can suppress an ensemble whose length is
            // under one record; allow that slack but no more.
            let direct_full = direct.iter().filter(|e| e.len() >= cfg.record_len).count();
            assert!(
                record_count <= direct.len() && record_count >= direct_full.saturating_sub(1),
                "record pipeline {record_count} vs direct {} (full {direct_full})",
                direct.len()
            );
        }
    }

    #[test]
    fn ensemble_records_match_source_samples() {
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let cfg = ExtractorConfig::default();
        let clip = synth.clip(SpeciesCode::Noca, 3);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let out = run_extraction(&clip.samples[..usable]);
        // For each ensemble, the first record's samples must appear
        // verbatim at start_sample in the source.
        let mut i = 0;
        while i < out.len() {
            if out[i].kind == RecordKind::OpenScope && out[i].scope_type == scope_type::ENSEMBLE {
                let start: usize = out[i]
                    .payload
                    .context(context_key::START_SAMPLE)
                    .unwrap()
                    .parse()
                    .unwrap();
                let first = out[i + 1].payload.as_f64().unwrap();
                assert_eq!(
                    first,
                    &clip.samples[start..start + first.len()],
                    "ensemble at {start}"
                );
            }
            i += 1;
        }
    }

    #[test]
    fn ensemble_records_are_views_into_the_clip() {
        // Zero-copy cutting: when the trigger stays high across whole
        // audio records that are views into one clip allocation, the
        // emitted ensemble records are views into that same allocation.
        use dynamic_river::SampleBuf;
        let cfg = ExtractorConfig::default();
        let n = cfg.record_len;
        let clip = SampleBuf::from(
            (0..n * 3)
                .map(|i| (i as f64 * 0.01).sin())
                .collect::<Vec<f64>>(),
        );
        let mut input = vec![Record::open_scope(scope_type::CLIP, vec![])];
        for i in 0..3u64 {
            let k = i as usize;
            input.push(
                Record::data(subtype::AUDIO, Payload::F64(clip.slice(k * n..(k + 1) * n)))
                    .with_seq(i),
            );
            input.push(Record::data(subtype::TRIGGER, Payload::f64(vec![1.0; n])).with_seq(i));
        }
        input.push(Record::close_scope(scope_type::CLIP));
        let mut p = Pipeline::new();
        p.add(Cutter::new(cfg));
        let out = p.run(input).unwrap();
        validate_scopes(&out).unwrap();
        let data: Vec<&Record> = out.iter().filter(|r| r.kind == RecordKind::Data).collect();
        assert_eq!(data.len(), 3);
        for (i, r) in data.iter().enumerate() {
            let buf = r.payload.as_f64_buf().unwrap();
            assert!(SampleBuf::shares_backing(buf, &clip), "record {i} copied");
            assert_eq!(&buf[..], &clip[i * n..(i + 1) * n]);
        }
    }

    #[test]
    fn unmatched_trigger_is_error() {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(Cutter::new(cfg));
        let err = p
            .run(vec![
                Record::open_scope(scope_type::CLIP, vec![]),
                Record::data(subtype::TRIGGER, Payload::f64(vec![0.0; 840])),
            ])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn seq_mismatch_is_error() {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(Cutter::new(cfg));
        let err = p
            .run(vec![
                Record::open_scope(scope_type::CLIP, vec![]),
                Record::data(subtype::AUDIO, Payload::f64(vec![0.0; 840])).with_seq(0),
                Record::data(subtype::TRIGGER, Payload::f64(vec![0.0; 840])).with_seq(5),
            ])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }
}
