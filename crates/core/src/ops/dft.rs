//! `dft`: the discrete Fourier transform stage (paper §3).

use crate::ops::plan_cache::PlanCache;
use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use river_dsp::{Complex64, Fft};

/// The `dft` operator: transforms interleaved-complex records in place.
/// FFT plans are cached per record length in a bounded cache (Bluestein
/// handles the non-power-of-two production length), and the
/// deinterleave and Bluestein scratch buffers are reused across records
/// so the steady state allocates nothing beyond COW output buffers.
#[derive(Debug, Default, Clone)]
pub struct Dft {
    plans: PlanCache<Fft>,
    buf: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl Dft {
    /// Creates the operator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for Dft {
    fn name(&self) -> &'static str {
        "dft"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::SPECTRUM {
            if let Payload::Complex(v) = &mut record.payload {
                if v.len() % 2 != 0 {
                    return Err(PipelineError::operator(
                        "dft",
                        "complex payload with odd length",
                    ));
                }
                let n = v.len() / 2;
                let plan = self.plans.get_or_insert_with(n, Fft::new);
                self.buf.clear();
                self.buf
                    .extend(v.chunks_exact(2).map(|c| Complex64::new(c[0], c[1])));
                let need = plan.scratch_len();
                if self.scratch.len() < need {
                    self.scratch.resize(need, Complex64::ZERO);
                }
                plan.forward_scratch(&mut self.buf, &mut self.scratch[..need]);
                let buf = &self.buf;
                // Every sample gets overwritten, so a shared buffer
                // should not pay make_mut's copy of doomed data — build
                // the output directly instead. Uniquely owned buffers
                // (the float2cplx output always is) are rewritten in
                // place with no allocation at all.
                if v.is_shared() {
                    let mut interleaved = Vec::with_capacity(2 * n);
                    for z in buf {
                        interleaved.push(z.re);
                        interleaved.push(z.im);
                    }
                    record.payload = Payload::complex(interleaved);
                } else {
                    let samples = v.make_mut();
                    for (i, z) in buf.iter().enumerate() {
                        samples[2 * i] = z.re;
                        samples[2 * i + 1] = z.im;
                    }
                }
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Class-level identity; the odd-length runtime error is a
    /// length property the class model cannot see.
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::SPECTRUM, PayloadKind::Complex),
            RecordClass::of(subtype::SPECTRUM, PayloadKind::Complex),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;
    use std::f64::consts::PI;

    #[test]
    fn transforms_tone_to_bin() {
        let n = 64;
        let k0 = 4;
        let mut interleaved = Vec::with_capacity(n * 2);
        for i in 0..n {
            interleaved.push((2.0 * PI * k0 as f64 * i as f64 / n as f64).cos());
            interleaved.push(0.0);
        }
        let mut p = Pipeline::new();
        p.add(Dft::new());
        let out = p
            .run(vec![Record::data(
                subtype::SPECTRUM,
                Payload::complex(interleaved),
            )])
            .unwrap();
        let spec = out[0].payload.as_complex().unwrap();
        let mag = |k: usize| (spec[2 * k].powi(2) + spec[2 * k + 1].powi(2)).sqrt();
        assert!((mag(k0) - n as f64 / 2.0).abs() < 1e-6);
        assert!(mag(k0 + 1) < 1e-6);
    }

    #[test]
    fn shared_input_buffer_is_never_mutated() {
        use dynamic_river::SampleBuf;
        let shared = SampleBuf::from(vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        let keep = shared.clone();
        let mut p = Pipeline::new();
        p.add(Dft::new());
        let out = p
            .run(vec![Record::data(
                subtype::SPECTRUM,
                Payload::Complex(shared),
            )])
            .unwrap();
        // The sibling view still holds the pre-transform samples …
        assert_eq!(&keep[..], &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        // … and the output is a fresh buffer, not a COW copy of stale
        // data that was then overwritten.
        let spec = out[0].payload.as_complex_buf().unwrap();
        assert!(!SampleBuf::shares_backing(spec, &keep));
        assert_eq!(spec[0], 10.0); // DC bin = 1+2+3+4
    }

    #[test]
    fn plan_cache_handles_multiple_lengths() {
        let mut op = Dft::new();
        let mut sink: Vec<Record> = Vec::new();
        for n in [8usize, 840, 8] {
            op.on_record(
                Record::data(subtype::SPECTRUM, Payload::complex(vec![0.0; n * 2])),
                &mut sink,
            )
            .unwrap();
        }
        assert_eq!(op.plans.len(), 2);
    }

    #[test]
    fn plan_cache_is_bounded() {
        let mut op = Dft::new();
        let mut sink: Vec<Record> = Vec::new();
        for n in 1..100usize {
            op.on_record(
                Record::data(subtype::SPECTRUM, Payload::complex(vec![0.0; n * 2])),
                &mut sink,
            )
            .unwrap();
        }
        assert!(op.plans.len() <= op.plans.capacity());
    }

    #[test]
    fn odd_complex_payload_is_error() {
        let mut p = Pipeline::new();
        p.add(Dft::new());
        let err = p
            .run(vec![Record::data(
                subtype::SPECTRUM,
                Payload::complex(vec![0.0; 3]),
            )])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn non_spectrum_records_pass() {
        let mut p = Pipeline::new();
        p.add(Dft::new());
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![0.0; 4]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }
}
