//! `float2cplx`: converts real samples to the complex format required
//! by the `dft` operator (paper §3).

use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `float2cplx` operator: `F64` audio payloads become interleaved
/// `Complex` payloads (`re`, `im = 0`) with subtype
/// [`crate::subtype::SPECTRUM`].
#[derive(Debug, Default, Clone)]
pub struct Float2Cplx;

impl Float2Cplx {
    /// Creates the operator.
    pub fn new() -> Self {
        Self
    }
}

impl Operator for Float2Cplx {
    fn name(&self) -> &'static str {
        "float2cplx"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::AUDIO {
            if let Payload::F64(v) = &record.payload {
                let mut complex = Vec::with_capacity(v.len() * 2);
                for &x in v.iter() {
                    complex.push(x);
                    complex.push(0.0);
                }
                record.payload = Payload::complex(complex);
                record.subtype = subtype::SPECTRUM;
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::AUDIO, PayloadKind::F64),
            RecordClass::of(subtype::SPECTRUM, PayloadKind::Complex),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn interleaves_zero_imaginary() {
        let mut p = Pipeline::new();
        p.add(Float2Cplx::new());
        let out = p
            .run(vec![Record::data(
                subtype::AUDIO,
                Payload::f64(vec![1.0, -2.0]),
            )])
            .unwrap();
        assert_eq!(out[0].subtype, subtype::SPECTRUM);
        assert_eq!(out[0].payload.as_complex().unwrap(), &[1.0, 0.0, -2.0, 0.0]);
    }

    #[test]
    fn scope_records_untouched() {
        let mut p = Pipeline::new();
        p.add(Float2Cplx::new());
        let input = vec![Record::open_scope(1, vec![]), Record::close_scope(1)];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }
}
