//! `logscale`: logarithmic magnitude compression of spectral records.
//!
//! Applies `x ↦ ln(1 + 100·x)` to power records. This equalizes
//! "similar acoustic patterns that differ in signal strength" — the
//! role the paper assigns to Z-normalization (§2) — at the feature
//! level, so a loud and a quiet rendition of the same vocalization
//! yield nearby patterns under Euclidean distance. See `DESIGN.md` for
//! the deviation note.

use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// Gain applied before the logarithm; chosen so the noise floor maps
/// near zero while vocalization magnitudes spread over several units.
pub const LOG_GAIN: f64 = 100.0;

/// Applies the compression to one magnitude value.
#[inline]
pub fn log_scale_value(x: f64) -> f64 {
    (1.0 + LOG_GAIN * x).ln()
}

/// The `logscale` operator.
#[derive(Debug, Default, Clone)]
pub struct LogScale;

impl LogScale {
    /// Creates the operator.
    pub fn new() -> Self {
        Self
    }
}

impl Operator for LogScale {
    fn name(&self) -> &'static str {
        "logscale"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::POWER {
            if let Payload::F64(ref mut v) = record.payload {
                // Copy-on-write: in place for uniquely owned spectra
                // (the common case after cabs/cutout).
                for x in v.make_mut().iter_mut() {
                    *x = log_scale_value(*x);
                }
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::POWER, PayloadKind::F64),
            RecordClass::of(subtype::POWER, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn compresses_power_records() {
        let mut p = Pipeline::new();
        p.add(LogScale::new());
        let out = p
            .run(vec![Record::data(
                subtype::POWER,
                Payload::f64(vec![0.0, 0.01, 1.0]),
            )])
            .unwrap();
        let v = out[0].payload.as_f64().unwrap();
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 2.0f64.ln()).abs() < 1e-12);
        assert!((v[2] - 101.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn compression_is_monotone() {
        let mut prev = f64::MIN;
        for i in 0..100 {
            let y = log_scale_value(i as f64 * 0.1);
            assert!(y > prev);
            prev = y;
        }
    }

    #[test]
    fn loud_and_quiet_copies_become_close() {
        // A 10x amplitude difference shrinks dramatically under the log.
        let quiet = 0.05f64;
        let loud = 0.5f64;
        let before = loud / quiet;
        let after = log_scale_value(loud) / log_scale_value(quiet);
        assert!(after < before / 2.0, "before {before} after {after}");
    }

    #[test]
    fn audio_records_untouched() {
        let mut p = Pipeline::new();
        p.add(LogScale::new());
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![0.5]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }
}
