//! The pipeline operators of the paper's Figure 5.
//!
//! Acquisition: [`wav2rec::Wav2Rec`] (and [`readout::Readout`] for
//! archival). Ensemble extraction: [`saxanomaly::SaxAnomaly`] →
//! [`trigger_op::TriggerOp`] → [`cutter::Cutter`]. Spectral
//! featurization: [`reslice::Reslice`] → [`spectrum::Spectrum`] (the
//! fused window × real-FFT → magnitude hot path) → [`cutout::Cutout`]
//! → optional [`paa_op::PaaOp`] → [`rec2vect::Rec2Vect`]. The unfused
//! chain [`welchwindow::WelchWindow`] → [`float2cplx::Float2Cplx`] →
//! [`dft::Dft`] → [`cabs::Cabs`] is kept as `spectrum`'s differential
//! oracle and remains fully supported.
//!
//! All operators preserve scope discipline: clip scopes pass through
//! `saxanomaly`/`trigger`, `cutter` nests ensemble scopes inside clip
//! scopes, and the spectral stages transform data records in place
//! without touching scope records.

pub mod cabs;
pub mod cutout;
pub mod cutter;
pub mod dft;
pub mod float2cplx;
pub mod logscale;
pub mod paa_op;
pub mod plan_cache;
pub mod readout;
pub mod rec2vect;
pub mod reslice;
pub mod saxanomaly;
pub mod spectrum;
pub mod trigger_op;
pub mod wav2rec;
pub mod welchwindow;

pub use cabs::Cabs;
pub use cutout::Cutout;
pub use cutter::Cutter;
pub use dft::Dft;
pub use float2cplx::Float2Cplx;
pub use logscale::LogScale;
pub use paa_op::PaaOp;
pub use plan_cache::PlanCache;
pub use readout::Readout;
pub use rec2vect::Rec2Vect;
pub use reslice::Reslice;
pub use saxanomaly::SaxAnomaly;
pub use spectrum::Spectrum;
pub use trigger_op::TriggerOp;
pub use wav2rec::{
    clip_buf_to_records, clip_record_source, clip_to_records, clips_record_source, Wav2Rec,
};
pub use welchwindow::WelchWindow;
