//! `paa`: optional PAA reduction of each spectral record (paper §3:
//! "reduced by a factor of 10 using PAA").

use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use river_sax::paa::paa_by_factor;

/// The optional `paa` operator: reduces `F64` power records by an
/// integer factor.
#[derive(Debug, Clone)]
pub struct PaaOp {
    factor: usize,
}

impl PaaOp {
    /// Creates the operator with the given reduction factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "factor must be non-zero");
        PaaOp { factor }
    }
}

impl Operator for PaaOp {
    fn name(&self) -> &'static str {
        "paa"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::POWER {
            if let Payload::F64(v) = &record.payload {
                record.payload = Payload::f64(paa_by_factor(v, self.factor));
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::POWER, PayloadKind::F64),
            RecordClass::of(subtype::POWER, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn reduces_350_bins_to_35() {
        let mut p = Pipeline::new();
        p.add(PaaOp::new(10));
        let out = p
            .run(vec![Record::data(
                subtype::POWER,
                Payload::f64(vec![2.0; 350]),
            )])
            .unwrap();
        let v = out[0].payload.as_f64().unwrap();
        assert_eq!(v.len(), 35);
        assert!(v.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn audio_records_pass() {
        let mut p = Pipeline::new();
        p.add(PaaOp::new(10));
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![1.0; 20]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }
}
