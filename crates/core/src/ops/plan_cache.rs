//! Bounded per-record-length plan caches for the spectral operators.
//!
//! `dft`, `spectrum`, and `welchwindow` all precompute per-length state
//! (FFT plans, window coefficient tables) and reuse it for every record
//! of that length. Record lengths come off the wire, though, so an
//! unbounded `HashMap` would let a pathological stream of varying
//! lengths grow operator memory without limit. [`PlanCache`] caps the
//! entry count with FIFO eviction: the production workload uses one or
//! two lengths (840, and 2 × 840 interleaved complex), so any small cap
//! keeps the hot path a single hash probe while bounding the worst
//! case.

use std::collections::{HashMap, VecDeque};

/// Default entry cap for spectral plan caches — far above any real
/// record-geometry mix, small enough that even a hostile stream of
/// unique lengths holds only a handful of plans.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 16;

/// A bounded map from record length to a precomputed plan, with FIFO
/// eviction at capacity.
///
/// # Example
///
/// ```
/// use ensemble_core::ops::plan_cache::PlanCache;
///
/// let mut cache: PlanCache<Vec<f64>> = PlanCache::new(2);
/// cache.get_or_insert_with(8, |n| vec![0.0; n]);
/// cache.get_or_insert_with(16, |n| vec![0.0; n]);
/// cache.get_or_insert_with(32, |n| vec![0.0; n]); // evicts 8
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PlanCache<V> {
    cap: usize,
    map: HashMap<usize, V>,
    /// Insertion order, oldest first.
    order: VecDeque<usize>,
}

impl<V> PlanCache<V> {
    /// Creates a cache holding at most `cap` plans.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "plan cache capacity must be non-zero");
        PlanCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Returns the plan for length `n`, building it with `build` on a
    /// miss (evicting the oldest entry first when at capacity).
    pub fn get_or_insert_with(&mut self, n: usize, build: impl FnOnce(usize) -> V) -> &mut V {
        if !self.map.contains_key(&n) {
            if self.map.len() >= self.cap {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
            self.map.insert(n, build(n));
            self.order.push_back(n);
        }
        self.map.get_mut(&n).expect("entry just ensured")
    }
}

impl<V> Default for PlanCache<V> {
    fn default() -> Self {
        Self::new(DEFAULT_PLAN_CACHE_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_rebuilds_nothing_on_hits() {
        let mut cache: PlanCache<usize> = PlanCache::new(4);
        let mut builds = 0;
        for &n in &[8, 16, 8, 16, 8] {
            cache.get_or_insert_with(n, |n| {
                builds += 1;
                n
            });
        }
        assert_eq!(builds, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut cache: PlanCache<usize> = PlanCache::new(2);
        cache.get_or_insert_with(1, |n| n);
        cache.get_or_insert_with(2, |n| n);
        cache.get_or_insert_with(3, |n| n);
        assert_eq!(cache.len(), 2);
        // 1 was evicted: re-requesting it rebuilds (and evicts 2).
        let mut rebuilt = false;
        cache.get_or_insert_with(1, |n| {
            rebuilt = true;
            n
        });
        assert!(rebuilt);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pathological_length_stream_stays_bounded() {
        let mut cache: PlanCache<Vec<f64>> = PlanCache::default();
        for n in 1..10_000usize {
            cache.get_or_insert_with(n, |n| vec![0.0; n.min(4)]);
        }
        assert_eq!(cache.len(), DEFAULT_PLAN_CACHE_CAP);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::<usize>::new(0);
    }
}
