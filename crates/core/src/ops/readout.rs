//! `readout`: archives the record stream to storage.
//!
//! "Audio clips are acquired by a sensor platform and transmitted to a
//! `readout` operator that writes the clips to record for storage …
//! it is often desirable to retain a copy of the raw data for later
//! study" (paper §3). Records are archived in the wire-frame format, so
//! an archive can later be replayed through `streamin`.

use dynamic_river::codec::{write_eos, write_record};
use dynamic_river::{Operator, PipelineError, Record, Sink};
use std::io::Write;

/// Archival pass-through operator: every record is framed to the writer
/// and also forwarded downstream.
pub struct Readout<W: Write + Send> {
    writer: W,
    archived: u64,
}

impl<W: Write + Send> Readout<W> {
    /// Creates a readout archiving to `writer`. A `&mut W` may be
    /// passed.
    pub fn new(writer: W) -> Self {
        Readout {
            writer,
            archived: 0,
        }
    }

    /// Number of records archived so far.
    pub fn archived(&self) -> u64 {
        self.archived
    }
}

impl<W: Write + Send> Operator for Readout<W> {
    fn name(&self) -> &'static str {
        "readout"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_record(&mut self.writer, &record)?;
        self.archived += 1;
        out.push(record)
    }

    fn on_eos(&mut self, _out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_eos(&mut self.writer)?;
        Ok(())
    }

    /// Archival tap: pure passthrough for the stream. Note the missing
    /// `clone_op` — the writer is an exclusive resource, so chains
    /// containing a readout are shard-unsafe (which the analyzer
    /// reports).
    fn signature(&self) -> Option<dynamic_river::Signature> {
        Some(dynamic_river::Signature::passthrough())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::net::{StreamEnd, StreamIn};
    use dynamic_river::Payload;

    #[test]
    fn archive_replays_identically() {
        let input = vec![
            Record::open_scope(1, vec![("sample_rate".into(), "20160".into())]),
            Record::data(1, Payload::f64(vec![1.0, 2.0])),
            Record::close_scope(1),
        ];
        let mut archive = Vec::new();
        {
            // Drive the operator directly so the archive buffer remains
            // accessible afterwards.
            let mut op = Readout::new(&mut archive);
            let mut passed: Vec<Record> = Vec::new();
            for r in input.clone() {
                op.on_record(r, &mut passed).unwrap();
            }
            op.on_eos(&mut passed).unwrap();
            assert_eq!(passed, input); // pass-through
        }
        // Replay the archive through streamin.
        let mut sink: Vec<Record> = Vec::new();
        let end = StreamIn::new(archive.as_slice()).pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink, input);
    }

    #[test]
    fn counts_archived_records() {
        let mut buf = Vec::new();
        let mut op = Readout::new(&mut buf);
        let mut sink: Vec<Record> = Vec::new();
        for _ in 0..5 {
            op.on_record(Record::data(0, Payload::Empty), &mut sink)
                .unwrap();
        }
        assert_eq!(op.archived(), 5);
    }
}
