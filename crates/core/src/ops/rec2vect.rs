//! `rec2vect`: merges spectral records into feature patterns.
//!
//! "The `rec2vect` operator converts pipeline records to vectors of
//! floating point values (patterns), suitable for use in our
//! classification and detection experiments with MESO. … Each pattern
//! was constructed by merging 3 frequency domain records" (paper §3–4).

use crate::{scope_type, subtype};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `rec2vect` operator: inside each ensemble scope, every
/// `per_pattern` consecutive power records merge into one pattern
/// record (subtype [`crate::subtype::PATTERN`]); a trailing group with
/// fewer records is discarded at ensemble close. The pattern sequence
/// counter is clip-local (it resets at every clip `OpenScope`, like
/// `cutter`'s record counter), which keeps the operator scope-local —
/// the property the sharded runtime relies on for byte-identical
/// output.
#[derive(Debug, Clone)]
pub struct Rec2Vect {
    per_pattern: usize,
    buffer: Vec<f64>,
    buffered_records: usize,
    in_ensemble: bool,
    pattern_seq: u64,
}

impl Rec2Vect {
    /// Creates the operator (the paper merges 3 records per pattern).
    ///
    /// # Panics
    ///
    /// Panics if `per_pattern == 0`.
    pub fn new(per_pattern: usize) -> Self {
        assert!(per_pattern > 0, "per_pattern must be non-zero");
        Rec2Vect {
            per_pattern,
            buffer: Vec::new(),
            buffered_records: 0,
            in_ensemble: false,
            pattern_seq: 0,
        }
    }

    fn reset_group(&mut self) {
        self.buffer.clear();
        self.buffered_records = 0;
    }
}

impl Operator for Rec2Vect {
    fn name(&self) -> &'static str {
        "rec2vect"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.in_ensemble = false;
                self.pattern_seq = 0;
                self.reset_group();
                out.push(record)
            }
            RecordKind::OpenScope if record.scope_type == scope_type::ENSEMBLE => {
                self.in_ensemble = true;
                self.reset_group();
                out.push(record)
            }
            k if k.closes_scope() && record.scope_type == scope_type::ENSEMBLE => {
                // Trailing partial group is discarded (paper patterns are
                // always exactly per_pattern records).
                self.in_ensemble = false;
                self.reset_group();
                out.push(record)
            }
            RecordKind::Data if self.in_ensemble && record.subtype == subtype::POWER => {
                let Some(v) = record.payload.as_f64() else {
                    return Err(PipelineError::operator(
                        "rec2vect",
                        "power record without F64 payload",
                    ));
                };
                self.buffer.extend_from_slice(v);
                self.buffered_records += 1;
                if self.buffered_records == self.per_pattern {
                    let features = std::mem::take(&mut self.buffer);
                    let seq = self.pattern_seq;
                    self.pattern_seq += 1;
                    self.buffered_records = 0;
                    out.push(
                        Record::data(subtype::PATTERN, Payload::f64(features))
                            .with_seq(seq)
                            .with_depth(record.scope_depth),
                    )?;
                }
                Ok(())
            }
            _ => out.push(record),
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// In-ensemble power spectra are absorbed into the pattern
    /// vector emitted at the ensemble close; other records pass.
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::POWER, PayloadKind::F64),
            RecordClass::of(subtype::PATTERN, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::Pipeline;

    fn power_ensemble(records: usize, bins: usize) -> Vec<Record> {
        let mut v = vec![Record::open_scope(scope_type::ENSEMBLE, vec![])];
        for i in 0..records {
            v.push(
                Record::data(subtype::POWER, Payload::f64(vec![i as f64; bins])).with_seq(i as u64),
            );
        }
        v.push(Record::close_scope(scope_type::ENSEMBLE));
        v
    }

    #[test]
    fn merges_three_records_per_pattern() {
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(power_ensemble(6, 350)).unwrap();
        validate_scopes(&out).unwrap();
        let patterns: Vec<&Record> = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN)
            .collect();
        assert_eq!(patterns.len(), 2);
        assert_eq!(patterns[0].payload.as_f64().unwrap().len(), 1_050);
        // First pattern = records 0,1,2 concatenated.
        let f = patterns[0].payload.as_f64().unwrap();
        assert_eq!(f[0], 0.0);
        assert_eq!(f[350], 1.0);
        assert_eq!(f[700], 2.0);
        assert_eq!(patterns[0].seq, 0);
        assert_eq!(patterns[1].seq, 1);
    }

    #[test]
    fn trailing_partial_group_dropped() {
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(power_ensemble(5, 10)).unwrap();
        let patterns = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN)
            .count();
        assert_eq!(patterns, 1);
    }

    #[test]
    fn ensemble_with_too_few_records_yields_no_patterns() {
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(power_ensemble(2, 10)).unwrap();
        assert!(out.iter().all(|r| r.subtype != subtype::PATTERN));
        validate_scopes(&out).unwrap();
    }

    #[test]
    fn groups_do_not_cross_ensembles() {
        let mut input = power_ensemble(2, 4);
        input.extend(power_ensemble(2, 4));
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(input).unwrap();
        // 2 + 2 records never form a 3-record pattern across the boundary.
        assert!(out.iter().all(|r| r.subtype != subtype::PATTERN));
    }

    #[test]
    fn pattern_seq_increases_across_ensembles() {
        let mut input = power_ensemble(3, 4);
        input.extend(power_ensemble(3, 4));
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(input).unwrap();
        let seqs: Vec<u64> = out
            .iter()
            .filter(|r| r.subtype == subtype::PATTERN)
            .map(|r| r.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn pattern_seq_resets_per_clip() {
        // Two identical clips must emit identical pattern sequences —
        // the scope-local contract the sharded runtime depends on.
        let clip = |count| {
            let mut v = vec![Record::open_scope(scope_type::CLIP, vec![])];
            v.extend(power_ensemble(count, 4));
            v.push(Record::close_scope(scope_type::CLIP));
            v
        };
        let mut input = clip(3);
        input.extend(clip(3));
        let mut p = Pipeline::new();
        p.add(Rec2Vect::new(3));
        let out = p.run(input).unwrap();
        let seqs: Vec<u64> = out
            .iter()
            .filter(|r| r.subtype == subtype::PATTERN)
            .map(|r| r.seq)
            .collect();
        assert_eq!(seqs, vec![0, 0]);
    }
}
