//! `reslice`: 50 % overlap records for Welch-style spectral analysis.
//!
//! "For each pair of ensemble records, the `reslice` operator constructs
//! a new record comprising the last half of the first record and the
//! second half of the second original record. This new record is then
//! inserted into the record stream between the two original records"
//! (paper §3).

use crate::{scope_type, subtype};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `reslice` operator (operates on audio records inside ensemble
/// scopes; everything else passes through).
#[derive(Debug, Default, Clone)]
pub struct Reslice {
    /// Previous audio record within the current ensemble.
    held: Option<Record>,
    in_ensemble: bool,
}

impl Reslice {
    /// Creates the operator.
    pub fn new() -> Self {
        Self::default()
    }

    fn flush_held(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if let Some(r) = self.held.take() {
            out.push(r)?;
        }
        Ok(())
    }
}

impl Operator for Reslice {
    fn name(&self) -> &'static str {
        "reslice"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::ENSEMBLE => {
                self.flush_held(out)?;
                self.in_ensemble = true;
                out.push(record)
            }
            k if k.closes_scope() && record.scope_type == scope_type::ENSEMBLE => {
                self.flush_held(out)?;
                self.in_ensemble = false;
                out.push(record)
            }
            RecordKind::Data if self.in_ensemble && record.subtype == subtype::AUDIO => {
                let Some(cur) = record.payload.as_f64_buf() else {
                    return Err(PipelineError::operator(
                        "reslice",
                        "audio record without F64 payload",
                    ));
                };
                if let Some(prev_rec) = self.held.take() {
                    let prev = prev_rec.payload.as_f64_buf().expect("held record is F64");
                    if prev.len() != cur.len() {
                        return Err(PipelineError::operator(
                            "reslice",
                            format!("record length change {} -> {}", prev.len(), cur.len()),
                        ));
                    }
                    let n = prev.len();
                    let half = n / 2;
                    // When the two records are adjacent views into one
                    // clip allocation (the wav2rec / cutter fast path),
                    // the overlap window is itself just a view — no
                    // samples are copied. Records from unrelated
                    // allocations fall back to one copy.
                    let overlap = if let Some(joined) = prev.merged_with(cur) {
                        joined.slice(n - half..2 * n - half)
                    } else {
                        let mut v = Vec::with_capacity(n);
                        v.extend_from_slice(&prev[n - half..]);
                        v.extend_from_slice(&cur[..n - half]);
                        v.into()
                    };
                    let overlap_rec = Record::data(subtype::AUDIO, Payload::F64(overlap))
                        .with_seq(prev_rec.seq)
                        .with_depth(prev_rec.scope_depth);
                    out.push(prev_rec)?;
                    out.push(overlap_rec)?;
                }
                self.held = Some(record);
                Ok(())
            }
            _ => {
                // Leaving any non-data context flushes the held record.
                if record.is_scope_marker() {
                    self.flush_held(out)?;
                }
                out.push(record)
            }
        }
    }

    fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        self.flush_held(out)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(
            Signature::map(
                RecordClass::of(subtype::AUDIO, PayloadKind::F64),
                RecordClass::of(subtype::AUDIO, PayloadKind::F64),
            )
            .with_eos_flush(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::Pipeline;

    fn ensemble_stream(records: &[Vec<f64>]) -> Vec<Record> {
        let mut v = vec![Record::open_scope(scope_type::ENSEMBLE, vec![])];
        for (i, r) in records.iter().enumerate() {
            v.push(Record::data(subtype::AUDIO, Payload::f64(r.clone())).with_seq(i as u64));
        }
        v.push(Record::close_scope(scope_type::ENSEMBLE));
        v
    }

    #[test]
    fn inserts_overlap_between_pairs() {
        let a: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let b: Vec<f64> = (8..16).map(|i| i as f64).collect();
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let out = p.run(ensemble_stream(&[a, b])).unwrap();
        validate_scopes(&out).unwrap();
        // open, a, overlap, b, close
        assert_eq!(out.len(), 5);
        let overlap = out[2].payload.as_f64().unwrap();
        assert_eq!(overlap, &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn adjacent_views_yield_zero_copy_overlaps() {
        use dynamic_river::SampleBuf;
        // Records sliced out of one clip buffer (as wav2rec emits them):
        // the inserted overlap must be a view into that same buffer.
        let clip = SampleBuf::from((0..16).map(|i| i as f64).collect::<Vec<f64>>());
        let input = vec![
            Record::open_scope(scope_type::ENSEMBLE, vec![]),
            Record::data(subtype::AUDIO, Payload::F64(clip.slice(0..8))).with_seq(0),
            Record::data(subtype::AUDIO, Payload::F64(clip.slice(8..16))).with_seq(1),
            Record::close_scope(scope_type::ENSEMBLE),
        ];
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let out = p.run(input).unwrap();
        assert_eq!(out.len(), 5);
        let overlap = out[2].payload.as_f64_buf().unwrap();
        assert!(
            SampleBuf::shares_backing(overlap, &clip),
            "overlap window copied samples"
        );
        assert_eq!(overlap.offset(), 4);
        assert_eq!(&overlap[..], &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn three_records_produce_two_overlaps() {
        let recs: Vec<Vec<f64>> = (0..3).map(|k| vec![k as f64; 6]).collect();
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let out = p.run(ensemble_stream(&recs)).unwrap();
        // open + 3 originals + 2 overlaps + close
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn single_record_ensemble_unchanged() {
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let out = p.run(ensemble_stream(&[vec![1.0; 4]])).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn does_not_cross_ensemble_boundaries() {
        let mut input = ensemble_stream(&[vec![1.0; 4]]);
        input.extend(ensemble_stream(&[vec![2.0; 4]]));
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let out = p.run(input).unwrap();
        // Two ensembles of one record each: no overlaps created.
        assert_eq!(out.len(), 6);
        validate_scopes(&out).unwrap();
    }

    #[test]
    fn records_outside_ensembles_pass_through() {
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![0.0; 4]))];
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }

    #[test]
    fn length_change_is_error() {
        let mut p = Pipeline::new();
        p.add(Reslice::new());
        let err = p
            .run(ensemble_stream(&[vec![0.0; 4], vec![0.0; 8]]))
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }
}
