//! `saxanomaly`: per-sample smoothed SAX-bitmap anomaly scores.
//!
//! "The moving average of the SAX anomaly score … is output by
//! `saxanomaly` in addition to the original acoustic data" (paper §3).
//! For every audio record (subtype [`crate::subtype::AUDIO`]) inside a
//! clip scope, the operator emits the record followed by a score record
//! (subtype [`crate::subtype::SCORE`]) of equal length and equal `seq`,
//! so downstream operators can realign samples and scores. Detector and
//! smoother state reset at every clip boundary.

use crate::config::ExtractorConfig;
use crate::{scope_type, subtype};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use river_dsp::stats::MovingAverage;
use river_sax::anomaly::BitmapAnomaly;

/// The `saxanomaly` operator.
#[derive(Clone)]
pub struct SaxAnomaly {
    detector: BitmapAnomaly,
    smoother: MovingAverage,
}

impl SaxAnomaly {
    /// Creates the operator from the pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ExtractorConfig) -> Self {
        config.validate();
        SaxAnomaly {
            detector: BitmapAnomaly::new(config.anomaly_config()),
            smoother: MovingAverage::new(config.ma_window),
        }
    }

    fn reset(&mut self) {
        self.detector.reset();
        self.smoother.clear();
    }
}

impl Operator for SaxAnomaly {
    fn name(&self) -> &'static str {
        "saxanomaly"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.reset();
                out.push(record)
            }
            RecordKind::Data if record.subtype == subtype::AUDIO => {
                let Some(samples) = record.payload.as_f64() else {
                    return Err(PipelineError::operator(
                        "saxanomaly",
                        "audio record without F64 payload",
                    ));
                };
                let scores: Vec<f64> = samples
                    .iter()
                    .map(|&x| self.smoother.push(self.detector.push(x)))
                    .collect();
                let score_record = Record::data(subtype::SCORE, Payload::f64(scores))
                    .with_seq(record.seq)
                    .with_depth(record.scope_depth);
                out.push(record)?;
                out.push(score_record)
            }
            _ => out.push(record),
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Taps the audio stream: audio records continue downstream and a
    /// score record is emitted per audio record. Audio with a
    /// non-F64 payload is a runtime error (strict).
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(
            Signature::map(
                RecordClass::of(subtype::AUDIO, PayloadKind::F64),
                RecordClass::of(subtype::SCORE, PayloadKind::F64),
            )
            .with_passthrough_of_matched()
            .with_strict_payload(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::wav2rec::clip_to_records;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::Pipeline;

    fn run_on(samples: &[f64]) -> Vec<Record> {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(SaxAnomaly::new(cfg));
        p.run(clip_to_records(
            samples,
            cfg.sample_rate,
            cfg.record_len,
            &[],
        ))
        .unwrap()
    }

    #[test]
    fn emits_score_record_per_audio_record() {
        let out = run_on(&vec![0.01; 840 * 3]);
        let audio = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::AUDIO)
            .count();
        let scores = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::SCORE)
            .count();
        assert_eq!(audio, 3);
        assert_eq!(scores, 3);
        validate_scopes(&out).unwrap();
    }

    #[test]
    fn score_records_align_with_audio() {
        let out = run_on(&vec![0.01; 840 * 2]);
        let data: Vec<&Record> = out.iter().filter(|r| r.kind == RecordKind::Data).collect();
        // audio(0), score(0), audio(1), score(1)
        assert_eq!(data[0].subtype, subtype::AUDIO);
        assert_eq!(data[1].subtype, subtype::SCORE);
        assert_eq!(data[0].seq, data[1].seq);
        assert_eq!(
            data[0].payload.as_f64().unwrap().len(),
            data[1].payload.as_f64().unwrap().len()
        );
    }

    #[test]
    fn matches_direct_extraction_scores() {
        // The record-level operator and the direct extractor must produce
        // identical score traces.
        let samples: Vec<f64> = (0..840 * 4)
            .map(|i| (i as f64 * 0.37).sin() * 0.01)
            .collect();
        let out = run_on(&samples);
        let record_scores: Vec<f64> = out
            .iter()
            .filter(|r| r.subtype == subtype::SCORE && r.kind == RecordKind::Data)
            .flat_map(|r| r.payload.as_f64().unwrap().to_vec())
            .collect();
        let cfg = ExtractorConfig::default();
        let trace = crate::extract::EnsembleExtractor::new(cfg).extract_with_trace(&samples);
        assert_eq!(record_scores, trace.scores);
    }

    #[test]
    fn state_resets_between_clips() {
        let cfg = ExtractorConfig::default();
        let samples = vec![0.01; 840 * 2];
        let mut one_clip = Pipeline::new();
        one_clip.add(SaxAnomaly::new(cfg));
        let single = one_clip
            .run(clip_to_records(
                &samples,
                cfg.sample_rate,
                cfg.record_len,
                &[],
            ))
            .unwrap();

        let mut two_clips = Pipeline::new();
        two_clips.add(SaxAnomaly::new(cfg));
        let mut input = clip_to_records(&samples, cfg.sample_rate, cfg.record_len, &[]);
        input.extend(clip_to_records(
            &samples,
            cfg.sample_rate,
            cfg.record_len,
            &[],
        ));
        let double = two_clips.run(input).unwrap();

        // Second clip's scores equal the first clip's (state was reset).
        let single_scores: Vec<&Record> = single
            .iter()
            .filter(|r| r.subtype == subtype::SCORE)
            .collect();
        let double_scores: Vec<&Record> = double
            .iter()
            .filter(|r| r.subtype == subtype::SCORE)
            .collect();
        assert_eq!(double_scores.len(), 2 * single_scores.len());
        for (a, b) in single_scores
            .iter()
            .zip(&double_scores[single_scores.len()..])
        {
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn rejects_audio_without_f64() {
        let mut p = Pipeline::new();
        p.add(SaxAnomaly::new(ExtractorConfig::default()));
        let err = p
            .run(vec![Record::data(
                subtype::AUDIO,
                Payload::Text("x".into()),
            )])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }
}
