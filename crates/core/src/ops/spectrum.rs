//! `spectrum`: the fused spectral hot path.
//!
//! Replaces the four-operator chain `welchwindow` → `float2cplx` →
//! `dft` → `cabs` with a single pass: Welch-window the audio samples,
//! run a real-input FFT (N real samples packed into an N/2 complex
//! transform), and take bin magnitudes straight out of the Hermitian
//! unpack — all into buffers owned by the plan, so the steady state
//! allocates only the output payload. The original four operators are
//! retained as a differential oracle; `spectrum` must match them
//! record-for-record to ≤ 1e-9 relative error (enforced by property
//! tests in `tests/properties.rs`).

use crate::ops::plan_cache::PlanCache;
use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use river_dsp::window::WindowKind;
use river_dsp::{Complex64, RealFft};

/// Per-record-length plan: the Welch window table and the real-FFT plan
/// (twiddles, chirp, and kernel live inside the `RealFft`).
#[derive(Debug, Clone)]
struct SpectrumPlan {
    window: Vec<f64>,
    rfft: RealFft,
}

/// The fused `spectrum` operator: audio records in, magnitude spectra
/// (subtype [`subtype::POWER`]) out, equivalent to
/// `welchwindow → float2cplx → dft → cabs` in one pass.
///
/// Plans are cached per record length in a bounded [`PlanCache`];
/// scratch buffers are reused across records, so after the first record
/// of each length the only per-record allocation is the output payload.
#[derive(Debug, Default, Clone)]
pub struct Spectrum {
    plans: PlanCache<SpectrumPlan>,
    scratch: Vec<Complex64>,
}

impl Spectrum {
    /// Creates the operator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached per-length plans (test hook).
    #[cfg(test)]
    fn plan_count(&self) -> usize {
        self.plans.len()
    }
}

impl Operator for Spectrum {
    fn name(&self) -> &'static str {
        "spectrum"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::AUDIO {
            if let Payload::F64(v) = &record.payload {
                // The oracle chain passes empty records through
                // unchanged (an empty DFT has nothing to transform), so
                // the fused path must too.
                if !v.is_empty() {
                    let n = v.len();
                    let plan = self.plans.get_or_insert_with(n, |n| SpectrumPlan {
                        window: WindowKind::Welch.coefficients(n),
                        rfft: RealFft::new(n),
                    });
                    let need = plan.rfft.scratch_len();
                    if self.scratch.len() < need {
                        self.scratch.resize(need, Complex64::ZERO);
                    }
                    let mut mags = vec![0.0; n];
                    plan.rfft.magnitudes_into(
                        v,
                        Some(&plan.window),
                        &mut mags,
                        &mut self.scratch[..need],
                    );
                    record.payload = Payload::f64(mags);
                    record.subtype = subtype::POWER;
                }
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Identical to the oracle chain's end-to-end signature:
    /// `welchwindow -> float2cplx -> dft -> cabs` composes to the
    /// same AUDIO/f64 -> POWER/f64 transfer function.
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::AUDIO, PayloadKind::F64),
            RecordClass::of(subtype::POWER, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Cabs, Dft, Float2Cplx, WelchWindow};
    use dynamic_river::Pipeline;
    use std::f64::consts::PI;

    fn tone(n: usize, k0: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect()
    }

    fn run_fused(records: Vec<Record>) -> Vec<Record> {
        let mut p = Pipeline::new();
        p.add(Spectrum::new());
        p.run(records).unwrap()
    }

    fn run_oracle(records: Vec<Record>) -> Vec<Record> {
        let mut p = Pipeline::new();
        p.add(WelchWindow::new());
        p.add(Float2Cplx::new());
        p.add(Dft::new());
        p.add(Cabs::new());
        p.run(records).unwrap()
    }

    #[test]
    fn matches_oracle_chain_on_production_length() {
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(tone(840, 17)))];
        let fused = run_fused(input.clone());
        let oracle = run_oracle(input);
        assert_eq!(fused.len(), oracle.len());
        assert_eq!(fused[0].subtype, oracle[0].subtype);
        let a = fused[0].payload.as_f64().unwrap();
        let b = oracle[0].payload.as_f64().unwrap();
        let scale = b.iter().copied().fold(1.0_f64, f64::max);
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-9 * scale, "bin {k}: {x} vs {y}");
        }
    }

    #[test]
    fn emits_power_subtype() {
        let out = run_fused(vec![Record::data(
            subtype::AUDIO,
            Payload::f64(tone(64, 4)),
        )]);
        assert_eq!(out[0].subtype, subtype::POWER);
        assert_eq!(out[0].payload.as_f64().unwrap().len(), 64);
    }

    #[test]
    fn empty_audio_record_passes_through() {
        // The oracle chain cannot process empty records (a zero-length
        // FFT has no plan), so the fused path leaves them untouched
        // rather than emitting an empty spectrum.
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![]))];
        assert_eq!(run_fused(input.clone()), input);
    }

    #[test]
    fn non_audio_records_untouched() {
        let input = vec![Record::data(subtype::SCORE, Payload::f64(vec![1.0; 8]))];
        assert_eq!(run_fused(input.clone()), input);
    }

    #[test]
    fn plan_cache_is_bounded() {
        let mut op = Spectrum::new();
        let mut sink: Vec<Record> = Vec::new();
        for n in 1..100usize {
            op.on_record(
                Record::data(subtype::AUDIO, Payload::f64(vec![0.5; n])),
                &mut sink,
            )
            .unwrap();
        }
        assert!(op.plan_count() <= op.plans.capacity());
    }
}
