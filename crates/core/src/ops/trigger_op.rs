//! `trigger`: converts smoothed anomaly scores into a 0/1 trigger
//! signal (paper §3, Figure 6 top).
//!
//! Score records (subtype [`crate::subtype::SCORE`]) become trigger
//! records (subtype [`crate::subtype::TRIGGER`], values 0.0/1.0); audio
//! and scope records pass through. Trigger state resets per clip.

use crate::config::ExtractorConfig;
use crate::extract::AdaptiveTrigger;
use crate::{scope_type, subtype};
use dynamic_river::telemetry::{EventKind, EventSink};
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};

/// The `trigger` operator.
#[derive(Clone)]
pub struct TriggerOp {
    config: ExtractorConfig,
    trigger: AdaptiveTrigger,
    /// Telemetry event sink (disabled unless a runner attaches one);
    /// reports each low→high trigger transition as a `TriggerFire`.
    events: EventSink,
    /// Whether the trigger was high after the previous sample, so only
    /// transitions — not every high sample — become events.
    was_high: bool,
}

impl TriggerOp {
    /// Creates the operator from the pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ExtractorConfig) -> Self {
        config.validate();
        TriggerOp {
            trigger: Self::fresh_trigger(&config),
            config,
            events: EventSink::disabled(),
            was_high: false,
        }
    }

    fn fresh_trigger(config: &ExtractorConfig) -> AdaptiveTrigger {
        let warmup = (2 * config.anomaly_window + config.ma_window) as u64;
        AdaptiveTrigger::with_hold(config.trigger_sigmas, warmup, config.trigger_hold as u64)
    }
}

impl Operator for TriggerOp {
    fn name(&self) -> &'static str {
        "trigger"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope if record.scope_type == scope_type::CLIP => {
                self.trigger = Self::fresh_trigger(&self.config);
                self.was_high = false;
                out.push(record)
            }
            RecordKind::Data if record.subtype == subtype::SCORE => {
                let Some(scores) = record.payload.as_f64() else {
                    return Err(PipelineError::operator(
                        "trigger",
                        "score record without F64 payload",
                    ));
                };
                let values: Vec<f64> = scores
                    .iter()
                    .map(|&s| {
                        let high = self.trigger.push(s);
                        if high && !self.was_high {
                            self.events.emit(EventKind::TriggerFire, record.seq);
                        }
                        self.was_high = high;
                        if high {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                out.push(
                    Record::data(subtype::TRIGGER, Payload::f64(values))
                        .with_seq(record.seq)
                        .with_depth(record.scope_depth),
                )
            }
            _ => out.push(record),
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(
            Signature::map(
                RecordClass::of(subtype::SCORE, PayloadKind::F64),
                RecordClass::of(subtype::TRIGGER, PayloadKind::F64),
            )
            .with_strict_payload(),
        )
    }

    fn attach_events(&mut self, events: &EventSink) {
        self.events = events.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::saxanomaly::SaxAnomaly;
    use crate::ops::wav2rec::clip_to_records;
    use crate::prelude::*;
    use dynamic_river::Pipeline;

    fn run_chain(samples: &[f64]) -> Vec<Record> {
        let cfg = ExtractorConfig::default();
        let mut p = Pipeline::new();
        p.add(SaxAnomaly::new(cfg));
        p.add(TriggerOp::new(cfg));
        p.run(clip_to_records(
            samples,
            cfg.sample_rate,
            cfg.record_len,
            &[],
        ))
        .unwrap()
    }

    #[test]
    fn scores_replaced_by_triggers() {
        let out = run_chain(&vec![0.01; 840 * 3]);
        assert!(out.iter().all(|r| r.subtype != subtype::SCORE));
        let triggers = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::TRIGGER)
            .count();
        assert_eq!(triggers, 3);
    }

    #[test]
    fn trigger_values_are_binary() {
        let out = run_chain(&vec![0.01; 840 * 3]);
        for r in out.iter().filter(|r| r.subtype == subtype::TRIGGER) {
            for &v in r.payload.as_f64().unwrap() {
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }

    #[test]
    fn matches_direct_extraction_trigger() {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Rwbl, 11);
        let cfg = ExtractorConfig::default();
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let out = run_chain(&clip.samples[..usable]);
        let record_trigger: Vec<u8> = out
            .iter()
            .filter(|r| r.subtype == subtype::TRIGGER && r.kind == RecordKind::Data)
            .flat_map(|r| {
                r.payload
                    .as_f64()
                    .unwrap()
                    .iter()
                    .map(|&v| v as u8)
                    .collect::<Vec<u8>>()
            })
            .collect();
        let trace =
            crate::extract::EnsembleExtractor::new(cfg).extract_with_trace(&clip.samples[..usable]);
        assert_eq!(record_trigger, trace.trigger);
    }

    #[test]
    fn audio_passes_through_unmodified() {
        let samples: Vec<f64> = (0..840 * 2)
            .map(|i| (i as f64 * 0.3).sin() * 0.01)
            .collect();
        let out = run_chain(&samples);
        let audio: Vec<f64> = out
            .iter()
            .filter(|r| r.subtype == subtype::AUDIO && r.kind == RecordKind::Data)
            .flat_map(|r| r.payload.as_f64().unwrap().to_vec())
            .collect();
        assert_eq!(audio, samples[..840 * 2].to_vec());
    }
}
