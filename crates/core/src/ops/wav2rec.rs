//! `wav2rec`: encapsulates acoustic data in pipeline records.
//!
//! "During analysis, a data feed is invoked to read clips from storage
//! and write them to `wav2rec` to encapsulate acoustic data (WAV format
//! in this case) in pipeline records" (paper §3). Incoming records carry
//! whole WAV files as bytes; each becomes a clip scope containing
//! fixed-length audio records.

use crate::{context_key, scope_type, subtype};
use dynamic_river::source::ChunkedF64Source;
use dynamic_river::{Operator, Payload, PipelineError, Record, SampleBuf, Sink};
use river_dsp::wav::WavReader;

/// Splits raw clip samples into a scoped record stream: an `OpenScope`
/// (type `CLIP`, carrying the sample rate), `record_len`-sample audio
/// records, and a `CloseScope`. Trailing samples that do not fill a
/// record are dropped (the sensor platform sends whole records).
///
/// The samples are copied **once** into a shared clip buffer; every
/// audio record is then an O(1) view into that single allocation
/// ([`clip_buf_to_records`]), so downstream fan-out, re-windowing and
/// cloning never copy sample data again.
///
/// # Panics
///
/// Panics if `record_len == 0`.
///
/// # Example
///
/// ```
/// use ensemble_core::ops::clip_to_records;
///
/// let records = clip_to_records(&[0.0; 2_000], 20_160.0, 840, &[]);
/// // open + 2 full audio records (1680 samples) + close
/// assert_eq!(records.len(), 4);
/// ```
pub fn clip_to_records(
    samples: &[f64],
    sample_rate: f64,
    record_len: usize,
    extra_context: &[(String, String)],
) -> Vec<Record> {
    clip_buf_to_records(
        &SampleBuf::from(samples),
        sample_rate,
        record_len,
        extra_context,
    )
}

/// [`clip_to_records`] over an already-shared clip buffer: emits the
/// same scoped stream with **zero** sample copies — each audio record is
/// a `record_len` view sliced out of `samples`' backing allocation.
///
/// # Panics
///
/// Panics if `record_len == 0`.
pub fn clip_buf_to_records(
    samples: &SampleBuf,
    sample_rate: f64,
    record_len: usize,
    extra_context: &[(String, String)],
) -> Vec<Record> {
    assert!(record_len > 0, "record_len must be non-zero");
    let mut context = vec![(
        context_key::SAMPLE_RATE.to_string(),
        format!("{sample_rate}"),
    )];
    context.extend_from_slice(extra_context);
    let full = samples.len() / record_len;
    let mut out = Vec::with_capacity(full + 2);
    out.push(Record::open_scope(scope_type::CLIP, context).with_depth(0));
    for i in 0..full {
        out.push(
            Record::data(
                subtype::AUDIO,
                Payload::F64(samples.slice(i * record_len..(i + 1) * record_len)),
            )
            .with_seq(i as u64)
            .with_depth(1),
        );
    }
    out.push(Record::close_scope(scope_type::CLIP).with_depth(0));
    out
}

/// Streaming equivalent of [`clip_to_records`]: wraps a sample
/// iterator as a [`ChunkedF64Source`] emitting the same clip scope and
/// audio-record geometry, without ever materializing the record vector
/// — the feed for [`Pipeline::run_streaming`] over arbitrarily long
/// streams.
///
/// # Panics
///
/// Panics if `record_len == 0`.
///
/// # Example
///
/// ```
/// use ensemble_core::ops::clip_record_source;
/// use dynamic_river::prelude::*;
///
/// // A lazily generated 100-record stream, never held in memory.
/// let samples = (0..84_000).map(|i| (i as f64 * 0.01).sin());
/// let src = clip_record_source(samples, 20_160.0, 840, &[]);
/// let mut sink = CountingSink::default();
/// let stats = Pipeline::new().run_streaming(src, &mut sink).unwrap();
/// assert_eq!(stats.sink_records, 102); // open + 100 audio + close
/// ```
///
/// [`Pipeline::run_streaming`]: dynamic_river::Pipeline::run_streaming
pub fn clip_record_source<I>(
    samples: I,
    sample_rate: f64,
    record_len: usize,
    extra_context: &[(String, String)],
) -> ChunkedF64Source<I::IntoIter>
where
    I: IntoIterator<Item = f64>,
{
    let mut context = vec![(
        context_key::SAMPLE_RATE.to_string(),
        format!("{sample_rate}"),
    )];
    context.extend_from_slice(extra_context);
    ChunkedF64Source::new(samples, record_len)
        .with_subtype(subtype::AUDIO)
        .with_scope(scope_type::CLIP, context)
}

/// An archive of clips as one lazy record stream: each clip becomes its
/// own `CLIP` scope ([`clip_record_source`]), chained end to end —
/// clips are taken from the iterator one at a time, so an archive far
/// larger than memory streams through. This is the natural feed for
/// the sharded runtime — every clip scope is a partition unit, so
/// `Pipeline::run_sharded` fans whole clips out to worker chains and
/// merges their output back in archive order.
///
/// # Panics
///
/// Panics if `record_len == 0`.
///
/// # Example
///
/// ```
/// use ensemble_core::ops::clips_record_source;
/// use dynamic_river::prelude::*;
///
/// let clips = vec![vec![0.0; 1_680], vec![0.5; 2_520]];
/// let src = clips_record_source(clips, 20_160.0, 840);
/// let mut sink = CountingSink::default();
/// let stats = Pipeline::new().run_streaming(src, &mut sink).unwrap();
/// assert_eq!(stats.sink_records, (2 + 2) + (3 + 2)); // per clip: open + audio + close
/// ```
pub fn clips_record_source<C>(
    clips: C,
    sample_rate: f64,
    record_len: usize,
) -> impl dynamic_river::Source + Send
where
    C: IntoIterator<Item = Vec<f64>>,
    C::IntoIter: Send,
{
    dynamic_river::source::ChainedSource::new(
        clips
            .into_iter()
            .map(move |clip| clip_record_source(clip, sample_rate, record_len, &[])),
    )
}

/// The `wav2rec` operator: each incoming `Bytes` data record is parsed
/// as a WAV file and expanded into a clip scope of audio records
/// (multichannel input is mixed down to mono). Non-bytes records pass
/// through untouched.
#[derive(Debug, Clone)]
pub struct Wav2Rec {
    record_len: usize,
}

impl Wav2Rec {
    /// Creates the operator with the pipeline record length.
    ///
    /// # Panics
    ///
    /// Panics if `record_len == 0`.
    pub fn new(record_len: usize) -> Self {
        assert!(record_len > 0, "record_len must be non-zero");
        Wav2Rec { record_len }
    }
}

impl Operator for Wav2Rec {
    fn name(&self) -> &'static str {
        "wav2rec"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        let Some(bytes) = record.payload.as_bytes() else {
            return out.push(record);
        };
        let wav = WavReader::read(bytes)
            .map_err(|e| PipelineError::operator("wav2rec", format!("bad wav payload: {e}")))?;
        // One conversion into the shared clip buffer; the emitted
        // records are views into it, not per-record copies.
        let mono = SampleBuf::from(wav.to_mono());
        for r in clip_buf_to_records(&mono, wav.spec.sample_rate as f64, self.record_len, &[]) {
            out.push(r)?;
        }
        Ok(())
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Any bytes payload is decoded as a WAV clip and replaced by
    /// audio records wrapped in a clip scope (opened and closed by
    /// this operator, so the chain stays balanced).
    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, ScopeEffect, Signature};
        Some(
            Signature::map(
                RecordClass {
                    subtype: None,
                    payload: Some(PayloadKind::Bytes),
                },
                RecordClass::of(subtype::AUDIO, PayloadKind::F64),
            )
            .with_scope(ScopeEffect::OpensBalanced {
                scope_type: scope_type::CLIP,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dynamic_river::scope::validate_scopes;
    use dynamic_river::{Pipeline, RecordKind};
    use river_dsp::wav::{WavSpec, WavWriter};

    #[test]
    fn clip_to_records_shapes() {
        let records = clip_to_records(&vec![0.5; 2_100], 20_160.0, 840, &[]);
        assert_eq!(records.len(), 4); // open + 2 records (1680) + close
        assert_eq!(records[0].kind, RecordKind::OpenScope);
        assert_eq!(
            records[0].payload.context(context_key::SAMPLE_RATE),
            Some("20160")
        );
        assert_eq!(records[1].subtype, subtype::AUDIO);
        assert_eq!(records[1].payload.as_f64().unwrap().len(), 840);
        assert_eq!(records[1].seq, 0);
        assert_eq!(records[2].seq, 1);
        validate_scopes(&records).unwrap();
    }

    #[test]
    fn audio_records_are_views_into_one_clip_buffer() {
        // Zero-copy chunking: every audio record shares the single clip
        // allocation; nothing was copied per record.
        let clip = SampleBuf::from(vec![0.25; 840 * 3]);
        let records = clip_buf_to_records(&clip, 20_160.0, 840, &[]);
        let bufs: Vec<&SampleBuf> = records
            .iter()
            .filter_map(|r| r.payload.as_f64_buf())
            .collect();
        assert_eq!(bufs.len(), 3);
        for (i, b) in bufs.iter().enumerate() {
            assert!(SampleBuf::shares_backing(b, &clip), "record {i} copied");
            assert_eq!(b.offset(), i * 840);
        }
    }

    #[test]
    fn extra_context_is_carried() {
        let records = clip_to_records(
            &[0.0; 840],
            20_160.0,
            840,
            &[("species".to_string(), "NOCA".to_string())],
        );
        assert_eq!(records[0].payload.context("species"), Some("NOCA"));
    }

    #[test]
    fn wav_bytes_expand_to_clip_scope() {
        let spec = WavSpec::mono_pcm16(20_160);
        let samples: Vec<f64> = (0..1_680).map(|i| (i as f64 * 0.01).sin() * 0.5).collect();
        let mut wav = Vec::new();
        WavWriter::write(&mut wav, spec, &samples).unwrap();

        let mut p = Pipeline::new();
        p.add(Wav2Rec::new(840));
        let out = p
            .run(vec![Record::data(0, Payload::Bytes(Bytes::from(wav)))])
            .unwrap();
        assert_eq!(out.len(), 4);
        validate_scopes(&out).unwrap();
        // Samples survive the PCM16 round trip to within quantization.
        let decoded = out[1].payload.as_f64().unwrap();
        for (a, b) in samples[..840].iter().zip(decoded) {
            assert!((a - b).abs() < 2.0 / 32768.0);
        }
    }

    #[test]
    fn non_bytes_records_pass_through() {
        let mut p = Pipeline::new();
        p.add(Wav2Rec::new(840));
        let input = vec![Record::data(subtype::AUDIO, Payload::f64(vec![0.0; 4]))];
        let out = p.run(input.clone()).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn malformed_wav_is_an_operator_error() {
        let mut p = Pipeline::new();
        p.add(Wav2Rec::new(840));
        let err = p
            .run(vec![Record::data(
                0,
                Payload::Bytes(Bytes::from_static(b"not a wav")),
            )])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }
}
