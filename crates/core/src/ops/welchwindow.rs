//! `welchwindow`: applies a Welch window to each record, "helping
//! minimize edge effects between records" (paper §3).

use crate::ops::plan_cache::PlanCache;
use crate::subtype;
use dynamic_river::{Operator, Payload, PipelineError, Record, RecordKind, Sink};
use river_dsp::window::WindowKind;

/// The `welchwindow` operator. Applies the window to the `F64` payload
/// of audio records; coefficient tables are cached per record length in
/// a bounded cache, so a stream alternating between two lengths (e.g.
/// full and resliced records) no longer recomputes the table on every
/// record the way the old single-slot cache did.
#[derive(Debug, Default, Clone)]
pub struct WelchWindow {
    coeffs: PlanCache<Vec<f64>>,
}

impl WelchWindow {
    /// Creates the operator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for WelchWindow {
    fn name(&self) -> &'static str {
        "welchwindow"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data && record.subtype == subtype::AUDIO {
            if let Payload::F64(ref mut v) = record.payload {
                let coeffs = self
                    .coeffs
                    .get_or_insert_with(v.len(), |n| WindowKind::Welch.coefficients(n));
                // Copy-on-write: records that share a clip allocation
                // (views from wav2rec/cutter/reslice) are copied once
                // here — the first stage that rewrites samples —
                // uniquely owned buffers are windowed in place.
                for (x, w) in v.make_mut().iter_mut().zip(coeffs.iter()) {
                    *x *= w;
                }
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<dynamic_river::Signature> {
        use dynamic_river::{PayloadKind, RecordClass, Signature};
        Some(Signature::map(
            RecordClass::of(subtype::AUDIO, PayloadKind::F64),
            RecordClass::of(subtype::AUDIO, PayloadKind::F64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamic_river::Pipeline;

    #[test]
    fn windows_audio_records() {
        let mut p = Pipeline::new();
        p.add(WelchWindow::new());
        let out = p
            .run(vec![Record::data(
                subtype::AUDIO,
                Payload::f64(vec![1.0; 11]),
            )])
            .unwrap();
        let v = out[0].payload.as_f64().unwrap();
        assert!(v[0].abs() < 1e-12); // parabola endpoints at zero
        assert!((v[5] - 1.0).abs() < 1e-12); // peak mid-record
        assert_eq!(v, WindowKind::Welch.coefficients(11).as_slice());
    }

    #[test]
    fn non_audio_untouched() {
        let mut p = Pipeline::new();
        p.add(WelchWindow::new());
        let input = vec![Record::data(subtype::SCORE, Payload::f64(vec![1.0; 4]))];
        assert_eq!(p.run(input.clone()).unwrap(), input);
    }

    #[test]
    fn alternating_lengths_reuse_cached_coefficients() {
        let mut op = WelchWindow::new();
        let mut sink: Vec<Record> = Vec::new();
        // The old single-slot cache recomputed the table on every record
        // of this stream; the per-length cache holds both.
        for _ in 0..4 {
            for n in [840usize, 420] {
                op.on_record(
                    Record::data(subtype::AUDIO, Payload::f64(vec![1.0; n])),
                    &mut sink,
                )
                .unwrap();
            }
        }
        assert_eq!(op.coeffs.len(), 2);
        // And the cache stays bounded under adversarial length streams.
        for n in 1..100usize {
            op.on_record(
                Record::data(subtype::AUDIO, Payload::f64(vec![1.0; n])),
                &mut sink,
            )
            .unwrap();
        }
        assert!(op.coeffs.len() <= op.coeffs.capacity());
    }

    #[test]
    fn handles_changing_record_lengths() {
        let mut p = Pipeline::new();
        p.add(WelchWindow::new());
        let out = p
            .run(vec![
                Record::data(subtype::AUDIO, Payload::f64(vec![1.0; 8])),
                Record::data(subtype::AUDIO, Payload::f64(vec![1.0; 16])),
            ])
            .unwrap();
        assert_eq!(out[0].payload.as_f64().unwrap().len(), 8);
        assert_eq!(out[1].payload.as_f64().unwrap().len(), 16);
        assert!(
            (out[1].payload.as_f64().unwrap()[8] - WindowKind::Welch.coefficient(8, 16)).abs()
                < 1e-12
        );
    }
}
