//! Assembly of the paper's Figure 5 operator graph, plus a fast direct
//! featurization path used by dataset construction.

use crate::config::ExtractorConfig;
use crate::ops::{
    Cabs, Cutout, Cutter, Dft, Float2Cplx, LogScale, PaaOp, Rec2Vect, Reslice, SaxAnomaly,
    Spectrum, TriggerOp, WelchWindow,
};
use dynamic_river::Pipeline;
use river_dsp::window::WindowKind;
use river_dsp::{Complex64, RealFft};
use river_sax::paa::paa_by_factor;

/// Which spectral implementation the featurization segment runs.
///
/// The fused path is the production default; the oracle chain is the
/// original four-operator decomposition, kept as a differential
/// reference (property tests assert the two agree record-for-record to
/// ≤ 1e-9 relative error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralPath {
    /// The fused `spectrum` operator: Welch window × real-input FFT →
    /// magnitudes in one pass over planned scratch.
    #[default]
    Fused,
    /// The unfused `welchwindow` → `float2cplx` → `dft` → `cabs` chain.
    Oracle,
}

/// Builds the ensemble-extraction segment (`saxanomaly` → `trigger` →
/// `cutter`), the first half of Figure 5.
pub fn extraction_segment(config: ExtractorConfig) -> Pipeline {
    let mut p = Pipeline::new();
    p.add(SaxAnomaly::new(config));
    p.add(TriggerOp::new(config));
    p.add(Cutter::new(config));
    p
}

/// Builds the spectral featurization segment, the second half of
/// Figure 5, using the default fused spectral path: `[reslice]` →
/// `spectrum` → `cutout` → `[paa]` → `[logscale]` → `rec2vect`.
pub fn featurization_segment(config: ExtractorConfig, with_paa: bool) -> Pipeline {
    featurization_segment_with(config, with_paa, SpectralPath::Fused)
}

/// Builds the featurization segment with an explicit spectral path —
/// [`SpectralPath::Oracle`] substitutes the original `welchwindow` →
/// `float2cplx` → `dft` → `cabs` chain for the fused `spectrum` stage.
pub fn featurization_segment_with(
    config: ExtractorConfig,
    with_paa: bool,
    spectral: SpectralPath,
) -> Pipeline {
    let mut p = Pipeline::new();
    if config.reslice {
        p.add(Reslice::new());
    }
    match spectral {
        SpectralPath::Fused => {
            p.add(Spectrum::new());
        }
        SpectralPath::Oracle => {
            p.add(WelchWindow::new());
            p.add(Float2Cplx::new());
            p.add(Dft::new());
            p.add(Cabs::new());
        }
    }
    p.add(Cutout::new(
        config.cutout_low_hz,
        config.cutout_high_hz,
        config.sample_rate,
    ));
    if with_paa {
        p.add(PaaOp::new(config.paa_factor));
    }
    if config.log_scale {
        p.add(LogScale::new());
    }
    p.add(Rec2Vect::new(config.pattern_records));
    p
}

/// Builds the complete Figure 5 pipeline: extraction followed by
/// featurization.
///
/// # Example
///
/// ```
/// use ensemble_core::pipeline::full_pipeline;
/// use ensemble_core::ExtractorConfig;
///
/// let p = full_pipeline(ExtractorConfig::default(), false);
/// assert_eq!(
///     p.names(),
///     ["saxanomaly", "trigger", "cutter", "spectrum", "cutout",
///      "logscale", "rec2vect"]
/// );
/// ```
pub fn full_pipeline(config: ExtractorConfig, with_paa: bool) -> Pipeline {
    full_pipeline_with(config, with_paa, SpectralPath::Fused)
}

/// Builds the complete Figure 5 pipeline with an explicit spectral path.
pub fn full_pipeline_with(
    config: ExtractorConfig,
    with_paa: bool,
    spectral: SpectralPath,
) -> Pipeline {
    let mut p = extraction_segment(config);
    p.extend(featurization_segment_with(config, with_paa, spectral));
    p
}

/// The complete Figure 5 pipeline as a scope-sharded runtime: `workers`
/// clones of the operator chain, fed whole clip scopes round-robin and
/// merged back deterministically
/// ([`ShardedPipeline`](dynamic_river::shard::ShardedPipeline)).
///
/// Every Figure 5 operator is scope-local — `saxanomaly`, `trigger`,
/// `cutter`, `cutout` and `rec2vect` all reset their state at each
/// clip's `OpenScope` — so the sharded run is byte-identical to
/// [`full_pipeline`] + `run_streaming` over the same stream, at up to
/// `workers`× the throughput on archive workloads.
///
/// # Panics
///
/// Panics if `workers == 0` or the configuration is invalid.
///
/// # Example
///
/// ```
/// use ensemble_core::ops::clips_record_source;
/// use ensemble_core::pipeline::full_pipeline_sharded;
/// use ensemble_core::ExtractorConfig;
/// use dynamic_river::prelude::*;
///
/// let cfg = ExtractorConfig::default();
/// let clips = vec![vec![0.01; cfg.record_len * 4]; 3];
/// let mut sink = CountingSink::default();
/// full_pipeline_sharded(cfg, true, 2)
///     .run(clips_record_source(clips, cfg.sample_rate, cfg.record_len), &mut sink)
///     .unwrap();
/// assert_eq!(sink.records, 3 * 2); // quiet clips: scope markers only
/// ```
pub fn full_pipeline_sharded(
    config: ExtractorConfig,
    with_paa: bool,
    workers: usize,
) -> dynamic_river::shard::ShardedPipeline {
    full_pipeline_sharded_with(config, with_paa, workers, SpectralPath::Fused)
}

/// [`full_pipeline_sharded`] with an explicit spectral path; used by the
/// benchmarks to compare fused and oracle throughput under identical
/// sharding.
pub fn full_pipeline_sharded_with(
    config: ExtractorConfig,
    with_paa: bool,
    workers: usize,
    spectral: SpectralPath,
) -> dynamic_river::shard::ShardedPipeline {
    dynamic_river::shard::ShardedPipeline::from_factory(workers, move |_| {
        full_pipeline_with(config, with_paa, spectral)
    })
}

/// Direct featurization of one ensemble's samples (no record plumbing):
/// chunk into records, Welch window, DFT, magnitude, cutout, optional
/// PAA, merge `pattern_records` per pattern. This is the fast path used
/// by dataset construction; `tests` assert it agrees with the operator
/// pipeline bit-for-bit.
pub fn featurize_ensemble(
    samples: &[f64],
    config: &ExtractorConfig,
    with_paa: bool,
) -> Vec<Vec<f64>> {
    let n = config.record_len;
    let fft = RealFft::new(n);
    let window = WindowKind::Welch.coefficients(n);
    let lo = config.cutout_low_bin();
    let hi = config.cutout_high_bin();

    // Re-chunk exactly like `cutter`: full records; final partial padded
    // when at least half full.
    let mut records: Vec<Vec<f64>> = samples.chunks(n).map(<[f64]>::to_vec).collect();
    if let Some(last) = records.last_mut() {
        if last.len() < n {
            if last.len() >= n / 2 {
                last.resize(n, 0.0);
            } else {
                records.pop();
            }
        }
    }

    let mut spectra: Vec<Vec<f64>> = Vec::with_capacity(records.len());
    let mut all_mags = vec![0.0; n];
    let mut scratch = vec![Complex64::ZERO; fft.scratch_len()];
    for rec in &records {
        // Same fused window × real-FFT → magnitude pass as the
        // `spectrum` operator, so the direct path stays bit-identical to
        // the operator pipeline.
        fft.magnitudes_into(rec, Some(&window), &mut all_mags, &mut scratch);
        let mags: Vec<f64> = all_mags[lo..hi].to_vec();
        let mut reduced = if with_paa {
            paa_by_factor(&mags, config.paa_factor)
        } else {
            mags
        };
        if config.log_scale {
            for x in &mut reduced {
                *x = crate::ops::logscale::log_scale_value(*x);
            }
        }
        spectra.push(reduced);
    }

    spectra
        .chunks_exact(config.pattern_records)
        .map(<[std::vec::Vec<f64>]>::concat)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::wav2rec::clip_to_records;
    use crate::prelude::*;
    use crate::{scope_type, subtype};
    use dynamic_river::{Record, RecordKind};

    #[test]
    fn segment_operator_names_match_figure5() {
        let cfg = ExtractorConfig::default();
        assert_eq!(
            extraction_segment(cfg).names(),
            ["saxanomaly", "trigger", "cutter"]
        );
        assert_eq!(
            featurization_segment(cfg, true).names(),
            ["spectrum", "cutout", "paa", "logscale", "rec2vect"]
        );
        assert_eq!(
            featurization_segment_with(cfg, true, SpectralPath::Oracle).names(),
            [
                "welchwindow",
                "float2cplx",
                "dft",
                "cabs",
                "cutout",
                "paa",
                "logscale",
                "rec2vect"
            ]
        );
        let resliced = ExtractorConfig {
            reslice: true,
            ..cfg
        };
        assert_eq!(featurization_segment(resliced, false).names()[0], "reslice");
    }

    #[test]
    fn full_pipeline_is_the_two_segments_composed() {
        for (with_paa, reslice) in [(false, false), (true, false), (true, true)] {
            let cfg = ExtractorConfig {
                reslice,
                ..ExtractorConfig::default()
            };
            let mut expected: Vec<String> = extraction_segment(cfg)
                .names()
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            expected.extend(
                featurization_segment(cfg, with_paa)
                    .names()
                    .iter()
                    .map(std::string::ToString::to_string),
            );
            assert_eq!(full_pipeline(cfg, with_paa).names(), expected);
        }
    }

    #[test]
    fn direct_featurization_produces_paper_geometry() {
        let cfg = ExtractorConfig::default();
        let samples = vec![0.5; cfg.record_len * 7];
        let raw = featurize_ensemble(&samples, &cfg, false);
        assert_eq!(raw.len(), 2); // 7 records -> 2 groups of 3, 1 dropped
        assert_eq!(raw[0].len(), 1_050);
        let paa = featurize_ensemble(&samples, &cfg, true);
        assert_eq!(paa[0].len(), 105);
    }

    #[test]
    fn direct_path_matches_operator_pipeline() {
        let cfg = ExtractorConfig::default();
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Hofi, 9);
        // Build an "ensemble" directly from a slice of the clip so both
        // paths see identical samples (whole records so chunking agrees).
        let samples = &clip.samples[0..cfg.record_len * 6];

        for with_paa in [false, true] {
            let direct = featurize_ensemble(samples, &cfg, with_paa);

            // Operator path: wrap the samples in an ensemble scope inside
            // a clip scope and run featurization.
            let mut records = vec![
                Record::open_scope(
                    scope_type::CLIP,
                    vec![(
                        crate::context_key::SAMPLE_RATE.to_string(),
                        format!("{}", cfg.sample_rate),
                    )],
                ),
                Record::open_scope(scope_type::ENSEMBLE, vec![]),
            ];
            for (i, chunk) in samples.chunks_exact(cfg.record_len).enumerate() {
                records.push(
                    Record::data(subtype::AUDIO, dynamic_river::Payload::f64(chunk.to_vec()))
                        .with_seq(i as u64),
                );
            }
            records.push(Record::close_scope(scope_type::ENSEMBLE));
            records.push(Record::close_scope(scope_type::CLIP));

            let out = featurization_segment(cfg, with_paa).run(records).unwrap();
            let patterns: Vec<Vec<f64>> = out
                .iter()
                .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN)
                .map(|r| r.payload.as_f64().unwrap().to_vec())
                .collect();
            assert_eq!(patterns.len(), direct.len(), "with_paa={with_paa}");
            for (a, b) in patterns.iter().zip(&direct) {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "with_paa={with_paa}");
                }
            }
        }
    }

    #[test]
    fn short_ensemble_yields_no_patterns() {
        let cfg = ExtractorConfig::default();
        let samples = vec![0.1; cfg.record_len * 2];
        assert!(featurize_ensemble(&samples, &cfg, false).is_empty());
    }

    #[test]
    fn padding_rule_matches_cutter() {
        let cfg = ExtractorConfig::default();
        // 3.5 records: final half record padded -> 4 records -> 1 pattern
        // (3 used).
        let samples = vec![0.1; cfg.record_len * 3 + cfg.record_len / 2];
        assert_eq!(featurize_ensemble(&samples, &cfg, false).len(), 1);
        // 3.4 records: final dropped -> 3 records -> 1 pattern.
        let samples = vec![0.1; cfg.record_len * 3 + cfg.record_len / 3];
        assert_eq!(featurize_ensemble(&samples, &cfg, false).len(), 1);
    }

    #[test]
    fn sharded_full_pipeline_is_byte_identical_to_streaming() {
        use crate::ops::clips_record_source;
        let cfg = ExtractorConfig::default();
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clips: Vec<Vec<f64>> = (0..3u64)
            .map(|seed| {
                let c = synth.clip(SpeciesCode::Rwbl, seed);
                let usable = c.samples.len() - c.samples.len() % cfg.record_len;
                c.samples[..usable].to_vec()
            })
            .collect();

        let mut single = Vec::new();
        full_pipeline(cfg, true)
            .run_streaming(
                clips_record_source(clips.clone(), cfg.sample_rate, cfg.record_len),
                &mut single,
            )
            .unwrap();
        assert!(single
            .iter()
            .any(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN));

        for workers in [1usize, 3] {
            let mut sharded = Vec::new();
            let stats = full_pipeline_sharded(cfg, true, workers)
                .run(
                    clips_record_source(clips.clone(), cfg.sample_rate, cfg.record_len),
                    &mut sharded,
                )
                .unwrap();
            assert_eq!(single, sharded, "workers={workers}");
            assert_eq!(stats.sink_records as usize, sharded.len());
        }
    }

    #[test]
    fn end_to_end_pipeline_on_synthetic_clip() {
        let cfg = ExtractorConfig::default();
        let synth = ClipSynthesizer::new(SynthConfig::paper());
        let clip = synth.clip(SpeciesCode::Rwbl, 5);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;

        let mut extraction = extraction_segment(cfg);
        let cut = extraction
            .run(clip_to_records(
                &clip.samples[..usable],
                cfg.sample_rate,
                cfg.record_len,
                &[],
            ))
            .unwrap();
        let out = featurization_segment(cfg, false).run(cut).unwrap();
        let patterns = out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN)
            .count();
        assert!(patterns > 0, "no patterns from a clip with song bouts");
        for r in out
            .iter()
            .filter(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN)
        {
            assert_eq!(r.payload.as_f64().unwrap().len(), 1_050);
        }
        dynamic_river::scope::validate_scopes(&out).unwrap();
    }
}
