//! Data-reduction accounting.
//!
//! "Extraction of ensembles from acoustic clips reduced the amount of
//! data that required further processing by 80.6 %" (paper §4). This
//! module tallies the samples entering the cutter against the samples
//! leaving it inside ensembles.

use std::fmt;

/// Accumulated reduction statistics.
///
/// # Example
///
/// ```
/// use ensemble_core::reduction::ReductionStats;
///
/// let mut stats = ReductionStats::default();
/// stats.record_clip(1_000, 194);
/// assert!((stats.reduction_percent() - 80.6).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Total clip samples scanned.
    pub input_samples: u64,
    /// Samples retained inside extracted ensembles.
    pub kept_samples: u64,
    /// Number of clips processed.
    pub clips: u64,
    /// Number of ensembles extracted.
    pub ensembles: u64,
}

impl ReductionStats {
    /// Records one clip's outcome.
    pub fn record_clip(&mut self, input_samples: usize, kept_samples: usize) {
        self.input_samples += input_samples as u64;
        self.kept_samples += kept_samples as u64;
        self.clips += 1;
    }

    /// Records extracted ensembles (count only; samples are tallied via
    /// [`record_clip`](Self::record_clip)).
    pub fn record_ensembles(&mut self, count: usize) {
        self.ensembles += count as u64;
    }

    /// Fraction of input data removed, in percent (the paper's 80.6 %).
    pub fn reduction_percent(&self) -> f64 {
        if self.input_samples == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.kept_samples as f64 / self.input_samples as f64)
    }

    /// Fraction of input data kept, in percent.
    pub fn kept_percent(&self) -> f64 {
        if self.input_samples == 0 {
            0.0
        } else {
            100.0 * self.kept_samples as f64 / self.input_samples as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ReductionStats) {
        self.input_samples += other.input_samples;
        self.kept_samples += other.kept_samples;
        self.clips += other.clips;
        self.ensembles += other.ensembles;
    }
}

impl fmt::Display for ReductionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} clips, {} ensembles: {} of {} samples kept ({:.1}% reduction)",
            self.clips,
            self.ensembles,
            self.kept_samples,
            self.input_samples,
            self.reduction_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = ReductionStats::default();
        assert_eq!(s.reduction_percent(), 0.0);
        assert_eq!(s.kept_percent(), 0.0);
    }

    #[test]
    fn percentages_complementary() {
        let mut s = ReductionStats::default();
        s.record_clip(1_000, 250);
        assert!((s.reduction_percent() - 75.0).abs() < 1e-12);
        assert!((s.kept_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ReductionStats::default();
        a.record_clip(100, 10);
        a.record_ensembles(2);
        let mut b = ReductionStats::default();
        b.record_clip(300, 30);
        b.record_ensembles(1);
        a.merge(&b);
        assert_eq!(a.input_samples, 400);
        assert_eq!(a.kept_samples, 40);
        assert_eq!(a.clips, 2);
        assert_eq!(a.ensembles, 3);
        assert!((a.reduction_percent() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_reduction() {
        let mut s = ReductionStats::default();
        s.record_clip(1_000, 100);
        assert!(s.to_string().contains("90.0%"));
    }
}
