//! Text rendering of oscillograms and traces for the figure
//! regeneration binaries (Figures 2, 3 and 6 of the paper).

/// Downsamples a signal to `width` columns of `(min, max)` envelope
/// pairs — the standard oscillogram drawing primitive.
pub fn envelope_columns(samples: &[f64], width: usize) -> Vec<(f64, f64)> {
    if samples.is_empty() || width == 0 {
        return Vec::new();
    }
    let chunk = samples.len().div_ceil(width);
    samples
        .chunks(chunk)
        .map(|c| {
            let mut lo = f64::MAX;
            let mut hi = f64::MIN;
            for &x in c {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            (lo, hi)
        })
        .collect()
}

/// Renders an ASCII oscillogram: `width` columns by `height` rows, zero
/// line in the middle, like the top panel of the paper's Figure 2.
pub fn ascii_oscillogram(samples: &[f64], width: usize, height: usize) -> String {
    let cols = envelope_columns(samples, width);
    if cols.is_empty() || height == 0 {
        return String::new();
    }
    let peak = cols
        .iter()
        .flat_map(|&(lo, hi)| [lo.abs(), hi.abs()])
        .fold(1e-12f64, f64::max);
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        // Row `row` covers the normalized amplitude band [bottom, top];
        // row 0 is the top of the plot (+1), the last row the bottom (-1).
        let top = 1.0 - 2.0 * row as f64 / height as f64;
        let bottom = 1.0 - 2.0 * (row + 1) as f64 / height as f64;
        for &(lo, hi) in &cols {
            let lo_n = lo / peak;
            let hi_n = hi / peak;
            if hi_n >= bottom && lo_n <= top {
                out.push('#');
            } else if bottom <= 0.0 && top >= 0.0 {
                out.push('-'); // zero axis
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a 0/1 trigger trace as a one-line square wave (Figure 6 top)
/// with `width` columns: `▔` for 1, `▁` for 0 (ASCII fallback: `^`/`_`).
pub fn ascii_trigger(trigger: &[u8], width: usize) -> String {
    if trigger.is_empty() || width == 0 {
        return String::new();
    }
    let chunk = trigger.len().div_ceil(width);
    trigger
        .chunks(chunk)
        .map(|c| if c.iter().any(|&t| t > 0) { '^' } else { '_' })
        .collect()
}

/// Marks ensemble spans on a `width`-column ruler: `=` inside an
/// ensemble, `.` outside (Figure 6 bottom).
pub fn ascii_spans(total_len: usize, spans: &[(usize, usize)], width: usize) -> String {
    if total_len == 0 || width == 0 {
        return String::new();
    }
    let mut out = String::with_capacity(width);
    for col in 0..width {
        let lo = col * total_len / width;
        let hi = ((col + 1) * total_len / width).max(lo + 1);
        let inside = spans.iter().any(|&(s, e)| s < hi && e > lo);
        out.push(if inside { '=' } else { '.' });
    }
    out
}

/// Formats a seconds axis ruler for `width` columns over `seconds`
/// total, with a tick roughly every `tick_every` seconds.
pub fn seconds_ruler(seconds: f64, width: usize, tick_every: f64) -> String {
    let mut out = vec![b' '; width];
    let mut t = 0.0;
    while t <= seconds {
        let col = ((t / seconds) * (width.saturating_sub(1)) as f64) as usize;
        let label = format!("{t:.0}");
        // Shift left if the label would overflow the right edge.
        let start = col.min(width.saturating_sub(label.len()));
        for (i, b) in label.bytes().enumerate() {
            if start + i < width {
                out[start + i] = b;
            }
        }
        t += tick_every;
    }
    String::from_utf8(out).expect("ascii ruler")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_columns_cover_extremes() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let cols = envelope_columns(&samples, 10);
        assert_eq!(cols.len(), 10);
        for &(lo, hi) in &cols {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn oscillogram_shape() {
        let samples: Vec<f64> = (0..1_000).map(|i| (i as f64 * 0.1).sin()).collect();
        let art = ascii_oscillogram(&samples, 40, 9);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9);
        for l in &lines {
            assert_eq!(l.len(), 40);
        }
        // A full-scale sine covers the top and bottom rows somewhere.
        assert!(lines[0].contains('#'));
        assert!(lines[8].contains('#'));
    }

    #[test]
    fn oscillogram_empty() {
        assert_eq!(ascii_oscillogram(&[], 10, 5), "");
        assert_eq!(ascii_oscillogram(&[1.0], 10, 0), "");
    }

    #[test]
    fn trigger_trace_marks_high_regions() {
        let mut trig = vec![0u8; 100];
        for t in trig.iter_mut().skip(40).take(20) {
            *t = 1;
        }
        let line = ascii_trigger(&trig, 20);
        assert_eq!(line.len(), 20);
        assert_eq!(&line[..8], "________");
        assert!(line[8..12].contains('^'));
    }

    #[test]
    fn spans_marked() {
        let line = ascii_spans(100, &[(20, 40)], 10);
        assert_eq!(line, "..==......".to_string());
    }

    #[test]
    fn ruler_has_ticks() {
        let r = seconds_ruler(30.0, 60, 10.0);
        assert_eq!(r.len(), 60);
        assert!(r.contains('0'));
        assert!(r.contains("10"));
        assert!(r.contains("30"));
    }
}
