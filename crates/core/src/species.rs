//! The ten bird species of the paper's Table 1.

use std::fmt;
use std::str::FromStr;

/// Four-letter species codes from the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpeciesCode {
    /// American goldfinch.
    Amgo,
    /// Black-capped chickadee.
    Bcch,
    /// Blue jay.
    Blja,
    /// Downy woodpecker.
    Dowo,
    /// House finch.
    Hofi,
    /// Mourning dove.
    Modo,
    /// Northern cardinal.
    Noca,
    /// Red-winged blackbird.
    Rwbl,
    /// Tufted titmouse.
    Tuti,
    /// White-breasted nuthatch.
    Wbnu,
}

impl SpeciesCode {
    /// All ten species in Table 1 order.
    pub const ALL: [SpeciesCode; 10] = [
        SpeciesCode::Amgo,
        SpeciesCode::Bcch,
        SpeciesCode::Blja,
        SpeciesCode::Dowo,
        SpeciesCode::Hofi,
        SpeciesCode::Modo,
        SpeciesCode::Noca,
        SpeciesCode::Rwbl,
        SpeciesCode::Tuti,
        SpeciesCode::Wbnu,
    ];

    /// The four-letter code, e.g. `"AMGO"`.
    pub fn code(self) -> &'static str {
        match self {
            SpeciesCode::Amgo => "AMGO",
            SpeciesCode::Bcch => "BCCH",
            SpeciesCode::Blja => "BLJA",
            SpeciesCode::Dowo => "DOWO",
            SpeciesCode::Hofi => "HOFI",
            SpeciesCode::Modo => "MODO",
            SpeciesCode::Noca => "NOCA",
            SpeciesCode::Rwbl => "RWBL",
            SpeciesCode::Tuti => "TUTI",
            SpeciesCode::Wbnu => "WBNU",
        }
    }

    /// The common name as printed in Table 1.
    pub fn common_name(self) -> &'static str {
        match self {
            SpeciesCode::Amgo => "American goldfinch",
            SpeciesCode::Bcch => "Black capped chickadee",
            SpeciesCode::Blja => "Blue Jay",
            SpeciesCode::Dowo => "Downy woodpecker",
            SpeciesCode::Hofi => "House finch",
            SpeciesCode::Modo => "Mourning dove",
            SpeciesCode::Noca => "Northern cardinal",
            SpeciesCode::Rwbl => "Red winged blackbird",
            SpeciesCode::Tuti => "Tufted titmouse",
            SpeciesCode::Wbnu => "White breasted nuthatch",
        }
    }

    /// Stable label index (Table 1 order) for classifiers.
    pub fn label(self) -> usize {
        Self::ALL.iter().position(|&s| s == self).expect("in ALL")
    }

    /// Species for a label index.
    pub fn from_label(label: usize) -> Option<SpeciesCode> {
        Self::ALL.get(label).copied()
    }
}

impl fmt::Display for SpeciesCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Error returned when parsing an unknown species code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpeciesError(pub String);

impl fmt::Display for ParseSpeciesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown species code '{}'", self.0)
    }
}

impl std::error::Error for ParseSpeciesError {}

impl FromStr for SpeciesCode {
    type Err = ParseSpeciesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        SpeciesCode::ALL
            .iter()
            .find(|sp| sp.code() == upper)
            .copied()
            .ok_or_else(|| ParseSpeciesError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_species_with_unique_codes() {
        assert_eq!(SpeciesCode::ALL.len(), 10);
        let codes: std::collections::HashSet<&str> =
            SpeciesCode::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), 10);
    }

    #[test]
    fn labels_round_trip() {
        for (i, &s) in SpeciesCode::ALL.iter().enumerate() {
            assert_eq!(s.label(), i);
            assert_eq!(SpeciesCode::from_label(i), Some(s));
        }
        assert_eq!(SpeciesCode::from_label(10), None);
    }

    #[test]
    fn parse_codes_case_insensitive() {
        assert_eq!("noca".parse::<SpeciesCode>().unwrap(), SpeciesCode::Noca);
        assert_eq!("WBNU".parse::<SpeciesCode>().unwrap(), SpeciesCode::Wbnu);
        assert!("XXXX".parse::<SpeciesCode>().is_err());
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(SpeciesCode::Blja.to_string(), "BLJA");
    }

    #[test]
    fn common_names_present() {
        for s in SpeciesCode::ALL {
            assert!(!s.common_name().is_empty());
        }
    }
}
