//! Species-specific song grammars.
//!
//! Each species of the paper's Table 1 gets a stochastic grammar that
//! composes syllable primitives into a song bout. The grammars are
//! caricatures of the real vocalizations, designed so that (a) songs of
//! a species resemble one another while varying (the paper stresses that
//! "bird vocalizations vary considerably even within a particular bird
//! species"), and (b) the ten species are separable by spectro-temporal
//! structure inside the pipeline's 1.2–9.6 kHz analysis band.

use super::primitives::*;
use crate::species::SpeciesCode;
use rand::rngs::StdRng;
use rand::RngExt;

/// Synthesizes one song bout of `species` at sample rate `fs`,
/// returning the samples (peak amplitude 1.0 before mixing).
pub fn song(species: SpeciesCode, fs: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = match species {
        // "per-chick-o-ree": 4–6 rapid up/down sweeps around 3–5.5 kHz.
        SpeciesCode::Amgo => {
            let mut parts = Vec::new();
            let syllables = rng.random_range(4..=6);
            for _ in 0..syllables {
                let f_lo = rng.random_range(2_800.0..3_400.0);
                let f_hi = rng.random_range(4_600.0..5_600.0);
                let dur = rng.random_range(0.06..0.1);
                if rng.random_bool(0.5) {
                    parts.push(sweep(f_lo, f_hi, dur, fs));
                } else {
                    parts.push(sweep(f_hi, f_lo, dur, fs));
                }
                parts.push(silence(rng.random_range(0.02..0.05), fs));
            }
            concat(&parts)
        }
        // "fee-bee": two long pure whistles, the second a step lower;
        // sometimes the "chick-a-dee" call instead.
        SpeciesCode::Bcch => {
            if rng.random_bool(0.7) {
                let fee = rng.random_range(3_800.0..4_200.0);
                let bee = fee * rng.random_range(0.78..0.84);
                concat(&[
                    tone(fee, rng.random_range(0.3..0.45), fs),
                    silence(rng.random_range(0.05..0.12), fs),
                    tone(bee, rng.random_range(0.35..0.5), fs),
                ])
            } else {
                let mut parts = vec![noise_burst(5_000.0, 2.0, 0.08, fs, rng)];
                for _ in 0..rng.random_range(2..=4) {
                    parts.push(silence(0.03, fs));
                    parts.push(harmonic_tone(
                        rng.random_range(3_200.0..3_600.0),
                        &[(2.0, 0.4)],
                        0.12,
                        fs,
                    ));
                }
                concat(&parts)
            }
        }
        // Harsh "jeer": harmonic stack around 2 kHz with vibrato and
        // noise, repeated 2–3 times.
        SpeciesCode::Blja => {
            let mut parts = Vec::new();
            for _ in 0..rng.random_range(2..=3) {
                let f0 = rng.random_range(1_800.0..2_400.0);
                let jeer = {
                    let tonal = trill(f0 * 1.5, 120.0, 35.0, 0.25, fs);
                    let noisy = noise_burst(f0 * 1.6, 1.5, 0.25, fs, rng);
                    tonal
                        .iter()
                        .zip(&noisy)
                        .map(|(t, n)| 0.7 * t + 0.4 * n)
                        .collect::<Vec<f64>>()
                };
                parts.push(jeer);
                parts.push(silence(rng.random_range(0.08..0.16), fs));
            }
            concat(&parts)
        }
        // Drum roll ~16 Hz plus an occasional sharp "pik".
        SpeciesCode::Dowo => {
            let mut parts = vec![pulse_train(
                rng.random_range(14.0..18.0),
                rng.random_range(3_000.0..5_000.0),
                rng.random_range(0.6..1.0),
                fs,
                rng,
            )];
            if rng.random_bool(0.5) {
                parts.push(silence(0.1, fs));
                parts.push(sweep(4_200.0, 3_400.0, 0.04, fs));
            }
            concat(&parts)
        }
        // Long jumbled warble: 8–14 short random sweeps 2.5–6 kHz with a
        // slurred terminal down-sweep.
        SpeciesCode::Hofi => {
            let mut parts = Vec::new();
            for _ in 0..rng.random_range(8..=14) {
                let a = rng.random_range(2_500.0..6_000.0);
                let b = rng.random_range(2_500.0..6_000.0);
                parts.push(sweep(a, b, rng.random_range(0.05..0.11), fs));
                if rng.random_bool(0.4) {
                    parts.push(silence(rng.random_range(0.01..0.03), fs));
                }
            }
            parts.push(sweep(5_000.0, 2_200.0, rng.random_range(0.12..0.2), fs));
            concat(&parts)
        }
        // Low coo: ~600 Hz fundamental whose 2nd–4th harmonics carry the
        // in-band (1.2–2.4 kHz) energy; slow attack, long notes.
        SpeciesCode::Modo => {
            let f0 = rng.random_range(560.0..640.0);
            let partials = [(2.0, 1.2), (3.0, 0.9), (4.0, 0.5)];
            let mut parts = vec![harmonic_tone(f0, &partials, rng.random_range(0.4..0.6), fs)];
            for _ in 0..rng.random_range(2..=3) {
                parts.push(silence(rng.random_range(0.15..0.3), fs));
                parts.push(harmonic_tone(
                    f0 * rng.random_range(0.95..1.05),
                    &partials,
                    rng.random_range(0.35..0.55),
                    fs,
                ));
            }
            concat(&parts)
        }
        // Loud slurred whistles: "cheer cheer cheer", long down-sweeps
        // 4.5 → 2 kHz.
        SpeciesCode::Noca => {
            let mut parts = Vec::new();
            let down = rng.random_bool(0.7);
            for _ in 0..rng.random_range(2..=4) {
                let hi = rng.random_range(4_000.0..5_000.0);
                let lo = rng.random_range(1_900.0..2_400.0);
                let dur = rng.random_range(0.25..0.45);
                parts.push(if down {
                    sweep(hi, lo, dur, fs)
                } else {
                    sweep(lo, hi, dur, fs)
                });
                parts.push(silence(rng.random_range(0.06..0.14), fs));
            }
            concat(&parts)
        }
        // "conk-la-ree": two short tonal notes then a buzzy AM trill.
        SpeciesCode::Rwbl => concat(&[
            harmonic_tone(
                rng.random_range(900.0..1_100.0),
                &[(2.0, 0.9), (3.0, 0.5)],
                0.12,
                fs,
            ),
            silence(0.04, fs),
            harmonic_tone(rng.random_range(1_100.0..1_300.0), &[(2.0, 0.8)], 0.1, fs),
            silence(0.03, fs),
            buzz(
                rng.random_range(2_600.0..3_400.0),
                rng.random_range(50.0..70.0),
                rng.random_range(0.5..0.8),
                fs,
                rng,
            ),
        ]),
        // "peter-peter": a falling two-note whistle repeated 2–4 times.
        SpeciesCode::Tuti => {
            let mut parts = Vec::new();
            let hi = rng.random_range(3_400.0..3_800.0);
            let lo = hi * rng.random_range(0.76..0.82);
            for _ in 0..rng.random_range(2..=4) {
                parts.push(sweep(hi, lo, rng.random_range(0.1..0.16), fs));
                parts.push(tone(lo, rng.random_range(0.08..0.14), fs));
                parts.push(silence(rng.random_range(0.05..0.1), fs));
            }
            concat(&parts)
        }
        // Nasal "yank yank": vibrato-laden harmonic notes near 2 kHz.
        SpeciesCode::Wbnu => {
            let mut parts = Vec::new();
            let f0 = rng.random_range(1_800.0..2_100.0);
            for _ in 0..rng.random_range(2..=4) {
                let yank = {
                    let a = trill(f0, 80.0, 22.0, 0.18, fs);
                    let b = trill(f0 * 2.0, 120.0, 22.0, 0.18, fs);
                    let c = trill(f0 * 3.0, 150.0, 22.0, 0.18, fs);
                    a.iter()
                        .zip(&b)
                        .zip(&c)
                        .map(|((x, y), z)| (x + 0.7 * y + 0.4 * z) / 2.1)
                        .collect::<Vec<f64>>()
                };
                parts.push(yank);
                parts.push(silence(rng.random_range(0.1..0.18), fs));
            }
            concat(&parts)
        }
    };
    // Natural amplitude tremolo: real vocalizations breathe at ~5–15 Hz,
    // which keeps the SAX symbol distribution drifting for the whole
    // bout (this is what sustains the anomaly score through long
    // syllables in field recordings).
    let rate = rng.random_range(5.0..15.0);
    let depth = rng.random_range(0.25..0.45);
    let phase = rng.random_range(0.0..std::f64::consts::TAU);
    for (i, s) in out.iter_mut().enumerate() {
        let t = i as f64 / fs;
        *s *= 1.0 - depth * (0.5 + 0.5 * (std::f64::consts::TAU * rate * t + phase).sin());
    }
    river_dsp::signal::normalize_peak(&mut out, 1.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use river_dsp::goertzel::goertzel_magnitude;

    const FS: f64 = 20_160.0;

    #[test]
    fn every_species_produces_audio() {
        let mut rng = StdRng::seed_from_u64(1);
        for species in SpeciesCode::ALL {
            let s = song(species, FS, &mut rng);
            assert!(
                s.len() > (0.2 * FS) as usize,
                "{species}: too short ({} samples)",
                s.len()
            );
            assert!(river_dsp::signal::rms(&s) > 0.01, "{species}: too quiet");
            assert!(river_dsp::signal::peak(&s) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn songs_vary_between_renditions() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = song(SpeciesCode::Hofi, FS, &mut rng);
        let b = song(SpeciesCode::Hofi, FS, &mut rng);
        assert_ne!(a.len(), b.len()); // stochastic structure
    }

    #[test]
    fn songs_deterministic_given_seed() {
        let a = song(SpeciesCode::Noca, FS, &mut StdRng::seed_from_u64(3));
        let b = song(SpeciesCode::Noca, FS, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn species_have_energy_in_analysis_band() {
        // Every species must put meaningful energy into 1.2–9.6 kHz —
        // otherwise the cutout stage would erase it. Measured as the
        // in-band fraction of STFT energy (840-sample frames, 24 Hz bins,
        // band = bins 50..400 — the production cutout).
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = river_dsp::SpectrogramConfig {
            frame_len: 840,
            hop: 420,
            window: river_dsp::WindowKind::Hann,
            sample_rate: FS,
        };
        for species in SpeciesCode::ALL {
            let s = song(species, FS, &mut rng);
            let spec = river_dsp::Spectrogram::compute(&s, cfg);
            let mut in_band = 0.0f64;
            let mut total = 0.0f64;
            for col in spec.iter() {
                for (bin, &mag) in col.iter().enumerate() {
                    let e = mag * mag;
                    total += e;
                    if (50..400).contains(&bin) {
                        in_band += e;
                    }
                }
            }
            assert!(total > 0.0, "{species}: silent song");
            let frac = in_band / total;
            assert!(frac > 0.3, "{species}: in-band fraction {frac:.3}");
        }
    }

    #[test]
    fn chickadee_fee_bee_is_two_tones() {
        // Find a seed that takes the fee-bee branch.
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let s = song(SpeciesCode::Bcch, FS, &mut rng);
            let fee = goertzel_magnitude(&s, 4_000.0, FS);
            let bee = goertzel_magnitude(&s, 3_250.0, FS);
            if fee > 0.0 && bee > 0.0 {
                return; // both notes present in at least one rendition
            }
        }
        panic!("no fee-bee song found in 20 renditions");
    }

    #[test]
    fn dove_energy_is_low_band() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = song(SpeciesCode::Modo, FS, &mut rng);
        let low: f64 = [600.0, 1_200.0, 1_800.0]
            .iter()
            .map(|&f| goertzel_magnitude(&s, f, FS))
            .sum();
        let high = goertzel_magnitude(&s, 6_000.0, FS);
        assert!(low > 10.0 * high);
    }
}
