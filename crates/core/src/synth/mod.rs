//! Synthetic acoustic workload generation.
//!
//! This module stands in for the paper's field recordings (Kellogg
//! Biological Station sensor stations): it composes 30-second clips of
//! ambient noise (wind, broadband floor, low-frequency human activity)
//! with song bouts of one of the ten Table 1 species, and records the
//! ground-truth position of every bout so dataset construction can label
//! extracted ensembles the way the paper's human listener did (see
//! `DESIGN.md`, substitutions).

pub mod grammar;
pub mod noise;
pub mod primitives;

use crate::species::SpeciesCode;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use river_dsp::signal::mix_into;

/// Ground truth for one song bout placed in a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SongEvent {
    /// The vocalizing species.
    pub species: SpeciesCode,
    /// First sample of the bout.
    pub start: usize,
    /// One past the last sample of the bout.
    pub end: usize,
}

impl SongEvent {
    /// Number of samples the bout overlaps with `[start, end)`.
    pub fn overlap(&self, start: usize, end: usize) -> usize {
        let lo = self.start.max(start);
        let hi = self.end.min(end);
        hi.saturating_sub(lo)
    }
}

/// A synthesized clip with ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Mono samples in `[-1, 1]`.
    pub samples: Vec<f64>,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Song bouts present, in time order.
    pub events: Vec<SongEvent>,
}

impl Clip {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// The species whose bout overlaps `[start, end)` the most, if any
    /// bout overlaps at all — the synthetic stand-in for the paper's
    /// human listener validating that an ensemble is a bird vocalization
    /// of a particular species.
    pub fn label_for_range(&self, start: usize, end: usize) -> Option<SpeciesCode> {
        self.events
            .iter()
            .map(|e| (e.species, e.overlap(start, end)))
            .filter(|&(_, o)| o > 0)
            .max_by_key(|&(_, o)| o)
            .map(|(s, _)| s)
    }
}

/// Parameters for clip synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Sample rate in Hz (pipeline production rate: 20 160).
    pub sample_rate: f64,
    /// Clip length in seconds (paper: ≈30 s).
    pub clip_seconds: f64,
    /// Minimum song bouts per clip.
    pub min_songs: usize,
    /// Maximum song bouts per clip.
    pub max_songs: usize,
    /// Peak amplitude range for song bouts (randomized per bout).
    pub song_gain: (f64, f64),
    /// Wind level (peak amplitude of the gusting bed).
    pub wind_level: f64,
    /// Broadband noise floor peak amplitude.
    pub floor_level: f64,
    /// Human-activity hum peak amplitude.
    pub activity_level: f64,
}

impl SynthConfig {
    /// Paper-scale clips: 30 s with 2–4 bouts.
    ///
    /// Ambience levels are set so the broadband mic/preamp hiss
    /// (`floor_level`) dominates quiet segments: that is what keeps the
    /// SAX-bitmap anomaly baseline low and stable, exactly as in field
    /// recordings. Wind rumble and human-activity hum sit below or near
    /// the hiss; strong activity bursts can still trip the trigger and
    /// produce non-bird ensembles, which dataset construction rejects
    /// the way the paper's human listener did.
    pub fn paper() -> Self {
        SynthConfig {
            sample_rate: 20_160.0,
            clip_seconds: 30.0,
            min_songs: 2,
            max_songs: 4,
            song_gain: (0.25, 0.55),
            wind_level: 0.002,
            floor_level: 0.010,
            activity_level: 0.004,
        }
    }

    /// Small clips (4 s, 1–2 bouts) for fast tests and doctests.
    pub fn short_test() -> Self {
        SynthConfig {
            clip_seconds: 4.0,
            min_songs: 1,
            max_songs: 2,
            ..Self::paper()
        }
    }

    /// Samples per clip.
    pub fn clip_samples(&self) -> usize {
        (self.clip_seconds * self.sample_rate) as usize
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Deterministic clip synthesizer.
///
/// # Example
///
/// ```
/// use ensemble_core::prelude::*;
///
/// let synth = ClipSynthesizer::new(SynthConfig::short_test());
/// let clip = synth.clip(SpeciesCode::Tuti, 7);
/// assert!(!clip.events.is_empty());
/// assert!(clip.duration() > 3.9);
/// // Same seed, same clip.
/// assert_eq!(synth.clip(SpeciesCode::Tuti, 7), clip);
/// ```
#[derive(Debug, Clone)]
pub struct ClipSynthesizer {
    config: SynthConfig,
}

impl ClipSynthesizer {
    /// Creates a synthesizer.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero rate/length, empty
    /// song-count range).
    pub fn new(config: SynthConfig) -> Self {
        assert!(config.sample_rate > 0.0, "sample_rate must be positive");
        assert!(config.clip_seconds > 0.0, "clip_seconds must be positive");
        assert!(
            config.min_songs <= config.max_songs,
            "min_songs must not exceed max_songs"
        );
        assert!(
            config.song_gain.0 <= config.song_gain.1,
            "song gain range inverted"
        );
        ClipSynthesizer { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Synthesizes a clip containing bouts of a single `species`
    /// (matching the paper's datasets, where "each extracted ensemble
    /// contains the vocalization from one of the 10 bird species").
    pub fn clip(&self, species: SpeciesCode, seed: u64) -> Clip {
        // Salt the seed with the species so the same index yields
        // different ambience per species.
        let mut rng = StdRng::seed_from_u64(seed ^ ((species.label() as u64 + 1) << 48));
        let c = &self.config;
        let n = c.clip_samples();
        let fs = c.sample_rate;

        let mut samples = noise::ambient_bed(
            n,
            fs,
            c.wind_level,
            c.floor_level,
            c.activity_level,
            &mut rng,
        );

        let bouts = rng.random_range(c.min_songs..=c.max_songs);
        let mut events: Vec<SongEvent> = Vec::with_capacity(bouts);
        for _ in 0..bouts {
            let song = grammar::song(species, fs, &mut rng);
            if song.len() >= n {
                continue;
            }
            // Try to place without overlapping existing bouts (a small
            // guard band keeps distinct ensembles distinct).
            let guard = (0.5 * fs) as usize;
            // 40 placement attempts; if all clash the clip is too
            // crowded and the bout is skipped.
            for _ in 0..40 {
                let start = rng.random_range(0..n - song.len());
                let end = start + song.len();
                let clash = events
                    .iter()
                    .any(|e| e.overlap(start.saturating_sub(guard), end + guard) > 0);
                if !clash {
                    let gain = rng.random_range(c.song_gain.0..=c.song_gain.1);
                    mix_into(&mut samples, &song, start, gain);
                    events.push(SongEvent {
                        species,
                        start,
                        end,
                    });
                    break;
                }
            }
        }
        events.sort_by_key(|e| e.start);

        // Keep samples within [-1, 1] without altering dynamics unless
        // needed.
        let peak = river_dsp::signal::peak(&samples);
        if peak > 1.0 {
            for s in &mut samples {
                *s /= peak;
            }
        }
        Clip {
            samples,
            sample_rate: fs,
            events,
        }
    }

    /// Synthesizes an ambience-only clip (no bird) — useful as a
    /// negative control.
    pub fn silence_clip(&self, seed: u64) -> Clip {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_A5A5_0000);
        let c = &self.config;
        let samples = noise::ambient_bed(
            c.clip_samples(),
            c.sample_rate,
            c.wind_level,
            c.floor_level,
            c.activity_level,
            &mut rng,
        );
        Clip {
            samples,
            sample_rate: c.sample_rate,
            events: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth() -> ClipSynthesizer {
        ClipSynthesizer::new(SynthConfig::short_test())
    }

    #[test]
    fn clip_has_expected_length_and_events() {
        let clip = synth().clip(SpeciesCode::Noca, 1);
        assert_eq!(clip.samples.len(), SynthConfig::short_test().clip_samples());
        assert!(!clip.events.is_empty());
        for e in &clip.events {
            assert!(e.end <= clip.samples.len());
            assert!(e.start < e.end);
            assert_eq!(e.species, SpeciesCode::Noca);
        }
    }

    #[test]
    fn events_do_not_overlap() {
        let clip = synth().clip(SpeciesCode::Hofi, 3);
        for w in clip.events.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn song_regions_are_louder_than_ambience() {
        let clip = synth().clip(SpeciesCode::Noca, 5);
        let e = clip.events[0];
        let song_rms = river_dsp::signal::rms(&clip.samples[e.start..e.end]);
        // Ambience measured away from all events.
        let mut quiet_rms = None;
        let win = 4_000;
        let mut pos = 0;
        while pos + win <= clip.samples.len() {
            if clip.events.iter().all(|e| e.overlap(pos, pos + win) == 0) {
                quiet_rms = Some(river_dsp::signal::rms(&clip.samples[pos..pos + win]));
                break;
            }
            pos += win;
        }
        let quiet = quiet_rms.expect("a quiet window exists");
        assert!(song_rms > 1.5 * quiet, "song {song_rms} vs quiet {quiet}");
    }

    #[test]
    fn label_for_range_matches_events() {
        let clip = synth().clip(SpeciesCode::Wbnu, 8);
        let e = clip.events[0];
        assert_eq!(
            clip.label_for_range(e.start + 10, e.start + 100),
            Some(SpeciesCode::Wbnu)
        );
        assert_eq!(clip.label_for_range(0, e.start.min(10)), None);
    }

    #[test]
    fn samples_stay_in_unit_range() {
        for s in SpeciesCode::ALL {
            let clip = synth().clip(s, 11);
            assert!(river_dsp::signal::peak(&clip.samples) <= 1.0 + 1e-12, "{s}");
        }
    }

    #[test]
    fn silence_clip_has_no_events() {
        let clip = synth().silence_clip(4);
        assert!(clip.events.is_empty());
        assert!(river_dsp::signal::rms(&clip.samples) > 0.0); // ambience present
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth().clip(SpeciesCode::Amgo, 1);
        let b = synth().clip(SpeciesCode::Amgo, 2);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    #[should_panic(expected = "min_songs must not exceed")]
    fn rejects_inverted_song_range() {
        ClipSynthesizer::new(SynthConfig {
            min_songs: 5,
            max_songs: 2,
            ..SynthConfig::short_test()
        });
    }
}
