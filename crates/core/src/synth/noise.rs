//! Ambient noise beds: wind, broadband floor, and "human activity"
//! interference.
//!
//! "The clips typically contain other sounds such as those produced by
//! wind and human activity … data below [1.2 kHz] typically comprises
//! low frequency noise, including the sound of wind and sounds produced
//! by human activity" (paper §3–4). The synthesizer therefore keeps
//! these components mostly below the `cutout` band.

use rand::rngs::StdRng;
use rand::RngExt;
use river_dsp::filter::Biquad;
use std::f64::consts::PI;

/// Wind: brown-ish noise (white noise through cascaded low-passes) with
/// slow amplitude gusting.
pub fn wind(n: usize, fs: f64, level: f64, rng: &mut StdRng) -> Vec<f64> {
    // Real wind rumble concentrates well below ~100 Hz; its correlation
    // time (tens of ms) is long relative to the 100-sample anomaly
    // windows, which is what keeps the quiet-time anomaly baseline low.
    let mut lp1 = Biquad::low_pass(60.0, fs, 0.8);
    let mut lp2 = Biquad::low_pass(120.0, fs, 0.7);
    let mut out: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    lp1.process_buffer(&mut out);
    lp2.process_buffer(&mut out);
    river_dsp::signal::normalize_peak(&mut out, 1.0);
    // Slow gusts: 0.1–0.3 Hz amplitude modulation.
    let gust_rate = rng.random_range(0.1..0.3);
    let gust_phase = rng.random_range(0.0..2.0 * PI);
    for (i, s) in out.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let gust = 0.6 + 0.4 * (2.0 * PI * gust_rate * t + gust_phase).sin();
        *s *= level * gust;
    }
    out
}

/// Flat broadband noise floor at `level` peak amplitude.
pub fn floor(n: usize, level: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(-level..level)).collect()
}

/// Intermittent low-frequency "human activity": a 120 Hz hum with
/// harmonics (machinery/traffic) gated on and off.
pub fn human_activity(n: usize, fs: f64, level: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    let mut pos = 0usize;
    while pos < n {
        // Quiet stretch then a burst of hum.
        let quiet = (rng.random_range(1.0..4.0) * fs) as usize;
        pos += quiet;
        if pos >= n {
            break;
        }
        let burst = ((rng.random_range(0.5..2.0) * fs) as usize).min(n - pos);
        let f0 = rng.random_range(90.0..140.0);
        for i in 0..burst {
            let t = i as f64 / fs;
            let v = (2.0 * PI * f0 * t).sin()
                + 0.5 * (2.0 * PI * 2.0 * f0 * t).sin()
                + 0.25 * (2.0 * PI * 3.0 * f0 * t).sin();
            out[pos + i] += level * v / 1.75;
        }
        pos += burst;
    }
    out
}

/// Composes the full ambient bed.
pub fn ambient_bed(
    n: usize,
    fs: f64,
    wind_level: f64,
    floor_level: f64,
    activity_level: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut bed = wind(n, fs, wind_level, rng);
    for (b, f) in bed.iter_mut().zip(floor(n, floor_level, rng)) {
        *b += f;
    }
    for (b, h) in bed
        .iter_mut()
        .zip(human_activity(n, fs, activity_level, rng))
    {
        *b += h;
    }
    bed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use river_dsp::goertzel::goertzel_magnitude;

    const FS: f64 = 20_160.0;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn wind_is_low_frequency() {
        let w = wind((FS * 2.0) as usize, FS, 0.1, &mut rng());
        let low = goertzel_magnitude(&w, 150.0, FS);
        let high = goertzel_magnitude(&w, 4_000.0, FS);
        assert!(low > 10.0 * high, "{low} vs {high}");
    }

    #[test]
    fn wind_level_scales_amplitude() {
        let quiet = wind(20_160, FS, 0.01, &mut rng());
        let loud = wind(20_160, FS, 0.2, &mut rng());
        assert!(river_dsp::signal::rms(&loud) > 5.0 * river_dsp::signal::rms(&quiet));
    }

    #[test]
    fn floor_is_bounded() {
        let f = floor(10_000, 0.005, &mut rng());
        assert!(f.iter().all(|&x| x.abs() <= 0.005));
    }

    #[test]
    fn human_activity_is_low_frequency_and_intermittent() {
        let h = human_activity((FS * 10.0) as usize, FS, 0.1, &mut rng());
        // Harmonics sit below 500 Hz.
        let low: f64 = [100.0, 120.0, 240.0, 360.0]
            .iter()
            .map(|&f| goertzel_magnitude(&h, f, FS))
            .sum();
        let high = goertzel_magnitude(&h, 3_000.0, FS);
        assert!(low > 10.0 * high);
        // Intermittent: some whole seconds are (almost) silent.
        let sec = FS as usize;
        let silent_seconds = h
            .chunks(sec)
            .filter(|c| river_dsp::signal::rms(c) < 1e-4)
            .count();
        assert!(silent_seconds >= 1);
    }

    #[test]
    fn ambient_bed_composes() {
        let bed = ambient_bed((FS * 2.0) as usize, FS, 0.05, 0.003, 0.02, &mut rng());
        assert_eq!(bed.len(), (FS * 2.0) as usize);
        assert!(river_dsp::signal::rms(&bed) > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = wind(1_000, FS, 0.1, &mut StdRng::seed_from_u64(5));
        let b = wind(1_000, FS, 0.1, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
