//! Waveform primitives for the song synthesizer: tones, chirps, trills,
//! harmonic stacks, buzzes and pulse trains, all amplitude-shaped to
//! avoid clicks.

use rand::rngs::StdRng;
use rand::RngExt;
use std::f64::consts::PI;

/// A raised-cosine attack/release envelope over `n` samples.
///
/// `attack` and `release` are fractions of the total duration in
/// `[0, 0.5]`.
pub fn envelope(n: usize, attack: f64, release: f64) -> Vec<f64> {
    let attack_n = ((n as f64) * attack.clamp(0.0, 0.5)) as usize;
    let release_n = ((n as f64) * release.clamp(0.0, 0.5)) as usize;
    (0..n)
        .map(|i| {
            if i < attack_n {
                0.5 - 0.5 * (PI * i as f64 / attack_n as f64).cos()
            } else if i + release_n >= n {
                let j = n - i;
                0.5 - 0.5 * (PI * j as f64 / release_n.max(1) as f64).cos()
            } else {
                1.0
            }
        })
        .collect()
}

fn shaped(mut samples: Vec<f64>) -> Vec<f64> {
    let env = envelope(samples.len(), 0.1, 0.15);
    for (s, e) in samples.iter_mut().zip(env) {
        *s *= e;
    }
    samples
}

/// A pure tone at `freq` Hz for `dur` seconds.
pub fn tone(freq: f64, dur: f64, fs: f64) -> Vec<f64> {
    let n = (dur * fs) as usize;
    shaped(
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect(),
    )
}

/// A linear chirp from `f0` to `f1` Hz over `dur` seconds (phase
/// integral keeps it continuous).
pub fn sweep(f0: f64, f1: f64, dur: f64, fs: f64) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut phase = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / n.max(1) as f64;
        let f = f0 + (f1 - f0) * t;
        phase += 2.0 * PI * f / fs;
        out.push(phase.sin());
    }
    shaped(out)
}

/// A tone with harmonics: `partials` is `(multiple, amplitude)` pairs
/// applied on top of the fundamental at amplitude 1.
pub fn harmonic_tone(f0: f64, partials: &[(f64, f64)], dur: f64, fs: f64) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut out = vec![0.0f64; n];
    let mut total_amp = 1.0;
    for (i, o) in out.iter_mut().enumerate() {
        *o = (2.0 * PI * f0 * i as f64 / fs).sin();
    }
    for &(mult, amp) in partials {
        total_amp += amp;
        for (i, o) in out.iter_mut().enumerate() {
            *o += amp * (2.0 * PI * f0 * mult * i as f64 / fs).sin();
        }
    }
    for o in &mut out {
        *o /= total_amp;
    }
    shaped(out)
}

/// A frequency-modulated trill: carrier `fc` deviating ±`dev` Hz at
/// `rate` Hz.
pub fn trill(fc: f64, dev: f64, rate: f64, dur: f64, fs: f64) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut phase = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let f = fc + dev * (2.0 * PI * rate * i as f64 / fs).sin();
        phase += 2.0 * PI * f / fs;
        out.push(phase.sin());
    }
    shaped(out)
}

/// An amplitude-modulated "buzz": carrier with harmonics, AM at
/// `am_rate` Hz, plus a little noise — red-winged-blackbird-style.
pub fn buzz(fc: f64, am_rate: f64, dur: f64, fs: f64, rng: &mut StdRng) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / fs;
        let carrier = (2.0 * PI * fc * t).sin() + 0.5 * (2.0 * PI * fc * 1.5 * t).sin();
        let am = 0.55 + 0.45 * (2.0 * PI * am_rate * t).sin();
        let noise: f64 = rng.random_range(-0.2..0.2);
        out.push((carrier * am + noise) / 1.7);
    }
    shaped(out)
}

/// A band-limited noise burst centered at `fc` Hz with bandwidth set by
/// `q` (larger `q` = narrower).
pub fn noise_burst(fc: f64, q: f64, dur: f64, fs: f64, rng: &mut StdRng) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut bp = river_dsp::filter::Biquad::band_pass(fc, fs, q);
    let mut out: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    bp.process_buffer(&mut out);
    // Renormalize the filtered burst.
    river_dsp::signal::normalize_peak(&mut out, 1.0);
    shaped(out)
}

/// A drum-like pulse train: `rate` clicks per second for `dur` seconds;
/// each click is a short band-limited noise pop.
pub fn pulse_train(rate: f64, click_fc: f64, dur: f64, fs: f64, rng: &mut StdRng) -> Vec<f64> {
    let n = (dur * fs) as usize;
    let mut out = vec![0.0f64; n];
    let period = (fs / rate) as usize;
    let click_len = (0.008 * fs) as usize; // 8 ms pops
    let mut start = 0usize;
    while start + click_len < n {
        let click = noise_burst(click_fc, 1.2, 0.008, fs, rng);
        for (i, &c) in click.iter().enumerate() {
            out[start + i] += c;
        }
        // Slight rate jitter, like a real drum roll.
        let jitter = (period as f64 * rng.random_range(-0.08..0.08)) as i64;
        start = (start as i64 + period as i64 + jitter).max(1) as usize;
    }
    out
}

/// Silence of `dur` seconds.
pub fn silence(dur: f64, fs: f64) -> Vec<f64> {
    vec![0.0; (dur * fs) as usize]
}

/// Concatenates syllables into one song buffer.
pub fn concat(parts: &[Vec<f64>]) -> Vec<f64> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use river_dsp::goertzel::goertzel_magnitude;
    use river_dsp::signal::{peak, rms};

    const FS: f64 = 20_160.0;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn envelope_shape() {
        let e = envelope(100, 0.1, 0.1);
        assert!(e[0] < 0.01);
        assert!(e[99] < 0.6); // release tail
        assert!((e[50] - 1.0).abs() < 1e-12);
        assert!(e.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn tone_energy_at_frequency() {
        let t = tone(3_000.0, 0.2, FS);
        let at = goertzel_magnitude(&t, 3_000.0, FS);
        let off = goertzel_magnitude(&t, 5_000.0, FS);
        assert!(at > 20.0 * off, "{at} vs {off}");
        assert!(peak(&t) <= 1.0 + 1e-9);
    }

    #[test]
    fn sweep_covers_band() {
        let s = sweep(2_000.0, 6_000.0, 0.3, FS);
        // Energy at several points inside the sweep, none far outside.
        let inside: f64 = [2_500.0, 4_000.0, 5_500.0]
            .iter()
            .map(|&f| goertzel_magnitude(&s, f, FS))
            .sum();
        let outside = goertzel_magnitude(&s, 8_000.0, FS);
        assert!(inside > 10.0 * outside, "{inside} vs {outside}");
    }

    #[test]
    fn harmonic_tone_has_partials() {
        let h = harmonic_tone(600.0, &[(2.0, 0.8), (3.0, 0.6)], 0.3, FS);
        let f0 = goertzel_magnitude(&h, 600.0, FS);
        let h2 = goertzel_magnitude(&h, 1_200.0, FS);
        let h3 = goertzel_magnitude(&h, 1_800.0, FS);
        assert!(h2 > 0.4 * f0);
        assert!(h3 > 0.3 * f0);
        assert!(peak(&h) <= 1.0 + 1e-9);
    }

    #[test]
    fn trill_spreads_energy_around_carrier() {
        let t = trill(3_500.0, 300.0, 25.0, 0.3, FS);
        let near: f64 = [3_300.0, 3_500.0, 3_700.0]
            .iter()
            .map(|&f| goertzel_magnitude(&t, f, FS))
            .sum();
        let far = goertzel_magnitude(&t, 6_000.0, FS);
        assert!(near > 10.0 * far);
    }

    #[test]
    fn buzz_is_modulated() {
        let b = buzz(3_000.0, 60.0, 0.3, FS, &mut rng());
        // RMS in consecutive 5 ms slices should vary strongly (AM).
        let slice = (0.005 * FS) as usize;
        let rms_values: Vec<f64> = b.chunks(slice).map(rms).collect();
        let max = rms_values.iter().copied().fold(0.0, f64::max);
        let min = rms_values[2..rms_values.len() - 2]
            .iter()
            .copied()
            .fold(f64::MAX, f64::min);
        assert!(max > 1.8 * min, "max {max} min {min}");
    }

    #[test]
    fn noise_burst_band_limited() {
        let nb = noise_burst(4_000.0, 3.0, 0.2, FS, &mut rng());
        let in_band = goertzel_magnitude(&nb, 4_000.0, FS);
        let out_band = goertzel_magnitude(&nb, 500.0, FS);
        assert!(in_band > 5.0 * out_band, "{in_band} vs {out_band}");
    }

    #[test]
    fn pulse_train_has_expected_click_count() {
        let p = pulse_train(16.0, 4_000.0, 1.0, FS, &mut rng());
        // Count energy bursts: slices with RMS above 4x the median.
        let slice = (0.004 * FS) as usize;
        let rms_values: Vec<f64> = p.chunks(slice).map(rms).collect();
        let mut sorted = rms_values.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let bursts = rms_values
            .windows(2)
            .filter(|w| w[0] <= 4.0 * median && w[1] > 4.0 * median)
            .count();
        assert!((10..=22).contains(&bursts), "bursts {bursts}");
    }

    #[test]
    fn silence_and_concat() {
        let s = concat(&[silence(0.01, FS), tone(1_000.0, 0.01, FS)]);
        assert_eq!(s.len(), 2 * (0.01 * FS) as usize);
        assert!(s[..100].iter().all(|&x| x == 0.0));
    }
}
