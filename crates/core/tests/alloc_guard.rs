//! Steady-state allocation guard for the spectral hot path.
//!
//! The fused `spectrum` operator and the SAX anomaly detector carry the
//! per-record cost of the Figure 5 pipeline, and both were built to run
//! allocation-free once warm: `RealFft::magnitudes_into` writes into
//! caller-provided output and scratch buffers, and `BitmapAnomaly::push`
//! updates ring buffers and running sums in place (DESIGN.md §14). This
//! test pins that property with a counting `#[global_allocator]`: after
//! a warm-up pass, a sustained run of both kernels must perform **zero**
//! heap allocations.
//!
//! The telemetry layer rides in the same measured window (ISSUE 9
//! satellite 4): [`StageTimer::record`] is pure atomics, and
//! [`EventLog`] pushes are alloc-free once the preallocated ring has
//! reached capacity — so a pipeline running with telemetry enabled
//! keeps the steady-state zero-allocation property.
//!
//! The counter wraps the system allocator, so the whole test binary
//! shares it; the assertion brackets only the measured section, and the
//! file holds a single `#[test]` so no concurrent test can allocate in
//! the measured window.

use dynamic_river::telemetry::{EventKind, EventLog, StageTimer};
use river_dsp::complex::Complex64;
use river_dsp::fft::RealFft;
use river_dsp::window::WindowKind;
use river_sax::{AnomalyConfig, BitmapAnomaly};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting allocation calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no other effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_spectral_kernels_do_not_allocate() {
    // Figure 5 geometry: 840-sample records at 20 160 Hz.
    let n = 840;
    let plan = RealFft::new(n);
    let window = WindowKind::Welch.coefficients(n);
    let samples: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut mags = vec![0.0; n];
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    let mut detector = BitmapAnomaly::new(AnomalyConfig::default());
    let timer = StageTimer::new();
    let events = EventLog::new(64);

    // Warm-up: let the detector fill its ring/windows and both kernels
    // touch every buffer they will ever need; the event ring is pushed
    // past capacity so steady-state pushes only evict, never grow.
    let mut acc = 0.0;
    for round in 0..4 {
        plan.magnitudes_into(&samples, Some(&window), &mut mags, &mut scratch);
        for &m in &mags {
            acc += detector.push(m + f64::from(round));
        }
    }
    for i in 0..96 {
        events.push(EventKind::ScopeOpen, 0, i);
    }

    // Steady state: many records' worth of work — with telemetry
    // recording alongside — and zero allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..32u32 {
        plan.magnitudes_into(&samples, Some(&window), &mut mags, &mut scratch);
        for &m in &mags {
            acc += detector.push(m * (1.0 + f64::from(round) * 1e-3));
        }
        timer.record(u64::from(round) * 100 + 1);
        events.push(EventKind::TriggerFire, 0, u64::from(round));
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(acc.is_finite(), "kernels produced non-finite output");
    assert_eq!(timer.histogram().count, 32);
    assert_eq!(events.len(), 64, "ring should sit exactly at capacity");
    assert_eq!(
        after - before,
        0,
        "spectral hot path allocated in steady state"
    );
}
