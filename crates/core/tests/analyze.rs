//! Static chain verification over the Figure 5 pipelines (DESIGN.md
//! §15): the real chains check clean, deliberately broken chains are
//! refused pre-flight with a diagnostic naming the offending operator.

use dynamic_river::analyze::{CheckOptions, DiagnosticKind, PayloadKind, RecordClass, Severity};
use dynamic_river::prelude::*;
use dynamic_river::{ScopeEffect, Signature};
use ensemble_core::ops::{clip_to_records, Cutter, Readout, Rec2Vect, SaxAnomaly, TriggerOp};
use ensemble_core::pipeline::{
    extraction_segment, featurization_segment_with, full_pipeline_with, SpectralPath,
};
use ensemble_core::{scope_type, subtype, ExtractorConfig};

/// The analysis profile of every Figure 5 chain: audio records (F64
/// payloads) arriving inside clip scopes.
fn audio_input() -> CheckOptions {
    CheckOptions {
        input: vec![RecordClass::of(subtype::AUDIO, PayloadKind::F64)],
        input_scope_types: Some(vec![scope_type::CLIP]),
        ..CheckOptions::default()
    }
}

#[test]
fn every_figure5_chain_checks_clean() {
    let cfg = ExtractorConfig::default();
    let mut chains = vec![("extraction", extraction_segment(cfg))];
    for (path_name, path) in [
        ("fused", SpectralPath::Fused),
        ("oracle", SpectralPath::Oracle),
    ] {
        for with_paa in [false, true] {
            chains.push(("full", full_pipeline_with(cfg, with_paa, path)));
            chains.push((path_name, featurization_segment_with(cfg, with_paa, path)));
        }
    }
    for (label, chain) in chains {
        let diags = chain.check_with(&audio_input());
        assert!(
            diags.is_empty(),
            "chain {label} {:?} not clean: {diags:?}",
            chain.names()
        );
    }
}

#[test]
fn mis_ordered_chain_names_the_dead_operator() {
    // Featurization placed before extraction: `spectrum` turns the
    // audio into power spectra, so `cutter` never sees audio or
    // triggers again — a dead stage, named.
    let cfg = ExtractorConfig::default();
    let mut p = Pipeline::new();
    p.extend(featurization_segment_with(cfg, false, SpectralPath::Fused));
    p.extend(extraction_segment(cfg));
    let diags = p.check_with(&audio_input());
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.kind == DiagnosticKind::DeadStage && d.severity == Severity::Error)
        .collect();
    assert!(
        dead.iter().any(|d| d.operator == "cutter"),
        "expected a dead-stage error naming cutter, got {diags:?}"
    );
}

#[test]
fn runner_refuses_a_provably_dead_chain_preflight() {
    // `cutter` drops every data record it does not consume, so even
    // under completely unknown input (the runner's pre-flight seed) the
    // abstract set narrows to audio — placing `trigger` after it is
    // provably dead and the run is refused before any record flows.
    let cfg = ExtractorConfig::default();
    let mut p = Pipeline::new();
    p.add(Cutter::new(cfg));
    p.add(TriggerOp::new(cfg));
    let records = clip_to_records(&[0.01; 840 * 2], 20_160.0, 840, &[]);
    let err = p.run(records).unwrap_err();
    assert!(matches!(err, PipelineError::Analysis(_)), "{err}");
    assert!(err.to_string().contains("trigger"), "{err}");
}

#[test]
fn trigger_before_saxanomaly_is_dead() {
    let cfg = ExtractorConfig::default();
    let mut p = Pipeline::new();
    p.add(TriggerOp::new(cfg));
    p.add(SaxAnomaly::new(cfg));
    p.add(Cutter::new(cfg));
    let diags = p.check_with(&audio_input());
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::DeadStage && d.operator == "trigger"),
        "{diags:?}"
    );
}

#[test]
fn rec2vect_without_spectra_is_dead() {
    let cfg = ExtractorConfig::default();
    let mut p = extraction_segment(cfg);
    p.add(Rec2Vect::new(cfg.pattern_records));
    let diags = p.check_with(&audio_input());
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::DeadStage && d.operator == "rec2vect"),
        "{diags:?}"
    );
}

/// An operator that net-opens scopes it never closes.
struct LeakyOpener;

impl Operator for LeakyOpener {
    fn name(&self) -> &'static str {
        "leaky-opener"
    }
    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        out.push(record)
    }
    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough().with_scope(ScopeEffect::Opens {
            scope_type: scope_type::ENSEMBLE,
        }))
    }
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(LeakyOpener))
    }
}

#[test]
fn scope_unbalanced_chain_names_the_opener() {
    let cfg = ExtractorConfig::default();
    let mut p = extraction_segment(cfg);
    p.add(LeakyOpener);
    let diags = p.check_with(&audio_input());
    let imbalance: Vec<_> = diags
        .iter()
        .filter(|d| d.kind == DiagnosticKind::ScopeImbalance)
        .collect();
    assert_eq!(imbalance.len(), 1, "{diags:?}");
    assert_eq!(imbalance[0].operator, "leaky-opener");
    assert_eq!(imbalance[0].severity, Severity::Error);

    // Pre-flight refusal, naming the operator.
    let err = p.run(Vec::new()).unwrap_err();
    assert!(err.to_string().contains("leaky-opener"), "{err}");
}

#[test]
fn sharded_run_with_readout_fails_preflight_naming_it() {
    let cfg = ExtractorConfig::default();
    let mut p = full_pipeline_with(cfg, false, SpectralPath::Fused);
    p.add(Readout::new(Vec::new()));
    let records = clip_to_records(&[0.01; 840 * 2], 20_160.0, 840, &[]);
    let err = p
        .run_sharded(records.into_iter(), &mut NullSink, 2)
        .unwrap_err();
    let PipelineError::Analysis(diags) = &err else {
        panic!("expected an analysis error, got {err}");
    };
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::ShardUnsafe && d.operator == "readout"),
        "{diags:?}"
    );
    // The streaming driver accepts the same chain (shardability is a
    // warning there, not an error).
    let records = clip_to_records(&[0.01; 840 * 2], 20_160.0, 840, &[]);
    p.run(records).unwrap();
}
