//! Property-based tests for ensemble extraction and featurization.

use ensemble_core::extract::AdaptiveTrigger;
use ensemble_core::pipeline::featurize_ensemble;
use ensemble_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extracted ensembles are always ordered, disjoint, within bounds,
    /// and at least the configured minimum length.
    #[test]
    fn ensembles_well_formed(
        seed in 0u64..5_000,
        species_idx in 0usize..10,
    ) {
        let species = SpeciesCode::ALL[species_idx];
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(species, seed);
        let cfg = ExtractorConfig::default();
        let ensembles = EnsembleExtractor::new(cfg).extract(&clip.samples);
        let mut prev_end = 0usize;
        for e in &ensembles {
            prop_assert!(e.start >= prev_end);
            prop_assert!(e.end <= clip.samples.len());
            prop_assert!(e.len() >= cfg.min_ensemble_samples);
            prop_assert_eq!(e.len(), e.end - e.start);
            prev_end = e.end;
        }
    }

    /// The trigger trace is binary, and extraction is deterministic.
    #[test]
    fn extraction_deterministic(seed in 0u64..2_000) {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Blja, seed);
        let ex = EnsembleExtractor::new(ExtractorConfig::default());
        let a = ex.extract_with_trace(&clip.samples);
        let b = ex.extract_with_trace(&clip.samples);
        prop_assert_eq!(&a.trigger, &b.trigger);
        prop_assert_eq!(&a.ensembles, &b.ensembles);
        prop_assert!(a.trigger.iter().all(|&t| t <= 1));
    }

    /// Featurization yields patterns of exactly the configured
    /// dimension, whatever the ensemble length.
    #[test]
    fn featurization_dimensions(len in 840usize..8_400, with_paa in any::<bool>()) {
        let cfg = ExtractorConfig::default();
        let samples: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).sin() * 0.3).collect();
        let patterns = featurize_ensemble(&samples, &cfg, with_paa);
        let expect = if with_paa { 105 } else { 1_050 };
        for p in &patterns {
            prop_assert_eq!(p.len(), expect);
            prop_assert!(p.iter().all(|x| x.is_finite()));
        }
        // Pattern count never exceeds records / pattern_records.
        prop_assert!(patterns.len() <= len.div_ceil(cfg.record_len) / cfg.pattern_records);
    }

    /// Log scaling keeps features non-negative and monotone in input
    /// magnitude; amplitude scaling of the waveform never changes the
    /// pattern count.
    #[test]
    fn featurization_amplitude_stability(gain in 0.01f64..1.0) {
        let cfg = ExtractorConfig::default();
        let base: Vec<f64> = (0..840 * 6).map(|i| (i as f64 * 0.4).sin()).collect();
        let scaled: Vec<f64> = base.iter().map(|x| x * gain).collect();
        let a = featurize_ensemble(&base, &cfg, true);
        let b = featurize_ensemble(&scaled, &cfg, true);
        prop_assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            for (&x, &y) in pa.iter().zip(pb) {
                prop_assert!(x >= 0.0 && y >= 0.0);
                prop_assert!(x + 1e-12 >= y); // gain <= 1 shrinks features
            }
        }
    }

    /// Chunk-at-a-time streaming extraction is identical to the batch
    /// path whatever the chunk size — the chunking of a sensor feed
    /// must never change what is extracted.
    #[test]
    fn extract_stream_chunking_invariant(
        seed in 0u64..3_000,
        species_idx in 0usize..10,
        chunk_len in 1usize..10_000,
    ) {
        let species = SpeciesCode::ALL[species_idx];
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(species, seed);
        let ex = EnsembleExtractor::new(ExtractorConfig::default());
        let batch = ex.extract(&clip.samples);

        let mut stream = ex.extract_stream();
        let mut streamed = Vec::new();
        for chunk in clip.samples.chunks(chunk_len) {
            stream.push_chunk(chunk, &mut streamed);
        }
        streamed.extend(stream.finish());
        prop_assert_eq!(streamed, batch);
    }

    /// The adaptive trigger never fires during warm-up and always
    /// recovers to 0 on a long constant input.
    #[test]
    fn trigger_sane(
        warmup in 1u64..200,
        scores in prop::collection::vec(0.0f64..2.0, 10..300),
    ) {
        let mut t = AdaptiveTrigger::new(5.0, warmup);
        for (i, &s) in scores.iter().enumerate() {
            let fired = t.push(s);
            if (i as u64) < warmup {
                prop_assert!(!fired, "fired during warm-up at {i}");
            }
        }
        // Returning to the learned baseline always releases the trigger
        // (deviation zero is inside any band).
        let baseline = t.mu0();
        for _ in 0..5 {
            t.push(baseline);
        }
        prop_assert!(!t.push(baseline));
    }
}
