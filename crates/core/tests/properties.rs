//! Property-based tests for ensemble extraction and featurization.

use ensemble_core::extract::AdaptiveTrigger;
use ensemble_core::pipeline::{
    featurize_ensemble, full_pipeline_sharded_with, full_pipeline_with, SpectralPath,
};
use ensemble_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extracted ensembles are always ordered, disjoint, within bounds,
    /// and at least the configured minimum length.
    #[test]
    fn ensembles_well_formed(
        seed in 0u64..5_000,
        species_idx in 0usize..10,
    ) {
        let species = SpeciesCode::ALL[species_idx];
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(species, seed);
        let cfg = ExtractorConfig::default();
        let ensembles = EnsembleExtractor::new(cfg).extract(&clip.samples);
        let mut prev_end = 0usize;
        for e in &ensembles {
            prop_assert!(e.start >= prev_end);
            prop_assert!(e.end <= clip.samples.len());
            prop_assert!(e.len() >= cfg.min_ensemble_samples);
            prop_assert_eq!(e.len(), e.end - e.start);
            prev_end = e.end;
        }
    }

    /// The trigger trace is binary, and extraction is deterministic.
    #[test]
    fn extraction_deterministic(seed in 0u64..2_000) {
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(SpeciesCode::Blja, seed);
        let ex = EnsembleExtractor::new(ExtractorConfig::default());
        let a = ex.extract_with_trace(&clip.samples);
        let b = ex.extract_with_trace(&clip.samples);
        prop_assert_eq!(&a.trigger, &b.trigger);
        prop_assert_eq!(&a.ensembles, &b.ensembles);
        prop_assert!(a.trigger.iter().all(|&t| t <= 1));
    }

    /// Featurization yields patterns of exactly the configured
    /// dimension, whatever the ensemble length.
    #[test]
    fn featurization_dimensions(len in 840usize..8_400, with_paa in any::<bool>()) {
        let cfg = ExtractorConfig::default();
        let samples: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).sin() * 0.3).collect();
        let patterns = featurize_ensemble(&samples, &cfg, with_paa);
        let expect = if with_paa { 105 } else { 1_050 };
        for p in &patterns {
            prop_assert_eq!(p.len(), expect);
            prop_assert!(p.iter().all(|x| x.is_finite()));
        }
        // Pattern count never exceeds records / pattern_records.
        prop_assert!(patterns.len() <= len.div_ceil(cfg.record_len) / cfg.pattern_records);
    }

    /// Log scaling keeps features non-negative and monotone in input
    /// magnitude; amplitude scaling of the waveform never changes the
    /// pattern count.
    #[test]
    fn featurization_amplitude_stability(gain in 0.01f64..1.0) {
        let cfg = ExtractorConfig::default();
        let base: Vec<f64> = (0..840 * 6).map(|i| (i as f64 * 0.4).sin()).collect();
        let scaled: Vec<f64> = base.iter().map(|x| x * gain).collect();
        let a = featurize_ensemble(&base, &cfg, true);
        let b = featurize_ensemble(&scaled, &cfg, true);
        prop_assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            for (&x, &y) in pa.iter().zip(pb) {
                prop_assert!(x >= 0.0 && y >= 0.0);
                prop_assert!(x + 1e-12 >= y); // gain <= 1 shrinks features
            }
        }
    }

    /// Chunk-at-a-time streaming extraction is identical to the batch
    /// path whatever the chunk size — the chunking of a sensor feed
    /// must never change what is extracted.
    #[test]
    fn extract_stream_chunking_invariant(
        seed in 0u64..3_000,
        species_idx in 0usize..10,
        chunk_len in 1usize..10_000,
    ) {
        let species = SpeciesCode::ALL[species_idx];
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clip = synth.clip(species, seed);
        let ex = EnsembleExtractor::new(ExtractorConfig::default());
        let batch = ex.extract(&clip.samples);

        let mut stream = ex.extract_stream();
        let mut streamed = Vec::new();
        for chunk in clip.samples.chunks(chunk_len) {
            stream.push_chunk(chunk, &mut streamed);
        }
        streamed.extend(stream.finish());
        prop_assert_eq!(streamed, batch);
    }

    /// The adaptive trigger never fires during warm-up and always
    /// recovers to 0 on a long constant input.
    #[test]
    fn trigger_sane(
        warmup in 1u64..200,
        scores in prop::collection::vec(0.0f64..2.0, 10..300),
    ) {
        let mut t = AdaptiveTrigger::new(5.0, warmup);
        for (i, &s) in scores.iter().enumerate() {
            let fired = t.push(s);
            if (i as u64) < warmup {
                prop_assert!(!fired, "fired during warm-up at {i}");
            }
        }
        // Returning to the learned baseline always releases the trigger
        // (deviation zero is inside any band).
        let baseline = t.mu0();
        for _ in 0..5 {
            t.push(baseline);
        }
        prop_assert!(!t.push(baseline));
    }
}

/// Runs the full Figure 5 pipeline over `clips` with the given spectral
/// path, both streaming and sharded, returning (streaming, sharded)
/// outputs.
fn run_both_modes(
    cfg: ExtractorConfig,
    with_paa: bool,
    spectral: SpectralPath,
    clips: &[Vec<f64>],
    workers: usize,
) -> (Vec<dynamic_river::Record>, Vec<dynamic_river::Record>) {
    use ensemble_core::ops::clips_record_source;
    let mut streamed = Vec::new();
    full_pipeline_with(cfg, with_paa, spectral)
        .run_streaming(
            clips_record_source(clips.to_vec(), cfg.sample_rate, cfg.record_len),
            &mut streamed,
        )
        .unwrap();
    let mut sharded = Vec::new();
    full_pipeline_sharded_with(cfg, with_paa, workers, spectral)
        .run(
            clips_record_source(clips.to_vec(), cfg.sample_rate, cfg.record_len),
            &mut sharded,
        )
        .unwrap();
    (streamed, sharded)
}

/// Asserts two pipeline outputs are record-for-record equivalent:
/// identical structure (kind, subtype, seq, context) and F64 payloads
/// within `tol` relative error.
fn assert_records_equivalent(a: &[dynamic_river::Record], b: &[dynamic_river::Record], tol: f64) {
    assert_eq!(a.len(), b.len(), "record counts differ");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.kind, rb.kind, "record {i} kind");
        assert_eq!(ra.subtype, rb.subtype, "record {i} subtype");
        assert_eq!(ra.seq, rb.seq, "record {i} seq");
        match (ra.payload.as_f64(), rb.payload.as_f64()) {
            (Some(va), Some(vb)) => {
                assert_eq!(va.len(), vb.len(), "record {i} payload length");
                for (k, (x, y)) in va.iter().zip(vb).enumerate() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= tol * scale,
                        "record {i} sample {k}: {x} vs {y}"
                    );
                }
            }
            _ => assert_eq!(ra.payload, rb.payload, "record {i} payload"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fused `spectrum` stage is a drop-in replacement for the
    /// four-operator oracle chain: over whole synthesized clips, the
    /// full pipeline's outputs agree record-for-record to ≤ 1e-9
    /// relative error — under `run_streaming` AND under the sharded
    /// runtime.
    #[test]
    fn fused_spectrum_matches_oracle_chain_end_to_end(
        seed in 0u64..1_000,
        species_idx in 0usize..10,
        with_paa in any::<bool>(),
        reslice in any::<bool>(),
        workers in 1usize..4,
    ) {
        let species = SpeciesCode::ALL[species_idx];
        let cfg = ExtractorConfig {
            reslice,
            ..ExtractorConfig::default()
        };
        let synth = ClipSynthesizer::new(SynthConfig::short_test());
        let clips: Vec<Vec<f64>> = (0..2u64)
            .map(|i| {
                let c = synth.clip(species, seed.wrapping_add(i));
                let usable = c.samples.len() - c.samples.len() % cfg.record_len;
                c.samples[..usable].to_vec()
            })
            .collect();

        let (fused_stream, fused_shard) =
            run_both_modes(cfg, with_paa, SpectralPath::Fused, &clips, workers);
        let (oracle_stream, oracle_shard) =
            run_both_modes(cfg, with_paa, SpectralPath::Oracle, &clips, workers);

        // Sharding is deterministic within a path…
        prop_assert_eq!(&fused_stream, &fused_shard);
        prop_assert_eq!(&oracle_stream, &oracle_shard);
        // …and the two paths agree numerically.
        assert_records_equivalent(&fused_stream, &oracle_stream, 1e-9);
    }
}
