//! Streaming-executor integration tests for the Figure 5 graph:
//! batch/streaming equivalence on real synthetic clips, and the
//! constant-memory guarantee over streams far longer than any clip.

use dynamic_river::prelude::*;
use dynamic_river::scope::validate_scopes;
use ensemble_core::ops::{clip_record_source, clip_to_records};
use ensemble_core::pipeline::{extraction_segment, full_pipeline};
use ensemble_core::prelude::*;
use ensemble_core::subtype;

/// The fused streaming driver and the materializing batch runner
/// produce record-for-record identical output for the complete
/// Figure 5 pipeline over a clip with real song bouts.
#[test]
fn figure5_streaming_equals_batch() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    let clip = synth.clip(SpeciesCode::Rwbl, 42);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let records = clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    );

    for with_paa in [false, true] {
        let batch = full_pipeline(cfg, with_paa)
            .run_batch(records.clone())
            .unwrap();
        let mut streamed = Vec::new();
        let stats = full_pipeline(cfg, with_paa)
            .run_streaming(records.clone().into_iter(), &mut streamed)
            .unwrap();
        assert_eq!(batch, streamed, "with_paa={with_paa}");
        validate_scopes(&streamed).unwrap();
        assert_eq!(stats.source_records as usize, records.len());
        assert_eq!(stats.sink_records as usize, streamed.len());
    }
}

/// The lazy clip source feeds the pipeline the same stream as the
/// materialized record vector.
#[test]
fn clip_record_source_matches_clip_to_records() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    let clip = synth.clip(SpeciesCode::Bcch, 7);
    let materialized = clip_to_records(&clip.samples, cfg.sample_rate, cfg.record_len, &[]);

    let mut streamed = Vec::new();
    Pipeline::new()
        .run_streaming(
            clip_record_source(
                clip.samples.iter().copied(),
                cfg.sample_rate,
                cfg.record_len,
                &[],
            ),
            &mut streamed,
        )
        .unwrap();
    assert_eq!(streamed, materialized);
}

/// A cheap deterministic "sensor stream": a quiet noise floor with a
/// loud tonal burst for one second out of every ten — enough to open
/// real ensembles without paying for the full birdsong synthesizer at
/// 100-clip scale.
fn sensor_stream(total: usize, sample_rate: f64) -> impl Iterator<Item = f64> {
    let second = sample_rate as usize;
    (0..total).map(move |i| {
        let noise = (((i.wrapping_mul(2_654_435_761)) % 997) as f64 / 997.0 - 0.5) * 0.02;
        let in_burst = (i / second) % 10 == 3;
        let burst = if in_burst {
            (i as f64 * 0.7).sin() * 0.5
        } else {
            0.0
        };
        noise + burst
    })
}

/// The acceptance test for the fused executor: a synthetic stream of
/// 100× the default clip length flows through the complete Figure 5
/// pipeline via `run_streaming`, and the per-stage counters prove the
/// driver never buffered more than a small constant burst of records —
/// peak buffering is operator-internal state, not stream length.
#[test]
fn unbounded_stream_runs_in_constant_memory() {
    let cfg = ExtractorConfig::default();
    // 100× the default clip. Debug builds run the extraction chain ~60×
    // slower than release, so they scale the clip to the short test
    // length (still an 8-million-sample stream); release builds use the
    // full 30 s default clip — 60.48 M samples.
    let clip_samples = if cfg!(debug_assertions) {
        SynthConfig::short_test().clip_samples()
    } else {
        SynthConfig::default().clip_samples()
    };
    let total = 100 * clip_samples;
    let records_expected = (total / cfg.record_len) as u64;

    let run = |n: usize| {
        let mut p = full_pipeline(cfg, true);
        let mut sink = CountingSink::default();
        let stats = p
            .run_streaming(
                clip_record_source(
                    sensor_stream(n, cfg.sample_rate),
                    cfg.sample_rate,
                    cfg.record_len,
                    &[],
                ),
                &mut sink,
            )
            .unwrap();
        (stats, sink)
    };

    let (stats, sink) = run(total);

    // The whole stream went through: open + audio records + close.
    assert_eq!(stats.source_records, records_expected + 2);
    assert_eq!(stats.stages[0].records_in, records_expected + 2);

    // The bursts actually exercised the back half: patterns reached the
    // sink.
    let rec2vect = stats.stages.last().unwrap();
    assert_eq!(rec2vect.name, "rec2vect");
    assert!(
        rec2vect.records_out > 100,
        "only {} records left rec2vect",
        rec2vect.records_out
    );
    assert!(sink.records > 100);

    // The constant-memory claim. Every stage's peak burst — the most
    // records that ever left it for one input, i.e. the most the driver
    // ever had in flight below it — is a small constant: saxanomaly
    // pairs each audio record with a score record (2), cutter drains
    // its proved-long-enough buffer (1 + min_ensemble_samples /
    // record_len + 1 = 3 at paper geometry), everything downstream is
    // record-at-a-time. Compare: the batch runner would materialize all
    // ~72 000 records between every pair of stages at release scale.
    let bound = 2 + (cfg.min_ensemble_samples / cfg.record_len + 2) as u64;
    for stage in &stats.stages {
        assert!(
            stage.peak_burst <= bound,
            "stage {} peak burst {} exceeds constant bound {bound}",
            stage.name,
            stage.peak_burst
        );
        assert!(
            stage.records_in < 4 * records_expected,
            "stage {} saw {} records for {} inputs",
            stage.name,
            stage.records_in,
            records_expected
        );
    }

    // And the bound does not move with stream length: a 10× shorter
    // stream shows the same per-stage peaks.
    let (short_stats, _) = run(total / 10);
    for (long, short) in stats.stages.iter().zip(&short_stats.stages) {
        assert!(
            long.peak_burst <= short.peak_burst.max(bound),
            "stage {} burst grew with stream length: {} vs {}",
            long.name,
            long.peak_burst,
            short.peak_burst
        );
    }
}

/// The acceptance test for the sharded runtime: a many-clip archive
/// stream (100 clips in release, scaled down in debug like the
/// constant-memory test above) flows through the complete Figure 5
/// graph via `run_sharded`, and the output is **byte-identical** to
/// the single-lane `run_streaming` path while every shard's peak burst
/// stays within the same constant bound — data-parallelism without any
/// change in observable behavior.
#[test]
fn sharded_archive_matches_single_lane_with_constant_burst() {
    use ensemble_core::ops::clips_record_source;
    use ensemble_core::pipeline::full_pipeline_sharded;

    let cfg = ExtractorConfig::default();
    let clip_samples = SynthConfig::short_test().clip_samples();
    let clips = if cfg!(debug_assertions) { 8 } else { 100 };
    let clip: Vec<f64> = sensor_stream(clip_samples, cfg.sample_rate).collect();
    let archive = || {
        clips_record_source(
            std::iter::repeat_with(|| clip.clone()).take(clips),
            cfg.sample_rate,
            cfg.record_len,
        )
    };

    let mut single = Vec::new();
    let single_stats = full_pipeline(cfg, true)
        .run_streaming(archive(), &mut single)
        .unwrap();
    validate_scopes(&single).unwrap();
    assert!(
        single
            .iter()
            .any(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN),
        "archive produced no patterns"
    );

    let bound = 2 + (cfg.min_ensemble_samples / cfg.record_len + 2) as u64;
    for workers in [2usize, 4] {
        let mut sharded = Vec::new();
        let stats = full_pipeline_sharded(cfg, true, workers)
            .run(archive(), &mut sharded)
            .unwrap();
        assert_eq!(single, sharded, "workers={workers}");
        assert_eq!(stats.source_records, single_stats.source_records);
        assert_eq!(stats.sink_records, single_stats.sink_records);
        // `StreamStats::merge` keeps the max over shards, so this bounds
        // *every* shard's buffering, not an average.
        for stage in &stats.stages {
            assert!(
                stage.peak_burst <= bound,
                "workers={workers} stage {} peak burst {} exceeds constant bound {bound}",
                stage.name,
                stage.peak_burst
            );
        }
    }
}

/// `run_count` streams through a counting sink — on a long stream it
/// must agree with the collected output's length without keeping it.
#[test]
fn run_count_agrees_with_run_on_extraction() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    let clip = synth.clip(SpeciesCode::Noca, 3);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let records = clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    );

    let collected = extraction_segment(cfg).run(records.clone()).unwrap();
    let counted = extraction_segment(cfg).run_count(records).unwrap();
    assert_eq!(counted, collected.len());
    assert!(collected
        .iter()
        .any(|r| r.kind == RecordKind::Data && r.subtype == subtype::AUDIO));
}
