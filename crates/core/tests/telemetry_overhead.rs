//! Telemetry overhead guard for the fused Figure 5 chain (ISSUE 9
//! satellite 4).
//!
//! With [`TelemetryConfig::Off`] the executor's only telemetry cost is
//! a per-stage `Option<Arc<StageTimer>>` that is `None` (never taken)
//! plus one disabled-event check — strictly less work than
//! [`TelemetryConfig::Counters`], which takes that branch and pays the
//! clock reads and atomic bucket updates. The pre-telemetry executor is
//! no longer in-tree to diff against, so this guard bounds the Off-mode
//! overhead *a fortiori*: it runs the full fused Figure 5 chain with
//! telemetry Off and with Counters and requires the **enabled** mode to
//! stay within 5% ns/record of Off. Whatever the dead branch costs is
//! necessarily below that.
//!
//! Timings are best-of-N minima with the two configs measured in
//! alternation, so slow drift on a loaded single-core CI host (a
//! background build, a noisy neighbor) hits both sides equally instead
//! of landing on whichever config happened to run second. The chain's
//! per-record work (SAX anomaly scoring, fused spectra) dwarfs the
//! timer's clock reads by an order of magnitude, so the honest Counters
//! cost sits well inside the budget. The file holds a single `#[test]`
//! so no sibling test competes for the core inside the measured window.

use dynamic_river::{CountingSink, TelemetryConfig};
use ensemble_core::ops::clips_record_source;
use ensemble_core::pipeline::{full_pipeline_with, SpectralPath};
use ensemble_core::prelude::*;
use std::time::Instant;

/// One timed pass of the fused Figure 5 chain under `config`,
/// returning ns per source record.
fn ns_per_record(cfg: ExtractorConfig, samples: &[f64], config: TelemetryConfig) -> f64 {
    let mut p = full_pipeline_with(cfg, true, SpectralPath::Fused);
    p.set_telemetry(config);
    let mut sink = CountingSink::default();
    let source = clips_record_source(
        std::iter::once(samples.to_vec()),
        cfg.sample_rate,
        cfg.record_len,
    );
    let t0 = Instant::now();
    let stats = p.run_streaming(source, &mut sink).expect("chain run");
    let dt = t0.elapsed().as_secs_f64();
    dt / stats.source_records as f64 * 1e9
}

/// Best-of-N for Off and Counters, measured in alternation.
fn measure_pair(cfg: ExtractorConfig, samples: &[f64]) -> (f64, f64) {
    let mut off = f64::INFINITY;
    let mut counters = f64::INFINITY;
    for _ in 0..7 {
        off = off.min(ns_per_record(cfg, samples, TelemetryConfig::Off));
        counters = counters.min(ns_per_record(cfg, samples, TelemetryConfig::Counters));
    }
    (off, counters)
}

#[test]
fn telemetry_off_overhead_stays_under_five_percent() {
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 5);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let samples = &clip.samples[..usable];

    // One throwaway pass warms caches and the allocator.
    let _ = ns_per_record(cfg, samples, TelemetryConfig::Off);

    let (off, counters) = measure_pair(cfg, samples);
    eprintln!("telemetry overhead: off {off:.0} ns/record, counters {counters:.0} ns/record");

    if cfg!(debug_assertions) {
        // An unoptimized build times the executor's debug scaffolding,
        // not the shipped hot path, and on a one-core CI host that
        // noise alone exceeds the budget. The 5% gate is enforced on
        // the release build (`ci.sh telemetry-check` runs it optimized).
        eprintln!("debug build: timing budget not enforced");
    } else {
        assert!(
            counters <= off * 1.05,
            "telemetry Counters mode cost {counters:.0} ns/record vs {off:.0} ns/record with \
             telemetry off — over the 5% budget, so the Off-mode dead branch cannot be cheap either"
        );
    }

    // Functional halves of the same guard: Off registers nothing (the
    // hot-path branch is a None), Counters populates every stage's
    // histogram but traces no events (that is Full's job).
    let source = || {
        clips_record_source(
            std::iter::once(samples.to_vec()),
            cfg.sample_rate,
            cfg.record_len,
        )
    };

    let mut p = full_pipeline_with(cfg, true, SpectralPath::Fused);
    let mut sink = CountingSink::default();
    p.run_streaming(source(), &mut sink).expect("off run");
    let snap = p.telemetry_snapshot();
    assert!(snap.stages.is_empty());
    assert!(snap.events.is_empty());

    let mut p = full_pipeline_with(cfg, true, SpectralPath::Fused);
    p.set_telemetry(TelemetryConfig::Counters);
    let mut sink = CountingSink::default();
    p.run_streaming(source(), &mut sink).expect("counters run");
    let snap = p.telemetry_snapshot();
    assert!(!snap.stages.is_empty());
    assert!(snap.stages.iter().all(|s| s.latency.count > 0));
    assert!(snap.events.is_empty());
}
