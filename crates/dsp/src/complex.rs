//! Complex number arithmetic.
//!
//! A minimal, dependency-free complex type sufficient for FFT computation
//! and the pipeline's `float2cplx` / `cabs` operators. Only `f64` precision
//! is provided; the acoustic pipeline converts samples to `f64` before
//! spectral processing.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use river_dsp::Complex64;
///
/// let a = Complex64::new(3.0, 4.0);
/// assert_eq!(a.abs(), 5.0);
/// assert_eq!(a * Complex64::I, Complex64::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// ```
    /// use river_dsp::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{i theta}`: a unit-magnitude complex number at angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The magnitude (complex absolute value), as computed by the pipeline's
    /// `cabs` operator.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude; cheaper than [`abs`](Self::abs) when only
    /// relative ordering matters.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex64::from_real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::from(2.0), Complex64::new(2.0, 0.0));
        assert_eq!(Complex64::from((1.0, 2.0)), Complex64::new(1.0, 2.0));
    }

    #[test]
    fn add_sub() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn mul_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i - 8i^2 = 11 + 2i
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < EPS);
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn sum_of_roots_of_unity_is_zero() {
        let n = 16;
        let total: Complex64 = (0..n)
            .map(|k| Complex64::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(total.abs() < 1e-10);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_detection() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(Complex64::new(0.0, f64::NAN).is_nan());
        assert!(!Complex64::new(0.0, 0.0).is_nan());
    }
}
