//! Discrete Fourier transforms.
//!
//! The pipeline's `dft` operator transforms 840-sample records (20.16 kHz,
//! 24 Hz bins), so an arbitrary-length transform is required. Three
//! implementations are provided:
//!
//! - an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths,
//! - Bluestein's chirp-z algorithm for all other lengths (it reduces an
//!   arbitrary-N DFT to a power-of-two circular convolution), and
//! - [`dft_naive`], an O(N²) reference used by tests.
//!
//! [`Fft`] plans a transform for one length and may be reused for every
//! record of that length; planning precomputes twiddle factors and, for
//! Bluestein, the convolution kernel.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// A planned forward/inverse DFT of a fixed length.
///
/// # Example
///
/// ```
/// use river_dsp::{Complex64, Fft};
///
/// let fft = Fft::new(8);
/// let x: Vec<Complex64> = (0..8).map(|i| Complex64::from_real(i as f64)).collect();
/// let spectrum = fft.forward(&x);
/// let back = fft.inverse(&spectrum);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    plan: Plan,
}

#[derive(Debug, Clone)]
enum Plan {
    /// Radix-2 FFT: bit-reversal permutation plus precomputed twiddles.
    Radix2 { twiddles: Vec<Complex64> },
    /// Bluestein chirp-z: `a_k = x_k * c_k` convolved with `b`, sized `m`.
    Bluestein {
        m: usize,
        inner: Box<Fft>,
        /// Chirp factors `exp(-i*pi*k^2/n)` for k in 0..n.
        chirp: Vec<Complex64>,
        /// Forward transform of the convolution kernel, length `m`.
        kernel_fft: Vec<Complex64>,
    },
}

impl Fft {
    /// Plans a transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be non-zero");
        if n.is_power_of_two() {
            let twiddles = (0..n / 2)
                .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            Fft {
                n,
                plan: Plan::Radix2 { twiddles },
            }
        } else {
            // Bluestein: convolution length must be >= 2n-1 and power of two.
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(Fft::new(m));
            let chirp: Vec<Complex64> = (0..n)
                .map(|k| {
                    // k^2 mod 2n keeps the argument small for numerical stability.
                    let k2 = (k as u128 * k as u128) % (2 * n as u128);
                    Complex64::cis(-PI * k2 as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![Complex64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for k in 1..n {
                let c = chirp[k].conj();
                kernel[k] = c;
                kernel[m - k] = c;
            }
            let kernel_fft = inner.forward(&kernel);
            Fft {
                n,
                plan: Plan::Bluestein {
                    m,
                    inner,
                    chirp,
                    kernel_fft,
                },
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Computes the forward DFT: `X_k = sum_j x_j e^{-2πi jk/N}`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let mut buf = input.to_vec();
        self.forward_in_place(&mut buf);
        buf
    }

    /// Scratch samples required by [`forward_scratch`](Self::forward_scratch)
    /// and [`inverse_scratch`](Self::inverse_scratch): zero for radix-2
    /// plans, the convolution length `m` for Bluestein plans. Planning
    /// owns the twiddle, chirp, and kernel tables; a caller that also
    /// supplies this much scratch makes every transform allocation-free.
    pub fn scratch_len(&self) -> usize {
        match &self.plan {
            Plan::Radix2 { .. } => 0,
            // The inner plan is a power-of-two radix-2 FFT (it needs no
            // scratch of its own), so `m` covers the whole chain.
            Plan::Bluestein { m, .. } => *m,
        }
    }

    /// Computes the forward DFT in place.
    ///
    /// Allocates the plan's scratch on each call; hot paths should plan
    /// a scratch buffer once and use
    /// [`forward_scratch`](Self::forward_scratch).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward_in_place(&self, buf: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.forward_scratch(buf, &mut scratch);
    }

    /// Computes the forward DFT in place using caller-provided scratch —
    /// the allocation-free hot path. `scratch` contents are clobbered.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()` or
    /// `scratch.len() < self.scratch_len()`.
    pub fn forward_scratch(&self, buf: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan");
        assert!(
            scratch.len() >= self.scratch_len(),
            "scratch length {} below required {}",
            scratch.len(),
            self.scratch_len()
        );
        match &self.plan {
            Plan::Radix2 { twiddles } => radix2_in_place(buf, twiddles),
            Plan::Bluestein {
                m,
                inner,
                chirp,
                kernel_fft,
            } => {
                let n = self.n;
                let (a, rest) = scratch.split_at_mut(*m);
                for k in 0..n {
                    a[k] = buf[k] * chirp[k];
                }
                a[n..].fill(Complex64::ZERO);
                inner.forward_scratch(a, rest);
                for (ak, bk) in a.iter_mut().zip(kernel_fft.iter()) {
                    *ak *= *bk;
                }
                inner.inverse_scratch(a, rest);
                for k in 0..n {
                    buf[k] = a[k] * chirp[k];
                }
            }
        }
    }

    /// Computes the (normalized) inverse DFT.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let mut buf = input.to_vec();
        self.inverse_in_place(&mut buf);
        buf
    }

    /// Computes the (normalized) inverse DFT in place.
    ///
    /// Allocates the plan's scratch on each call; hot paths should use
    /// [`inverse_scratch`](Self::inverse_scratch).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse_in_place(&self, buf: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.inverse_scratch(buf, &mut scratch);
    }

    /// Computes the (normalized) inverse DFT in place using
    /// caller-provided scratch. `scratch` contents are clobbered.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()` or
    /// `scratch.len() < self.scratch_len()`.
    pub fn inverse_scratch(&self, buf: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan");
        // IDFT(x) = conj(DFT(conj(x))) / N
        for z in buf.iter_mut() {
            *z = z.conj();
        }
        self.forward_scratch(buf, scratch);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }
}

/// A planned forward DFT of real-valued input.
///
/// Real input halves the work: for even lengths the `N` real samples
/// are packed into an `N/2`-point **complex** FFT (`z_k = x_{2k} +
/// i·x_{2k+1}`), transformed, and unpacked through the Hermitian
/// symmetry `X_{N-k} = conj(X_k)` — so the production 840-sample record
/// rides a 420-point (Bluestein, inner 1024) transform instead of the
/// 840-point (inner 2048) one. Odd lengths cannot pack pairs and fall
/// back to a full-length complex transform of the same plan family.
///
/// Planning owns every table (half/full plan twiddles, chirp and kernel
/// for Bluestein lengths, and the unpack twiddles); with a caller-kept
/// scratch buffer ([`scratch_len`](Self::scratch_len)), the steady
/// state is allocation-free via [`forward_into`](Self::forward_into)
/// and [`magnitudes_into`](Self::magnitudes_into).
///
/// # Example
///
/// ```
/// use river_dsp::fft::{dft_naive, RealFft};
/// use river_dsp::Complex64;
///
/// let x: Vec<f64> = (0..840).map(|i| (i as f64 * 0.17).sin()).collect();
/// let spec = RealFft::new(840).forward(&x);
/// let naive = dft_naive(&x.iter().map(|&v| Complex64::from_real(v)).collect::<Vec<_>>());
/// for (a, b) in spec.iter().zip(&naive) {
///     assert!((*a - *b).abs() < 1e-7);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    n: usize,
    plan: RealPlan,
}

#[derive(Debug, Clone)]
enum RealPlan {
    /// Even length: half-size complex FFT plus Hermitian unpack.
    Packed {
        half: Fft,
        /// Unpack twiddles `e^{-2πik/n}` for `k` in `0..n/2`.
        twiddles: Vec<Complex64>,
    },
    /// Odd length: full-length complex transform (pairs cannot pack).
    Direct { full: Fft },
}

impl RealFft {
    /// Plans a real-input transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be non-zero");
        let plan = if n.is_multiple_of(2) {
            let half = n / 2;
            RealPlan::Packed {
                half: Fft::new(half),
                twiddles: (0..half)
                    .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
                    .collect(),
            }
        } else {
            RealPlan::Direct { full: Fft::new(n) }
        };
        RealFft { n, plan }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch samples required by the allocation-free entry points.
    pub fn scratch_len(&self) -> usize {
        match &self.plan {
            RealPlan::Packed { half, .. } => self.n / 2 + half.scratch_len(),
            RealPlan::Direct { full } => self.n + full.scratch_len(),
        }
    }

    /// Transforms a real-valued record, returning the full complex
    /// spectrum (all `N` bins; the top half via Hermitian symmetry).
    ///
    /// Allocates the output and scratch; hot paths should use
    /// [`forward_into`](Self::forward_into).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.n];
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.forward_into(input, &mut out, &mut scratch);
        out
    }

    /// Transforms a real-valued record into `out` using caller-provided
    /// scratch — allocation-free. `scratch` contents are clobbered.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`, `out.len() != self.len()`,
    /// or `scratch.len() < self.scratch_len()`.
    pub fn forward_into(&self, input: &[f64], out: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(input.len(), self.n, "input length must match plan");
        assert_eq!(out.len(), self.n, "output length must match plan");
        match &self.plan {
            RealPlan::Direct { full } => {
                for (o, &x) in out.iter_mut().zip(input) {
                    *o = Complex64::from_real(x);
                }
                full.forward_scratch(out, scratch);
            }
            RealPlan::Packed { half, twiddles } => {
                let m = self.n / 2;
                assert!(
                    scratch.len() >= self.scratch_len(),
                    "scratch length {} below required {}",
                    scratch.len(),
                    self.scratch_len()
                );
                let (z, rest) = scratch.split_at_mut(m);
                for (k, zk) in z.iter_mut().enumerate() {
                    *zk = Complex64::new(input[2 * k], input[2 * k + 1]);
                }
                half.forward_scratch(z, rest);
                let z0 = z[0];
                out[0] = Complex64::from_real(z0.re + z0.im);
                out[m] = Complex64::from_real(z0.re - z0.im);
                for k in 1..m {
                    let x = unpack_bin(z, twiddles, m, k);
                    out[k] = x;
                    out[self.n - k] = x.conj();
                }
            }
        }
    }

    /// Computes the full `N`-bin magnitude spectrum of a real-valued
    /// record — optionally windowing the input on the fly — without
    /// materializing the complex spectrum: pack (× window), half-size
    /// FFT, and `|X_k|` straight out of the Hermitian unpack (the
    /// conjugate top half shares the bottom half's magnitudes). This is
    /// the fused `welchwindow → float2cplx → dft → cabs` hot path.
    ///
    /// `scratch` contents are clobbered.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`, `out.len() != self.len()`,
    /// `scratch.len() < self.scratch_len()`, or a provided window's
    /// length differs from the input's.
    pub fn magnitudes_into(
        &self,
        input: &[f64],
        window: Option<&[f64]>,
        out: &mut [f64],
        scratch: &mut [Complex64],
    ) {
        assert_eq!(input.len(), self.n, "input length must match plan");
        assert_eq!(out.len(), self.n, "output length must match plan");
        assert!(
            scratch.len() >= self.scratch_len(),
            "scratch length {} below required {}",
            scratch.len(),
            self.scratch_len()
        );
        if let Some(w) = window {
            assert_eq!(w.len(), self.n, "window length must match plan");
        }
        let windowed = |i: usize| match window {
            Some(w) => input[i] * w[i],
            None => input[i],
        };
        match &self.plan {
            RealPlan::Direct { full } => {
                let (buf, rest) = scratch.split_at_mut(self.n);
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = Complex64::from_real(windowed(i));
                }
                full.forward_scratch(buf, rest);
                for (o, zc) in out.iter_mut().zip(buf.iter()) {
                    *o = zc.abs();
                }
            }
            RealPlan::Packed { half, twiddles } => {
                let m = self.n / 2;
                let (z, rest) = scratch.split_at_mut(m);
                for (k, zk) in z.iter_mut().enumerate() {
                    *zk = Complex64::new(windowed(2 * k), windowed(2 * k + 1));
                }
                half.forward_scratch(z, rest);
                let z0 = z[0];
                out[0] = (z0.re + z0.im).abs();
                out[m] = (z0.re - z0.im).abs();
                for k in 1..m {
                    let mag = unpack_bin(z, twiddles, m, k).abs();
                    out[k] = mag;
                    out[self.n - k] = mag;
                }
            }
        }
    }
}

/// Hermitian unpack of bin `k` (for `k` in `1..m`) from the half-size
/// transform `z` of packed real input: even/odd split of `Z_k` against
/// `conj(Z_{m-k})` recombined through the unpack twiddle.
#[inline]
fn unpack_bin(z: &[Complex64], twiddles: &[Complex64], m: usize, k: usize) -> Complex64 {
    let a = z[k];
    let b = z[m - k].conj();
    let e = (a + b).scale(0.5);
    let o = (a - b) * Complex64::new(0.0, -0.5);
    e + twiddles[k] * o
}

/// Iterative radix-2 Cooley–Tukey, decimation in time.
fn radix2_in_place(buf: &mut [Complex64], twiddles: &[Complex64]) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * step];
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
            }
        }
        len *= 2;
    }
}

/// Reference O(N²) DFT used to validate the fast paths.
///
/// # Example
///
/// ```
/// use river_dsp::fft::{dft_naive, Fft};
/// use river_dsp::Complex64;
///
/// let x: Vec<Complex64> = (0..12).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
/// let fast = Fft::new(12).forward(&x);
/// let slow = dft_naive(&x);
/// for (a, b) in fast.iter().zip(&slow) {
///     assert!((*a - *b).abs() < 1e-8);
/// }
/// ```
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| input[j] * Complex64::cis(-2.0 * PI * (j * k) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// The frequency in Hz of DFT bin `k` for a transform of `n` samples at
/// `sample_rate` Hz.
///
/// ```
/// use river_dsp::fft::bin_frequency;
/// // Production geometry: 840 samples at 20.16 kHz -> 24 Hz bins.
/// assert_eq!(bin_frequency(50, 840, 20_160.0), 1_200.0);
/// assert_eq!(bin_frequency(400, 840, 20_160.0), 9_600.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    k as f64 * sample_rate / n as f64
}

/// The DFT bin index whose center frequency is closest to `freq` Hz.
///
/// ```
/// use river_dsp::fft::frequency_bin;
/// assert_eq!(frequency_bin(1_200.0, 840, 20_160.0), 50);
/// ```
pub fn frequency_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    ((freq * n as f64 / sample_rate).round() as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x} vs {y} (|diff|={})",
                (*x - *y).abs()
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[0] = Complex64::ONE;
        v
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        for &n in &[1usize, 2, 4, 8, 64, 700, 31] {
            let fft = Fft::new(n);
            let spec = fft.forward(&impulse(n));
            for z in &spec {
                assert!((*z - Complex64::ONE).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let n = 128;
        let fft = Fft::new(n);
        let x = vec![Complex64::ONE; n];
        let spec = fft.forward(&x);
        assert!((spec[0] - Complex64::from_real(n as f64)).abs() < 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 700;
        let fft = RealFft::new(n);
        let k0 = 50; // bin 50 of a 700-point transform
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft.forward(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        // Energy should be at bins k0 and n-k0 only.
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-6);
        assert!((mags[n - k0] - n as f64 / 2.0).abs() < 1e-6);
        for (k, &m) in mags.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(m < 1e-6, "leak at bin {k}: {m}");
            }
        }
    }

    #[test]
    fn radix2_matches_naive() {
        let n = 64;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_spectra_close(&Fft::new(n).forward(&x), &dft_naive(&x), 1e-8);
    }

    #[test]
    fn bluestein_matches_naive_for_awkward_lengths() {
        for &n in &[3usize, 5, 7, 12, 100, 175, 700] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
                .collect();
            assert_spectra_close(&Fft::new(n).forward(&x), &dft_naive(&x), 1e-7);
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for &n in &[8usize, 100, 700, 31] {
            let fft = Fft::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.1).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let back = fft.inverse(&fft.forward(&x));
            assert_spectra_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 100;
        let fft = Fft::new(n);
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::from_real(i as f64)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft.forward(&a);
        let fb = fft.forward(&b);
        let fsum = fft.forward(&sum);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_spectra_close(&fsum, &expected, 1e-8);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 700;
        let fft = Fft::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.31).sin(), 0.0))
            .collect();
        let spec = fft.forward(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn conjugate_symmetry_for_real_input() {
        let n = 700;
        let fft = RealFft::new(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let spec = fft.forward(&x);
        for k in 1..n {
            assert!((spec[k] - spec[n - k].conj()).abs() < 1e-8);
        }
    }

    /// `RealFft` against the full complex transform of zero-padded-
    /// imaginary input, across packed radix-2 halves, packed Bluestein
    /// halves, and the odd-length direct fallback.
    #[test]
    fn realfft_matches_complex_fft() {
        for &n in &[1usize, 2, 4, 8, 64, 100, 175, 420, 700, 840, 3, 5, 31, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin() * 0.7).collect();
            let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
            let expected = Fft::new(n).forward(&packed);
            let got = RealFft::new(n).forward(&x);
            assert_spectra_close(&got, &expected, 1e-8);
        }
    }

    #[test]
    fn realfft_forward_into_is_allocation_free_equivalent() {
        let n = 840;
        let plan = RealFft::new(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut out = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        // Reuse the same scratch twice: the second run must not observe
        // the first's leftovers.
        plan.forward_into(&x, &mut out, &mut scratch);
        let first = out.clone();
        plan.forward_into(&x, &mut out, &mut scratch);
        assert_eq!(first, out);
        assert_spectra_close(&out, &plan.forward(&x), 1e-12);
    }

    #[test]
    fn realfft_magnitudes_match_spectrum_abs() {
        for &n in &[8usize, 31, 100, 840] {
            let plan = RealFft::new(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
            let window: Vec<f64> = (0..n).map(|i| 0.3 + (i % 7) as f64 * 0.1).collect();
            let mut mags = vec![0.0; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.magnitudes_into(&x, Some(&window), &mut mags, &mut scratch);
            let windowed: Vec<f64> = x.iter().zip(&window).map(|(a, w)| a * w).collect();
            let spec = plan.forward(&windowed);
            for (k, (&m, z)) in mags.iter().zip(&spec).enumerate() {
                assert!(
                    (m - z.abs()).abs() < 1e-9,
                    "n={n} bin {k}: {m} vs {}",
                    z.abs()
                );
            }
        }
    }

    #[test]
    fn realfft_production_length_uses_half_size_plan() {
        // 840 packs into a 420-point transform: Bluestein inner 1024
        // instead of the full-length 2048 — the halved-work claim.
        let packed = RealFft::new(840);
        assert_eq!(packed.len(), 840);
        assert!(packed.scratch_len() < Fft::new(840).scratch_len());
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn realfft_rejects_wrong_length() {
        RealFft::new(8).forward(&[0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn realfft_zero_length_plan_panics() {
        RealFft::new(0);
    }

    #[test]
    #[should_panic(expected = "scratch length")]
    fn realfft_rejects_short_scratch() {
        let plan = RealFft::new(840);
        let x = vec![0.0; 840];
        let mut out = vec![Complex64::ZERO; 840];
        plan.forward_into(&x, &mut out, &mut []);
    }

    #[test]
    fn bin_frequency_round_trips() {
        for k in [0usize, 1, 50, 350, 399] {
            let f = bin_frequency(k, 840, 20_160.0);
            assert_eq!(frequency_bin(f, 840, 20_160.0), k);
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn forward_rejects_wrong_length() {
        Fft::new(8).forward(&[Complex64::ZERO; 7]);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_length_plan_panics() {
        Fft::new(0);
    }
}
