//! Discrete Fourier transforms.
//!
//! The pipeline's `dft` operator transforms 840-sample records (20.16 kHz,
//! 24 Hz bins), so an arbitrary-length transform is required. Three
//! implementations are provided:
//!
//! - an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths,
//! - Bluestein's chirp-z algorithm for all other lengths (it reduces an
//!   arbitrary-N DFT to a power-of-two circular convolution), and
//! - [`dft_naive`], an O(N²) reference used by tests.
//!
//! [`Fft`] plans a transform for one length and may be reused for every
//! record of that length; planning precomputes twiddle factors and, for
//! Bluestein, the convolution kernel.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// A planned forward/inverse DFT of a fixed length.
///
/// # Example
///
/// ```
/// use river_dsp::{Complex64, Fft};
///
/// let fft = Fft::new(8);
/// let x: Vec<Complex64> = (0..8).map(|i| Complex64::from_real(i as f64)).collect();
/// let spectrum = fft.forward(&x);
/// let back = fft.inverse(&spectrum);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    plan: Plan,
}

#[derive(Debug, Clone)]
enum Plan {
    /// Radix-2 FFT: bit-reversal permutation plus precomputed twiddles.
    Radix2 { twiddles: Vec<Complex64> },
    /// Bluestein chirp-z: `a_k = x_k * c_k` convolved with `b`, sized `m`.
    Bluestein {
        m: usize,
        inner: Box<Fft>,
        /// Chirp factors `exp(-i*pi*k^2/n)` for k in 0..n.
        chirp: Vec<Complex64>,
        /// Forward transform of the convolution kernel, length `m`.
        kernel_fft: Vec<Complex64>,
    },
}

impl Fft {
    /// Plans a transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be non-zero");
        if n.is_power_of_two() {
            let twiddles = (0..n / 2)
                .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            Fft {
                n,
                plan: Plan::Radix2 { twiddles },
            }
        } else {
            // Bluestein: convolution length must be >= 2n-1 and power of two.
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(Fft::new(m));
            let chirp: Vec<Complex64> = (0..n)
                .map(|k| {
                    // k^2 mod 2n keeps the argument small for numerical stability.
                    let k2 = (k as u128 * k as u128) % (2 * n as u128);
                    Complex64::cis(-PI * k2 as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![Complex64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for k in 1..n {
                let c = chirp[k].conj();
                kernel[k] = c;
                kernel[m - k] = c;
            }
            let kernel_fft = inner.forward(&kernel);
            Fft {
                n,
                plan: Plan::Bluestein {
                    m,
                    inner,
                    chirp,
                    kernel_fft,
                },
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Computes the forward DFT: `X_k = sum_j x_j e^{-2πi jk/N}`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let mut buf = input.to_vec();
        self.forward_in_place(&mut buf);
        buf
    }

    /// Computes the forward DFT in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward_in_place(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan");
        match &self.plan {
            Plan::Radix2 { twiddles } => radix2_in_place(buf, twiddles),
            Plan::Bluestein {
                m,
                inner,
                chirp,
                kernel_fft,
            } => {
                let n = self.n;
                let mut a = vec![Complex64::ZERO; *m];
                for k in 0..n {
                    a[k] = buf[k] * chirp[k];
                }
                inner.forward_in_place(&mut a);
                for (ak, bk) in a.iter_mut().zip(kernel_fft.iter()) {
                    *ak *= *bk;
                }
                inner.inverse_in_place(&mut a);
                for k in 0..n {
                    buf[k] = a[k] * chirp[k];
                }
            }
        }
    }

    /// Computes the (normalized) inverse DFT.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let mut buf = input.to_vec();
        self.inverse_in_place(&mut buf);
        buf
    }

    /// Computes the (normalized) inverse DFT in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse_in_place(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan");
        // IDFT(x) = conj(DFT(conj(x))) / N
        for z in buf.iter_mut() {
            *z = z.conj();
        }
        self.forward_in_place(buf);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }

    /// Transforms a real-valued record, returning the full complex spectrum.
    ///
    /// This is the operation performed by the pipeline's `float2cplx` +
    /// `dft` operator pair.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward_real(&self, input: &[f64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
        self.forward(&buf)
    }
}

/// Iterative radix-2 Cooley–Tukey, decimation in time.
fn radix2_in_place(buf: &mut [Complex64], twiddles: &[Complex64]) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * step];
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
            }
        }
        len *= 2;
    }
}

/// Reference O(N²) DFT used to validate the fast paths.
///
/// # Example
///
/// ```
/// use river_dsp::fft::{dft_naive, Fft};
/// use river_dsp::Complex64;
///
/// let x: Vec<Complex64> = (0..12).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
/// let fast = Fft::new(12).forward(&x);
/// let slow = dft_naive(&x);
/// for (a, b) in fast.iter().zip(&slow) {
///     assert!((*a - *b).abs() < 1e-8);
/// }
/// ```
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| input[j] * Complex64::cis(-2.0 * PI * (j * k) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// The frequency in Hz of DFT bin `k` for a transform of `n` samples at
/// `sample_rate` Hz.
///
/// ```
/// use river_dsp::fft::bin_frequency;
/// // Production geometry: 840 samples at 20.16 kHz -> 24 Hz bins.
/// assert_eq!(bin_frequency(50, 840, 20_160.0), 1_200.0);
/// assert_eq!(bin_frequency(400, 840, 20_160.0), 9_600.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    k as f64 * sample_rate / n as f64
}

/// The DFT bin index whose center frequency is closest to `freq` Hz.
///
/// ```
/// use river_dsp::fft::frequency_bin;
/// assert_eq!(frequency_bin(1_200.0, 840, 20_160.0), 50);
/// ```
pub fn frequency_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    ((freq * n as f64 / sample_rate).round() as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x} vs {y} (|diff|={})",
                (*x - *y).abs()
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[0] = Complex64::ONE;
        v
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        for &n in &[1usize, 2, 4, 8, 64, 700, 31] {
            let fft = Fft::new(n);
            let spec = fft.forward(&impulse(n));
            for z in &spec {
                assert!((*z - Complex64::ONE).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let n = 128;
        let fft = Fft::new(n);
        let x = vec![Complex64::ONE; n];
        let spec = fft.forward(&x);
        assert!((spec[0] - Complex64::from_real(n as f64)).abs() < 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 700;
        let fft = Fft::new(n);
        let k0 = 50; // bin 50 of a 700-point transform
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft.forward_real(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        // Energy should be at bins k0 and n-k0 only.
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-6);
        assert!((mags[n - k0] - n as f64 / 2.0).abs() < 1e-6);
        for (k, &m) in mags.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(m < 1e-6, "leak at bin {k}: {m}");
            }
        }
    }

    #[test]
    fn radix2_matches_naive() {
        let n = 64;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_spectra_close(&Fft::new(n).forward(&x), &dft_naive(&x), 1e-8);
    }

    #[test]
    fn bluestein_matches_naive_for_awkward_lengths() {
        for &n in &[3usize, 5, 7, 12, 100, 175, 700] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
                .collect();
            assert_spectra_close(&Fft::new(n).forward(&x), &dft_naive(&x), 1e-7);
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for &n in &[8usize, 100, 700, 31] {
            let fft = Fft::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.1).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let back = fft.inverse(&fft.forward(&x));
            assert_spectra_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 100;
        let fft = Fft::new(n);
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::from_real(i as f64)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft.forward(&a);
        let fb = fft.forward(&b);
        let fsum = fft.forward(&sum);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_spectra_close(&fsum, &expected, 1e-8);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 700;
        let fft = Fft::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.31).sin(), 0.0))
            .collect();
        let spec = fft.forward(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn conjugate_symmetry_for_real_input() {
        let n = 700;
        let fft = Fft::new(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let spec = fft.forward_real(&x);
        for k in 1..n {
            assert!((spec[k] - spec[n - k].conj()).abs() < 1e-8);
        }
    }

    #[test]
    fn bin_frequency_round_trips() {
        for k in [0usize, 1, 50, 350, 399] {
            let f = bin_frequency(k, 840, 20_160.0);
            assert_eq!(frequency_bin(f, 840, 20_160.0), k);
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn forward_rejects_wrong_length() {
        Fft::new(8).forward(&[Complex64::ZERO; 7]);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_length_plan_panics() {
        Fft::new(0);
    }
}
