//! Biquad IIR filters (RBJ audio EQ cookbook forms).
//!
//! The synthetic workload generator shapes noise with these filters: wind
//! is brown-ish noise (cascaded low-pass), the "human activity" band is
//! low-frequency band-passed noise, and bird syllables are band-limited.

use std::f64::consts::PI;

/// A second-order IIR filter section in direct form I.
///
/// # Example
///
/// ```
/// use river_dsp::filter::Biquad;
///
/// let mut lp = Biquad::low_pass(1_000.0, 20_160.0, std::f64::consts::FRAC_1_SQRT_2);
/// let out = lp.process(0.5);
/// assert!(out.is_finite());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Builds a filter from normalized coefficients (a0 already divided
    /// out).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    fn from_rbj(b0: f64, b1: f64, b2: f64, a0: f64, a1: f64, a2: f64) -> Self {
        Self::from_coefficients(b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0)
    }

    /// Low-pass filter with cutoff `fc` Hz at `fs` Hz sample rate and
    /// quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs / 2` and `q > 0`.
    pub fn low_pass(fc: f64, fs: f64, q: f64) -> Self {
        let (_sin, cos, alpha) = rbj_prelude(fc, fs, q);
        let b1 = 1.0 - cos;
        let b0 = b1 / 2.0;
        Self::from_rbj(b0, b1, b0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
    }

    /// High-pass filter with cutoff `fc` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs / 2` and `q > 0`.
    pub fn high_pass(fc: f64, fs: f64, q: f64) -> Self {
        let (_sin, cos, alpha) = rbj_prelude(fc, fs, q);
        let b1 = -(1.0 + cos);
        let b0 = f64::midpoint(1.0, cos);
        Self::from_rbj(b0, b1, b0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
    }

    /// Band-pass filter (constant peak gain) centered at `fc` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs / 2` and `q > 0`.
    pub fn band_pass(fc: f64, fs: f64, q: f64) -> Self {
        let (_sin, cos, alpha) = rbj_prelude(fc, fs, q);
        Self::from_rbj(alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a whole buffer in place.
    pub fn process_buffer(&mut self, samples: &mut [f64]) {
        for s in samples.iter_mut() {
            *s = self.process(*s);
        }
    }

    /// Clears filter memory.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

fn rbj_prelude(fc: f64, fs: f64, q: f64) -> (f64, f64, f64) {
    assert!(fc > 0.0 && fc < fs / 2.0, "cutoff must be in (0, fs/2)");
    assert!(q > 0.0, "q must be positive");
    let w0 = 2.0 * PI * fc / fs;
    let sin = w0.sin();
    let cos = w0.cos();
    let alpha = sin / (2.0 * q);
    (sin, cos, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::rms;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    /// Measure steady-state gain of a filter at a frequency (skipping the
    /// transient).
    fn gain_at(mut f: Biquad, freq: f64, fs: f64) -> f64 {
        let x = tone(freq, fs, 8_000);
        let y: Vec<f64> = x.iter().map(|&s| f.process(s)).collect();
        rms(&y[4_000..]) / rms(&x[4_000..])
    }

    const FS: f64 = 20_160.0;
    const Q: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn low_pass_passes_low_blocks_high() {
        let lp = Biquad::low_pass(1_000.0, FS, Q);
        assert!(gain_at(lp, 100.0, FS) > 0.95);
        assert!(gain_at(lp, 6_000.0, FS) < 0.1);
    }

    #[test]
    fn high_pass_blocks_low_passes_high() {
        let hp = Biquad::high_pass(1_000.0, FS, Q);
        assert!(gain_at(hp, 100.0, FS) < 0.1);
        assert!(gain_at(hp, 6_000.0, FS) > 0.9);
    }

    #[test]
    fn band_pass_peaks_at_center() {
        let bp = Biquad::band_pass(2_000.0, FS, 2.0);
        let center = gain_at(bp, 2_000.0, FS);
        let below = gain_at(bp, 300.0, FS);
        let above = gain_at(bp, 7_500.0, FS);
        assert!(center > 0.9, "center gain {center}");
        assert!(below < 0.2, "below gain {below}");
        assert!(above < 0.35, "above gain {above}");
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Biquad::low_pass(500.0, FS, Q);
        for i in 0..100 {
            f.process((i as f64).sin());
        }
        f.reset();
        // After reset, a zero input must produce zero output.
        assert_eq!(f.process(0.0), 0.0);
    }

    #[test]
    fn process_buffer_matches_sample_loop() {
        let mut a = Biquad::band_pass(1_500.0, FS, 1.0);
        let mut b = a;
        let x = tone(1_500.0, FS, 256);
        let ys: Vec<f64> = x.iter().map(|&s| a.process(s)).collect();
        let mut buf = x.clone();
        b.process_buffer(&mut buf);
        assert_eq!(ys, buf);
    }

    #[test]
    fn stable_for_long_runs() {
        let mut f = Biquad::low_pass(4_000.0, FS, Q);
        let mut max = 0.0f64;
        for i in 0..100_000 {
            let y = f.process(((i % 97) as f64 / 97.0) - 0.5);
            max = max.max(y.abs());
        }
        assert!(max < 10.0, "unstable: {max}");
    }

    #[test]
    #[should_panic(expected = "cutoff must be in")]
    fn rejects_cutoff_above_nyquist() {
        Biquad::low_pass(11_000.0, FS, Q);
    }
}
