//! Goertzel algorithm: single-bin DFT magnitude.
//!
//! Cheaper than a full FFT when only a few frequencies matter — used by
//! tests and by the synthetic-workload validator to confirm that a
//! species' syllables carry energy at the intended frequencies.

use std::f64::consts::PI;

/// Computes the DFT magnitude of `samples` at frequency `freq` Hz given
/// sample rate `fs` Hz, using the Goertzel recurrence.
///
/// The result matches `|DFT bin|` when `freq` falls exactly on a bin
/// center for `samples.len()` points.
///
/// # Panics
///
/// Panics if `fs <= 0`.
///
/// # Example
///
/// ```
/// use river_dsp::goertzel::goertzel_magnitude;
///
/// let fs = 1_000.0;
/// let samples: Vec<f64> = (0..1_000)
///     .map(|i| (2.0 * std::f64::consts::PI * 100.0 * i as f64 / fs).sin())
///     .collect();
/// let at_tone = goertzel_magnitude(&samples, 100.0, fs);
/// let off_tone = goertzel_magnitude(&samples, 300.0, fs);
/// assert!(at_tone > 100.0 * off_tone);
/// ```
pub fn goertzel_magnitude(samples: &[f64], freq: f64, fs: f64) -> f64 {
    assert!(fs > 0.0, "sample rate must be positive");
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len() as f64;
    // Use the real target frequency rather than rounding to a bin; for
    // on-bin frequencies this is identical to the classic integer-k form.
    let w = 2.0 * PI * freq / fs;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let real = s_prev - s_prev2 * w.cos();
    let imag = s_prev2 * w.sin();
    let _ = n;
    (real * real + imag * imag).sqrt()
}

/// Relative band energy: the summed Goertzel magnitude over `freqs`
/// divided by the total signal RMS; a quick detector for "is there energy
/// near these frequencies".
pub fn band_presence(samples: &[f64], freqs: &[f64], fs: f64) -> f64 {
    if samples.is_empty() || freqs.is_empty() {
        return 0.0;
    }
    let rms = crate::signal::rms(samples);
    if rms == 0.0 {
        return 0.0;
    }
    let total: f64 = freqs
        .iter()
        .map(|&f| goertzel_magnitude(samples, f, fs))
        .sum();
    total / (rms * samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::RealFft;
    use std::f64::consts::PI;

    #[test]
    fn matches_fft_bin_magnitude() {
        let n = 512;
        let fs = 512.0;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * PI * 40.0 * i as f64 / fs).sin()
                    + 0.3 * (2.0 * PI * 100.0 * i as f64 / fs).cos()
            })
            .collect();
        let spec = RealFft::new(n).forward(&x);
        for &k in &[40usize, 100, 7] {
            let g = goertzel_magnitude(&x, k as f64 * fs / n as f64, fs);
            let f = spec[k].abs();
            assert!((g - f).abs() < 1e-6, "bin {k}: goertzel {g} vs fft {f}");
        }
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(goertzel_magnitude(&[], 100.0, 1_000.0), 0.0);
    }

    #[test]
    fn band_presence_detects_tone() {
        let fs = 20_160.0;
        let x: Vec<f64> = (0..4_096)
            .map(|i| (2.0 * PI * 2_400.0 * i as f64 / fs).sin())
            .collect();
        let present = band_presence(&x, &[2_400.0], fs);
        let absent = band_presence(&x, &[7_000.0], fs);
        assert!(present > 10.0 * absent, "{present} vs {absent}");
    }

    #[test]
    fn band_presence_zero_for_silence() {
        assert_eq!(band_presence(&[0.0; 128], &[100.0], 1_000.0), 0.0);
    }
}
