//! # river-dsp — signal-processing substrate
//!
//! This crate provides the digital signal processing primitives that the
//! acoustic ensemble-extraction pipeline of Kasten, McKinley & Gage
//! (*Automated Ensemble Extraction and Analysis of Acoustic Data Streams*,
//! DEPSA/ICDCS 2007) is built on:
//!
//! - [`Complex64`] arithmetic and the [`fft`] module (radix-2 FFT, Bluestein
//!   for arbitrary lengths, and a naive reference DFT) used by the paper's
//!   `dft` operator;
//! - [`window`] functions, most importantly the **Welch window** applied by
//!   the `welchwindow` operator to minimize record edge effects;
//! - [`wav`], a from-scratch RIFF/WAVE codec standing in for the field
//!   stations' clip format (`wav2rec` operator);
//! - [`spectrogram`], the STFT used to render the paper's Figure 2/3
//!   spectrograms;
//! - [`stats`], streaming statistics (Welford, sliding windows, moving
//!   averages) that the adaptive `trigger` operator and the anomaly
//!   smoother rely on;
//! - [`filter`] and [`resample`] utilities used by the synthetic workload
//!   generator.
//!
//! Everything is implemented from scratch: no FFT, audio or statistics
//! crates are used.
//!
//! ## Example
//!
//! ```
//! use river_dsp::fft::Fft;
//! use river_dsp::Complex64;
//!
//! // Transform an 840-sample record (the pipeline's production record size).
//! let fft = Fft::new(840);
//! let time: Vec<Complex64> = (0..840)
//!     .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
//!     .collect();
//! let freq = fft.forward(&time);
//! assert_eq!(freq.len(), 840);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod resample;
pub mod signal;
pub mod spectrogram;
pub mod stats;
pub mod wav;
pub mod window;

pub use complex::Complex64;
pub use fft::{Fft, RealFft};
pub use spectrogram::{Spectrogram, SpectrogramConfig};
pub use stats::{MovingAverage, SlidingStats, Welford};
pub use wav::{WavError, WavReader, WavSpec, WavWriter};
pub use window::WindowKind;
