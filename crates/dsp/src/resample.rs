//! Linear-interpolation resampling.
//!
//! Field stations may deliver clips at different sample rates; the
//! pipeline resamples them to the production rate (20.16 kHz) before
//! ensemble extraction so that record geometry (700 samples = 1/24 s)
//! holds.

/// Resamples `input` from `from_rate` Hz to `to_rate` Hz using linear
/// interpolation.
///
/// Linear interpolation is adequate here because the signal of interest
/// (bird vocalizations at 1.2–9.6 kHz) is well below Nyquist at both the
/// source and destination rates used by the pipeline.
///
/// # Panics
///
/// Panics if either rate is not finite and positive.
///
/// # Example
///
/// ```
/// use river_dsp::resample::resample_linear;
///
/// let up = resample_linear(&[0.0, 1.0], 1.0, 2.0);
/// assert_eq!(up.len(), 4);
/// assert!((up[1] - 0.5).abs() < 1e-12);
/// ```
pub fn resample_linear(input: &[f64], from_rate: f64, to_rate: f64) -> Vec<f64> {
    assert!(
        from_rate.is_finite() && from_rate > 0.0,
        "from_rate must be positive"
    );
    assert!(
        to_rate.is_finite() && to_rate > 0.0,
        "to_rate must be positive"
    );
    if input.is_empty() {
        return Vec::new();
    }
    if (from_rate - to_rate).abs() < f64::EPSILON {
        return input.to_vec();
    }
    let ratio = from_rate / to_rate;
    let out_len = ((input.len() as f64) / ratio).floor() as usize;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let pos = i as f64 * ratio;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f64;
        let a = input[idx.min(input.len() - 1)];
        let b = input[(idx + 1).min(input.len() - 1)];
        out.push(a + (b - a) * frac);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_when_rates_match() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&x, 8_000.0, 8_000.0), x);
    }

    #[test]
    fn empty_input() {
        assert!(resample_linear(&[], 1.0, 2.0).is_empty());
    }

    #[test]
    fn output_length_scales_with_ratio() {
        let x = vec![0.0; 1_000];
        assert_eq!(resample_linear(&x, 22_050.0, 20_160.0).len(), 914);
        assert_eq!(resample_linear(&x, 8_000.0, 16_000.0).len(), 2_000);
    }

    #[test]
    fn preserves_tone_frequency() {
        // 400 Hz tone resampled 22.05k -> 16.8k must still be a 400 Hz tone.
        let from = 22_050.0;
        let to = 20_160.0;
        let n = 22_050;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 400.0 * i as f64 / from).sin())
            .collect();
        let y = resample_linear(&x, from, to);
        // Count zero crossings; a 400 Hz tone over 1 s has ~800.
        let crossings = y
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count();
        assert!((crossings as i64 - 800).abs() <= 2, "crossings {crossings}");
    }

    #[test]
    fn upsample_interpolates_midpoints() {
        let y = resample_linear(&[0.0, 2.0, 4.0], 1.0, 2.0);
        assert_eq!(y.len(), 6);
        assert!((y[1] - 1.0).abs() < 1e-12);
        assert!((y[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_rate() {
        resample_linear(&[0.0], 0.0, 1.0);
    }
}
