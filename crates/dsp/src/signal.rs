//! Whole-signal utilities: normalization, energy, and the oscillogram
//! rendering used in the paper's Figure 2.

/// Normalizes a signal the way the paper's oscillogram is drawn:
/// "normalized by subtracting the mean and scaling by the maximum
/// amplitude" (§2).
///
/// Returns all zeros for a constant (or empty) signal.
///
/// # Example
///
/// ```
/// use river_dsp::signal::normalize_oscillogram;
///
/// let v = normalize_oscillogram(&[1.0, 2.0, 3.0]);
/// assert_eq!(v, vec![-1.0, 0.0, 1.0]);
/// ```
pub fn normalize_oscillogram(samples: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let max_amp = samples
        .iter()
        .map(|&x| (x - mean).abs())
        .fold(0.0f64, f64::max);
    if max_amp == 0.0 {
        return vec![0.0; samples.len()];
    }
    samples.iter().map(|&x| (x - mean) / max_amp).collect()
}

/// Root-mean-square amplitude of a signal; `0.0` when empty.
///
/// ```
/// use river_dsp::signal::rms;
/// assert!((rms(&[3.0, -3.0, 3.0, -3.0]) - 3.0).abs() < 1e-12);
/// ```
pub fn rms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|&x| x * x).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Total energy (sum of squares) of a signal.
pub fn energy(samples: &[f64]) -> f64 {
    samples.iter().map(|&x| x * x).sum()
}

/// Peak absolute amplitude; `0.0` when empty.
pub fn peak(samples: &[f64]) -> f64 {
    samples.iter().map(|&x| x.abs()).fold(0.0, f64::max)
}

/// Scales a signal in place so its peak equals `target_peak`.
/// Constant-zero signals are left untouched.
pub fn normalize_peak(samples: &mut [f64], target_peak: f64) {
    let p = peak(samples);
    if p == 0.0 {
        return;
    }
    let k = target_peak / p;
    for s in samples.iter_mut() {
        *s *= k;
    }
}

/// Mixes `src` into `dst` starting at sample `offset`, scaled by `gain`.
/// Samples extending past `dst` are dropped.
///
/// Used by the synthetic clip composer to place song bouts in ambient
/// noise beds.
pub fn mix_into(dst: &mut [f64], src: &[f64], offset: usize, gain: f64) {
    if offset >= dst.len() {
        return;
    }
    let n = src.len().min(dst.len() - offset);
    for i in 0..n {
        dst[offset + i] += src[i] * gain;
    }
}

/// Amplitude in decibels relative to full scale (1.0). Silent input maps
/// to `f64::NEG_INFINITY`.
pub fn dbfs(amplitude: f64) -> f64 {
    if amplitude <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * amplitude.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillogram_normalization_bounds() {
        let samples: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.1).sin() * 3.0 + 1.0)
            .collect();
        let norm = normalize_oscillogram(&samples);
        let max = norm.iter().copied().fold(f64::MIN, f64::max);
        let min = norm.iter().copied().fold(f64::MAX, f64::min);
        assert!(max <= 1.0 + 1e-12);
        assert!(min >= -1.0 - 1e-12);
        // Mean removed.
        let mean: f64 = norm.iter().sum::<f64>() / norm.len() as f64;
        assert!(mean.abs() < 1e-9);
        // Peak reaches exactly 1 in magnitude.
        assert!((max.max(-min) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oscillogram_constant_signal_is_zeros() {
        assert_eq!(normalize_oscillogram(&[5.0; 10]), vec![0.0; 10]);
    }

    #[test]
    fn oscillogram_empty() {
        assert!(normalize_oscillogram(&[]).is_empty());
    }

    #[test]
    fn rms_energy_peak_basics() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(energy(&[2.0, 2.0]), 8.0);
        assert_eq!(peak(&[-4.0, 3.0]), 4.0);
    }

    #[test]
    fn normalize_peak_scales() {
        let mut v = vec![0.5, -0.25];
        normalize_peak(&mut v, 1.0);
        assert_eq!(v, vec![1.0, -0.5]);
        let mut z = vec![0.0; 4];
        normalize_peak(&mut z, 1.0);
        assert_eq!(z, vec![0.0; 4]);
    }

    #[test]
    fn mix_into_clips_to_destination() {
        let mut dst = vec![0.0; 5];
        mix_into(&mut dst, &[1.0, 1.0, 1.0], 3, 0.5);
        assert_eq!(dst, vec![0.0, 0.0, 0.0, 0.5, 0.5]);
        // Offset beyond end is a no-op.
        mix_into(&mut dst, &[9.0], 10, 1.0);
        assert_eq!(dst.len(), 5);
    }

    #[test]
    fn mix_into_accumulates() {
        let mut dst = vec![1.0; 3];
        mix_into(&mut dst, &[1.0; 3], 0, 1.0);
        assert_eq!(dst, vec![2.0; 3]);
    }

    #[test]
    fn dbfs_reference_points() {
        assert!((dbfs(1.0) - 0.0).abs() < 1e-12);
        assert!((dbfs(0.5) + 6.0206).abs() < 1e-3);
        assert_eq!(dbfs(0.0), f64::NEG_INFINITY);
    }
}
