//! Short-time Fourier transform spectrograms.
//!
//! A spectrogram "depicts frequency on the vertical axis and time on the
//! horizontal axis; shading indicates the intensity of the signal at a
//! particular frequency and time" (paper §2, Figure 2). This module
//! computes the column data; rendering (ASCII or PGM) is provided for the
//! figure-regeneration binaries.

use crate::complex::Complex64;
use crate::fft::RealFft;
use crate::window::WindowKind;

/// Configuration for a spectrogram computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrogramConfig {
    /// Samples per analysis frame (the paper's record length, 840).
    pub frame_len: usize,
    /// Samples to advance between frames; `frame_len` for no overlap,
    /// `frame_len / 2` for the pipeline's resliced 50 % overlap.
    pub hop: usize,
    /// Window applied to each frame.
    pub window: WindowKind,
    /// Sample rate in Hz, used for axis labeling.
    pub sample_rate: f64,
}

impl SpectrogramConfig {
    /// The pipeline's production geometry: 840-sample frames at 20.16 kHz
    /// with a Welch window and 50 % overlap.
    pub fn production() -> Self {
        SpectrogramConfig {
            frame_len: 840,
            hop: 420,
            window: WindowKind::Welch,
            sample_rate: 20_160.0,
        }
    }
}

impl Default for SpectrogramConfig {
    fn default() -> Self {
        Self::production()
    }
}

/// A computed spectrogram: magnitude columns over time.
///
/// # Example
///
/// ```
/// use river_dsp::{Spectrogram, SpectrogramConfig};
/// use river_dsp::window::WindowKind;
///
/// let cfg = SpectrogramConfig {
///     frame_len: 128,
///     hop: 64,
///     window: WindowKind::Hann,
///     sample_rate: 1_000.0,
/// };
/// let samples: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.3).sin()).collect();
/// let spec = Spectrogram::compute(&samples, cfg);
/// assert_eq!(spec.bins(), 64); // one-sided spectrum
/// assert!(spec.columns() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Spectrogram {
    config: SpectrogramConfig,
    /// `columns x bins` magnitudes; column-major (each inner Vec is one
    /// time slice).
    data: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// Computes the one-sided magnitude spectrogram of `samples`.
    ///
    /// Trailing samples that do not fill a whole frame are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `config.frame_len == 0` or `config.hop == 0`.
    pub fn compute(samples: &[f64], config: SpectrogramConfig) -> Self {
        assert!(config.frame_len > 0, "frame_len must be non-zero");
        assert!(config.hop > 0, "hop must be non-zero");
        let fft = RealFft::new(config.frame_len);
        let coeffs = config.window.coefficients(config.frame_len);
        let bins = config.frame_len / 2;
        let mut data = Vec::new();
        let mut mags = vec![0.0; config.frame_len];
        let mut scratch = vec![Complex64::ZERO; fft.scratch_len()];
        let mut start = 0;
        while start + config.frame_len <= samples.len() {
            // Window, transform, and take magnitudes in one fused pass
            // over reused scratch — one frame's output Vec is the only
            // per-column allocation.
            fft.magnitudes_into(
                &samples[start..start + config.frame_len],
                Some(&coeffs),
                &mut mags,
                &mut scratch,
            );
            data.push(mags[..bins].to_vec());
            start += config.hop;
        }
        Spectrogram { config, data }
    }

    /// Number of time columns.
    pub fn columns(&self) -> usize {
        self.data.len()
    }

    /// Number of frequency bins per column (one-sided).
    pub fn bins(&self) -> usize {
        self.config.frame_len / 2
    }

    /// The configuration this spectrogram was computed with.
    pub fn config(&self) -> &SpectrogramConfig {
        &self.config
    }

    /// Magnitudes of time column `t` (length [`bins`](Self::bins)).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.columns()`.
    pub fn column(&self, t: usize) -> &[f64] {
        &self.data[t]
    }

    /// All columns, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<f64>> {
        self.data.iter()
    }

    /// Consumes the spectrogram, returning the raw column data.
    pub fn into_inner(self) -> Vec<Vec<f64>> {
        self.data
    }

    /// Frequency in Hz of bin `b`.
    pub fn bin_frequency(&self, b: usize) -> f64 {
        b as f64 * self.config.sample_rate / self.config.frame_len as f64
    }

    /// Time in seconds of the start of column `t`.
    pub fn column_time(&self, t: usize) -> f64 {
        (t * self.config.hop) as f64 / self.config.sample_rate
    }

    /// Returns a new spectrogram with each column reduced by a mapping
    /// function (e.g. PAA); the per-column bin count becomes
    /// `map(column).len()`.
    pub fn map_columns<F>(&self, mut map: F) -> Vec<Vec<f64>>
    where
        F: FnMut(&[f64]) -> Vec<f64>,
    {
        self.data.iter().map(|c| map(c)).collect()
    }

    /// The maximum magnitude across the whole spectrogram; `0.0` when
    /// empty.
    pub fn max_magnitude(&self) -> f64 {
        self.data
            .iter()
            .flat_map(|c| c.iter())
            .copied()
            .fold(0.0, f64::max)
    }

    /// Renders an ASCII-art view with `rows` frequency rows (downsampled,
    /// low frequencies at the bottom like the paper's figures) and one
    /// character per column, using a log-intensity ramp.
    pub fn render_ascii(&self, rows: usize) -> String {
        render_ascii(&self.data, rows)
    }
}

/// Renders arbitrary column data (e.g. a PAA-reduced spectrogram) as
/// ASCII art; `rows` output rows, low frequency at the bottom.
pub fn render_ascii(columns: &[Vec<f64>], rows: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    if columns.is_empty() || rows == 0 {
        return String::new();
    }
    let bins = columns[0].len();
    if bins == 0 {
        return String::new();
    }
    let max = columns
        .iter()
        .flat_map(|c| c.iter())
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::with_capacity((columns.len() + 1) * rows);
    for row in (0..rows).rev() {
        let lo = row * bins / rows;
        let hi = (((row + 1) * bins) / rows).max(lo + 1).min(bins);
        for col in columns {
            let band_max = col[lo..hi].iter().copied().fold(0.0, f64::max);
            // Log compression over ~4 decades.
            let norm = if band_max <= 0.0 {
                0.0
            } else {
                ((band_max / max).log10() / 4.0 + 1.0).clamp(0.0, 1.0)
            };
            let idx = ((norm * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Serializes column data as a binary PGM (P5) grayscale image, low
/// frequencies at the bottom; suitable for viewing the paper's figures.
pub fn render_pgm(columns: &[Vec<f64>]) -> Vec<u8> {
    let width = columns.len();
    let height = columns.first().map_or(0, Vec::len);
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    if width == 0 || height == 0 {
        return out;
    }
    let max = columns
        .iter()
        .flat_map(|c| c.iter())
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    for row in (0..height).rev() {
        for col in columns {
            let v = col.get(row).copied().unwrap_or(0.0);
            let norm = if v <= 0.0 {
                0.0
            } else {
                ((v / max).log10() / 4.0 + 1.0).clamp(0.0, 1.0)
            };
            out.push((norm * 255.0) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / rate).sin())
            .collect()
    }

    #[test]
    fn tone_energy_appears_in_correct_bin() {
        let cfg = SpectrogramConfig {
            frame_len: 256,
            hop: 256,
            window: WindowKind::Hann,
            sample_rate: 1_024.0,
        };
        // 128 Hz at 1024 Hz rate -> bin 32 of 256.
        let samples = tone(128.0, 1_024.0, 2_048);
        let spec = Spectrogram::compute(&samples, cfg);
        for t in 0..spec.columns() {
            let col = spec.column(t);
            let peak_bin = col
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak_bin, 32, "column {t}");
        }
    }

    #[test]
    fn column_count_respects_hop() {
        let cfg = SpectrogramConfig {
            frame_len: 100,
            hop: 50,
            window: WindowKind::Welch,
            sample_rate: 1_000.0,
        };
        let spec = Spectrogram::compute(&vec![0.0; 1_000], cfg);
        // Frames start at 0,50,...,900 -> 19 columns.
        assert_eq!(spec.columns(), 19);
        assert_eq!(spec.bins(), 50);
    }

    #[test]
    fn short_input_yields_empty() {
        let spec = Spectrogram::compute(&[0.0; 10], SpectrogramConfig::production());
        assert_eq!(spec.columns(), 0);
        assert_eq!(spec.max_magnitude(), 0.0);
    }

    #[test]
    fn axis_mapping() {
        let spec = Spectrogram::compute(&vec![0.0; 1400], SpectrogramConfig::production());
        assert_eq!(spec.bin_frequency(50), 1_200.0);
        assert!((spec.column_time(2) - 840.0 / 20_160.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_shape() {
        let cfg = SpectrogramConfig {
            frame_len: 64,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 640.0,
        };
        let samples = tone(100.0, 640.0, 640);
        let spec = Spectrogram::compute(&samples, cfg);
        let art = spec.render_ascii(8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        for l in &lines {
            assert_eq!(l.len(), spec.columns());
        }
    }

    #[test]
    fn ascii_render_empty_input() {
        assert_eq!(render_ascii(&[], 8), "");
        let spec = Spectrogram::compute(&[0.0; 10], SpectrogramConfig::production());
        assert_eq!(spec.render_ascii(0), "");
    }

    #[test]
    fn pgm_header_and_size() {
        let columns = vec![vec![0.0, 1.0], vec![0.5, 0.25], vec![1.0, 0.0]];
        let pgm = render_pgm(&columns);
        let header = b"P5\n3 2\n255\n";
        assert_eq!(&pgm[..header.len()], header);
        assert_eq!(pgm.len(), header.len() + 6);
    }

    #[test]
    fn map_columns_applies_reduction() {
        let cfg = SpectrogramConfig {
            frame_len: 8,
            hop: 8,
            window: WindowKind::Rectangular,
            sample_rate: 8.0,
        };
        let spec = Spectrogram::compute(&[1.0; 32], cfg);
        let halved = spec.map_columns(|c| c.iter().step_by(2).copied().collect());
        assert_eq!(halved.len(), spec.columns());
        assert_eq!(halved[0].len(), spec.bins() / 2);
    }

    #[test]
    fn silence_is_all_zero_columns() {
        let spec = Spectrogram::compute(&vec![0.0; 2_100], SpectrogramConfig::production());
        assert!(spec.columns() >= 1);
        assert_eq!(spec.max_magnitude(), 0.0);
    }
}
