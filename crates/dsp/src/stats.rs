//! Streaming statistics.
//!
//! The adaptive `trigger` operator "incrementally computes an estimate of
//! the mean anomaly score, μ₀, for values when the trigger value is 0"
//! (paper §3) — that estimator is [`Welford`]. The `saxanomaly` operator
//! smooths scores with a moving average over 2250 samples — that is
//! [`MovingAverage`]. [`SlidingStats`] provides exact windowed mean and
//! variance for the streaming Z-normalization used by SAX symbolization.

use std::collections::VecDeque;

/// Welford's online algorithm for mean and variance over an unbounded
/// stream.
///
/// Numerically stable; O(1) per update.
///
/// # Example
///
/// ```
/// use river_dsp::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); `0.0` for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another estimator into this one (parallel Welford/Chan).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Exact mean and variance over a fixed-size sliding window.
///
/// Maintains running sums over a ring buffer: O(1) per sample, O(window)
/// memory. Used for streaming Z-normalization in the SAX symbolizer.
///
/// # Example
///
/// ```
/// use river_dsp::SlidingStats;
///
/// let mut s = SlidingStats::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// // Window now holds [2, 3, 4].
/// assert_eq!(s.mean(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingStats {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    sum_sq: f64,
}

impl SlidingStats {
    /// Creates a window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        SlidingStats {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a sample, evicting the oldest if the window is full. Returns
    /// the evicted sample, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("window non-empty");
            self.sum -= old;
            self.sum_sq -= old * old;
            Some(old)
        } else {
            None
        };
        self.window.push_back(x);
        self.sum += x;
        self.sum_sq += x * x;
        evicted
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if no samples are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Returns `true` when the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the samples in the window; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Population variance of the window, clamped at zero against rounding.
    pub fn population_variance(&self) -> f64 {
        let n = self.window.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / n as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation of the window.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Iterates over the samples currently in the window, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.window.iter()
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }
}

/// A simple moving average over a fixed window — the smoother applied to
/// SAX anomaly scores (2250 samples in the paper's experiments).
///
/// # Example
///
/// ```
/// use river_dsp::MovingAverage;
///
/// let mut ma = MovingAverage::new(2);
/// assert_eq!(ma.push(1.0), 1.0);       // [1]
/// assert_eq!(ma.push(3.0), 2.0);       // [1,3]
/// assert_eq!(ma.push(5.0), 4.0);       // [3,5]
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    stats: SlidingStats,
}

impl MovingAverage {
    /// Creates a moving average over `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        MovingAverage {
            stats: SlidingStats::new(window),
        }
    }

    /// Pushes a sample and returns the current mean. Until the window
    /// fills, the mean is over the samples seen so far (warm-up behaviour).
    pub fn push(&mut self, x: f64) -> f64 {
        self.stats.push(x);
        self.stats.mean()
    }

    /// The current mean without pushing.
    pub fn current(&self) -> f64 {
        self.stats.mean()
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Returns `true` if no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.stats.capacity()
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.stats.clear();
    }
}

/// Exponentially weighted moving average, provided as a cheaper alternative
/// smoother for ablation benches.
///
/// # Example
///
/// ```
/// use river_dsp::stats::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.push(0.0);
/// assert_eq!(e.push(4.0), 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        Ewma { alpha, value: None }
    }

    /// Pushes a sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average, if any sample has been pushed.
    pub fn current(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn welford_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var) = batch_mean_var(&xs);
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn welford_single_observation() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.77).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..200] {
            left.push(x);
        }
        for &x in &xs[200..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut b = Welford::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn welford_reset() {
        let mut w = Welford::new();
        w.push(5.0);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn sliding_stats_matches_batch_over_window() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.9).cos() * 3.0).collect();
        let w = 16;
        let mut s = SlidingStats::new(w);
        for (i, &x) in xs.iter().enumerate() {
            s.push(x);
            let lo = (i + 1).saturating_sub(w);
            let window = &xs[lo..=i];
            let (mean, var) = batch_mean_var(window);
            assert!((s.mean() - mean).abs() < 1e-9, "at {i}");
            assert!((s.population_variance() - var).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn sliding_stats_eviction_order() {
        let mut s = SlidingStats::new(2);
        assert_eq!(s.push(1.0), None);
        assert_eq!(s.push(2.0), None);
        assert_eq!(s.push(3.0), Some(1.0));
        assert_eq!(s.push(4.0), Some(2.0));
        assert!(s.is_full());
    }

    #[test]
    fn sliding_stats_variance_never_negative() {
        // Constant stream with rounding pressure.
        let mut s = SlidingStats::new(8);
        for _ in 0..100 {
            s.push(1e9 + 0.1);
            assert!(s.population_variance() >= 0.0);
        }
    }

    #[test]
    fn sliding_stats_clear() {
        let mut s = SlidingStats::new(4);
        s.push(1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn moving_average_warmup_then_steady() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(6.0), 4.5);
        assert_eq!(ma.push(9.0), 6.0);
        assert_eq!(ma.push(12.0), 9.0); // [6,9,12]
        assert_eq!(ma.current(), 9.0);
        assert_eq!(ma.window(), 3);
    }

    #[test]
    fn moving_average_constant_signal() {
        let mut ma = MovingAverage::new(100);
        for _ in 0..500 {
            assert_eq!(ma.push(7.0), 7.0);
        }
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.push(5.0);
        }
        assert!((e.current().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn sliding_stats_rejects_zero_capacity() {
        SlidingStats::new(0);
    }
}
