//! RIFF/WAVE audio codec, implemented from scratch.
//!
//! The field stations of the paper stream 30-second WAV clips; the
//! `wav2rec` operator "encapsulates acoustic data (WAV format in this
//! case) in pipeline records" (§3). This module provides the WAV parsing
//! and serialization that operator is built on.
//!
//! Supported formats: PCM unsigned 8-bit, PCM signed 16-bit and 32-bit,
//! and IEEE float 32-bit; any channel count and sample rate. Samples are
//! surfaced as `f64` in `[-1, 1]`.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Sample encoding of a WAV stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleFormat {
    /// Unsigned 8-bit PCM (format tag 1, 8 bits).
    Pcm8,
    /// Signed little-endian 16-bit PCM (format tag 1, 16 bits).
    Pcm16,
    /// Signed little-endian 32-bit PCM (format tag 1, 32 bits).
    Pcm32,
    /// IEEE 754 little-endian 32-bit float (format tag 3).
    Float32,
}

impl SampleFormat {
    /// Bytes per sample for this encoding.
    pub fn bytes_per_sample(self) -> usize {
        match self {
            SampleFormat::Pcm8 => 1,
            SampleFormat::Pcm16 => 2,
            SampleFormat::Pcm32 | SampleFormat::Float32 => 4,
        }
    }

    fn bits_per_sample(self) -> u16 {
        (self.bytes_per_sample() * 8) as u16
    }

    fn format_tag(self) -> u16 {
        match self {
            SampleFormat::Float32 => 3,
            _ => 1,
        }
    }
}

/// Stream parameters for a WAV file.
///
/// # Example
///
/// ```
/// use river_dsp::wav::{SampleFormat, WavSpec};
///
/// // The pipeline's production geometry: 20.16 kHz mono PCM16.
/// let spec = WavSpec::mono_pcm16(20_160);
/// assert_eq!(spec.channels, 1);
/// assert_eq!(spec.sample_format, SampleFormat::Pcm16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WavSpec {
    /// Number of interleaved channels.
    pub channels: u16,
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Sample encoding.
    pub sample_format: SampleFormat,
}

impl WavSpec {
    /// Convenience constructor for mono 16-bit PCM.
    pub fn mono_pcm16(sample_rate: u32) -> Self {
        WavSpec {
            channels: 1,
            sample_rate,
            sample_format: SampleFormat::Pcm16,
        }
    }

    /// Bytes per frame (one sample for every channel).
    pub fn bytes_per_frame(&self) -> usize {
        self.sample_format.bytes_per_sample() * self.channels as usize
    }
}

/// Errors produced by WAV parsing or serialization.
#[derive(Debug)]
pub enum WavError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a RIFF/WAVE container or is structurally invalid.
    Malformed(String),
    /// The container is valid but uses an encoding this codec does not
    /// support.
    Unsupported(String),
}

impl fmt::Display for WavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WavError::Io(e) => write!(f, "i/o error: {e}"),
            WavError::Malformed(m) => write!(f, "malformed wav: {m}"),
            WavError::Unsupported(m) => write!(f, "unsupported wav: {m}"),
        }
    }
}

impl Error for WavError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WavError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WavError {
    fn from(e: io::Error) -> Self {
        WavError::Io(e)
    }
}

/// Decodes WAV data from any [`Read`] source.
///
/// A `&mut R` may be passed wherever `R: Read` is required.
///
/// # Example
///
/// ```
/// # use river_dsp::wav::{WavReader, WavSpec, WavWriter};
/// # fn main() -> Result<(), river_dsp::WavError> {
/// let spec = WavSpec::mono_pcm16(20_160);
/// let samples = vec![0.0, 0.25, -0.25, 1.0, -1.0];
/// let mut buf = Vec::new();
/// WavWriter::write(&mut buf, spec, &samples)?;
///
/// let decoded = WavReader::read(buf.as_slice())?;
/// assert_eq!(decoded.spec, spec);
/// assert_eq!(decoded.samples.len(), samples.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WavReader;

/// A fully decoded WAV stream: parameters plus interleaved samples in
/// `[-1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WavData {
    /// Stream parameters.
    pub spec: WavSpec,
    /// Interleaved samples normalized to `[-1, 1]`.
    pub samples: Vec<f64>,
}

impl WavData {
    /// Mixes interleaved channels down to mono by averaging.
    pub fn to_mono(&self) -> Vec<f64> {
        let ch = self.spec.channels as usize;
        if ch <= 1 {
            return self.samples.clone();
        }
        self.samples
            .chunks(ch)
            .map(|frame| frame.iter().sum::<f64>() / frame.len() as f64)
            .collect()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        let frames = self.samples.len() / self.spec.channels.max(1) as usize;
        frames as f64 / self.spec.sample_rate as f64
    }
}

fn read_exact_or_malformed<R: Read>(mut r: R, buf: &mut [u8], what: &str) -> Result<(), WavError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => {
            WavError::Malformed(format!("truncated while reading {what}"))
        }
        _ => WavError::Io(e),
    })
}

fn u16_le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

impl WavReader {
    /// Reads and decodes an entire WAV stream.
    ///
    /// A `&mut R` may be passed for `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`WavError::Malformed`] for structural problems,
    /// [`WavError::Unsupported`] for valid-but-unsupported encodings, and
    /// [`WavError::Io`] for I/O failures.
    pub fn read<R: Read>(mut reader: R) -> Result<WavData, WavError> {
        let mut header = [0u8; 12];
        read_exact_or_malformed(&mut reader, &mut header, "RIFF header")?;
        if &header[0..4] != b"RIFF" {
            return Err(WavError::Malformed("missing RIFF magic".into()));
        }
        if &header[8..12] != b"WAVE" {
            return Err(WavError::Malformed("missing WAVE form type".into()));
        }

        let mut spec: Option<WavSpec> = None;
        let mut data: Option<Vec<u8>> = None;

        // Walk chunks until we have both fmt and data.
        loop {
            let mut chunk_header = [0u8; 8];
            match reader.read_exact(&mut chunk_header) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(WavError::Io(e)),
            }
            let id = &chunk_header[0..4];
            let size = u32_le(&chunk_header[4..8]) as usize;
            match id {
                b"fmt " => {
                    if size < 16 {
                        return Err(WavError::Malformed("fmt chunk too small".into()));
                    }
                    let mut fmt = vec![0u8; size];
                    read_exact_or_malformed(&mut reader, &mut fmt, "fmt chunk")?;
                    let format_tag = u16_le(&fmt[0..2]);
                    let channels = u16_le(&fmt[2..4]);
                    let sample_rate = u32_le(&fmt[4..8]);
                    let bits = u16_le(&fmt[14..16]);
                    let sample_format = match (format_tag, bits) {
                        (1, 8) => SampleFormat::Pcm8,
                        (1, 16) => SampleFormat::Pcm16,
                        (1, 32) => SampleFormat::Pcm32,
                        (3, 32) => SampleFormat::Float32,
                        (tag, bits) => {
                            return Err(WavError::Unsupported(format!(
                                "format tag {tag} with {bits} bits"
                            )))
                        }
                    };
                    if channels == 0 {
                        return Err(WavError::Malformed("zero channels".into()));
                    }
                    if sample_rate == 0 {
                        return Err(WavError::Malformed("zero sample rate".into()));
                    }
                    spec = Some(WavSpec {
                        channels,
                        sample_rate,
                        sample_format,
                    });
                }
                b"data" => {
                    let mut bytes = vec![0u8; size];
                    read_exact_or_malformed(&mut reader, &mut bytes, "data chunk")?;
                    data = Some(bytes);
                    // Chunks are word-aligned; consume pad byte if present.
                    if size % 2 == 1 {
                        let mut pad = [0u8; 1];
                        let _ = reader.read_exact(&mut pad);
                    }
                }
                _ => {
                    // Skip unknown chunk (LIST, fact, cue, ...), honoring padding.
                    let skip = size + (size % 2);
                    let mut remaining = skip;
                    let mut scratch = [0u8; 512];
                    while remaining > 0 {
                        let take = remaining.min(scratch.len());
                        read_exact_or_malformed(&mut reader, &mut scratch[..take], "chunk body")?;
                        remaining -= take;
                    }
                }
            }
            if spec.is_some() && data.is_some() {
                break;
            }
        }

        let spec = spec.ok_or_else(|| WavError::Malformed("missing fmt chunk".into()))?;
        let bytes = data.ok_or_else(|| WavError::Malformed("missing data chunk".into()))?;
        let bps = spec.sample_format.bytes_per_sample();
        if bytes.len() % bps != 0 {
            return Err(WavError::Malformed(format!(
                "data size {} not a multiple of sample size {bps}",
                bytes.len()
            )));
        }
        let samples = match spec.sample_format {
            SampleFormat::Pcm8 => bytes.iter().map(|&b| (b as f64 - 128.0) / 128.0).collect(),
            SampleFormat::Pcm16 => bytes
                .chunks_exact(2)
                .map(|c| i16::from_le_bytes([c[0], c[1]]) as f64 / 32768.0)
                .collect(),
            SampleFormat::Pcm32 => bytes
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64 / 2147483648.0)
                .collect(),
            SampleFormat::Float32 => bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64)
                .collect(),
        };
        Ok(WavData { spec, samples })
    }
}

/// Encodes samples as a WAV stream to any [`Write`] sink.
#[derive(Debug)]
pub struct WavWriter;

impl WavWriter {
    /// Serializes `samples` (interleaved, `[-1, 1]`; values outside the
    /// range are clamped) as a complete WAV stream.
    ///
    /// A `&mut W` may be passed for `writer`.
    ///
    /// # Errors
    ///
    /// Returns [`WavError::Io`] if the sink fails, or
    /// [`WavError::Malformed`] if `samples` is not a whole number of
    /// frames.
    pub fn write<W: Write>(mut writer: W, spec: WavSpec, samples: &[f64]) -> Result<(), WavError> {
        if spec.channels == 0 {
            return Err(WavError::Malformed("zero channels".into()));
        }
        if !samples.len().is_multiple_of(spec.channels as usize) {
            return Err(WavError::Malformed(format!(
                "{} samples is not a whole number of {}-channel frames",
                samples.len(),
                spec.channels
            )));
        }
        let bps = spec.sample_format.bytes_per_sample();
        let data_len = samples.len() * bps;
        let byte_rate = spec.sample_rate * spec.bytes_per_frame() as u32;
        let block_align = spec.bytes_per_frame() as u16;

        writer.write_all(b"RIFF")?;
        writer.write_all(&((36 + data_len) as u32).to_le_bytes())?;
        writer.write_all(b"WAVE")?;
        writer.write_all(b"fmt ")?;
        writer.write_all(&16u32.to_le_bytes())?;
        writer.write_all(&spec.sample_format.format_tag().to_le_bytes())?;
        writer.write_all(&spec.channels.to_le_bytes())?;
        writer.write_all(&spec.sample_rate.to_le_bytes())?;
        writer.write_all(&byte_rate.to_le_bytes())?;
        writer.write_all(&block_align.to_le_bytes())?;
        writer.write_all(&spec.sample_format.bits_per_sample().to_le_bytes())?;
        writer.write_all(b"data")?;
        writer.write_all(&(data_len as u32).to_le_bytes())?;

        let mut buf = Vec::with_capacity(data_len);
        for &s in samples {
            let s = s.clamp(-1.0, 1.0);
            match spec.sample_format {
                SampleFormat::Pcm8 => {
                    buf.push(((s * 127.0).round() + 128.0) as u8);
                }
                SampleFormat::Pcm16 => {
                    let v = (s * 32767.0).round() as i16;
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                SampleFormat::Pcm32 => {
                    let v = (s * 2147483647.0).round() as i32;
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                SampleFormat::Float32 => {
                    buf.extend_from_slice(&(s as f32).to_le_bytes());
                }
            }
        }
        writer.write_all(&buf)?;
        if data_len % 2 == 1 {
            writer.write_all(&[0u8])?;
        }
        writer.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(spec: WavSpec, samples: &[f64]) -> WavData {
        let mut buf = Vec::new();
        WavWriter::write(&mut buf, spec, samples).expect("write");
        WavReader::read(buf.as_slice()).expect("read")
    }

    #[test]
    fn pcm16_round_trip_preserves_samples() {
        let spec = WavSpec::mono_pcm16(20_160);
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.05).sin() * 0.9).collect();
        let decoded = round_trip(spec, &samples);
        assert_eq!(decoded.spec, spec);
        assert_eq!(decoded.samples.len(), samples.len());
        for (a, b) in samples.iter().zip(&decoded.samples) {
            assert!((a - b).abs() < 2.0 / 32768.0, "{a} vs {b}");
        }
    }

    #[test]
    fn float32_round_trip_is_near_exact() {
        let spec = WavSpec {
            channels: 1,
            sample_rate: 44_100,
            sample_format: SampleFormat::Float32,
        };
        let samples: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).cos()).collect();
        let decoded = round_trip(spec, &samples);
        for (a, b) in samples.iter().zip(&decoded.samples) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pcm8_round_trip_within_quantization() {
        let spec = WavSpec {
            channels: 1,
            sample_rate: 8_000,
            sample_format: SampleFormat::Pcm8,
        };
        let samples: Vec<f64> = (0..256).map(|i| (i as f64 / 128.0) - 1.0).collect();
        let decoded = round_trip(spec, &samples);
        for (a, b) in samples.iter().zip(&decoded.samples) {
            assert!((a - b).abs() < 1.0 / 60.0, "{a} vs {b}");
        }
    }

    #[test]
    fn pcm32_round_trip() {
        let spec = WavSpec {
            channels: 1,
            sample_rate: 22_050,
            sample_format: SampleFormat::Pcm32,
        };
        let samples = vec![0.0, 0.5, -0.5, 0.999, -0.999];
        let decoded = round_trip(spec, &samples);
        for (a, b) in samples.iter().zip(&decoded.samples) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn stereo_interleave_and_mono_mixdown() {
        let spec = WavSpec {
            channels: 2,
            sample_rate: 20_160,
            sample_format: SampleFormat::Pcm16,
        };
        // L = 0.5, R = -0.5 -> mono = 0.
        let samples = vec![0.5, -0.5, 0.5, -0.5];
        let decoded = round_trip(spec, &samples);
        let mono = decoded.to_mono();
        assert_eq!(mono.len(), 2);
        for m in mono {
            assert!(m.abs() < 1e-3);
        }
    }

    #[test]
    fn clamps_out_of_range_samples() {
        let spec = WavSpec::mono_pcm16(8_000);
        let decoded = round_trip(spec, &[2.0, -2.0]);
        assert!((decoded.samples[0] - 1.0).abs() < 1e-3);
        assert!((decoded.samples[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn duration_is_frames_over_rate() {
        let spec = WavSpec::mono_pcm16(20_160);
        let samples = vec![0.0; 20_160 * 2];
        let decoded = round_trip(spec, &samples);
        assert!((decoded.duration() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skips_unknown_chunks() {
        // Hand-build a WAV with a LIST chunk between fmt and data.
        let spec = WavSpec::mono_pcm16(8_000);
        let mut reference = Vec::new();
        WavWriter::write(&mut reference, spec, &[0.25, -0.25]).unwrap();
        // Splice in "LIST" of 4 bytes after fmt chunk (ends at offset 36).
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&reference[..36]);
        spliced.extend_from_slice(b"LIST");
        spliced.extend_from_slice(&4u32.to_le_bytes());
        spliced.extend_from_slice(b"INFO");
        spliced.extend_from_slice(&reference[36..]);
        // Fix RIFF size.
        let riff_size = (spliced.len() - 8) as u32;
        spliced[4..8].copy_from_slice(&riff_size.to_le_bytes());
        let decoded = WavReader::read(spliced.as_slice()).expect("read with LIST chunk");
        assert_eq!(decoded.samples.len(), 2);
    }

    #[test]
    fn rejects_non_riff() {
        let err = WavReader::read(&b"NOTRIFFDATAHERE!"[..]).unwrap_err();
        assert!(matches!(err, WavError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_data() {
        let spec = WavSpec::mono_pcm16(8_000);
        let mut buf = Vec::new();
        WavWriter::write(&mut buf, spec, &[0.1; 100]).unwrap();
        buf.truncate(buf.len() - 10);
        let err = WavReader::read(buf.as_slice()).unwrap_err();
        assert!(matches!(err, WavError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_unsupported_bit_depth() {
        let spec = WavSpec::mono_pcm16(8_000);
        let mut buf = Vec::new();
        WavWriter::write(&mut buf, spec, &[0.0; 4]).unwrap();
        // Corrupt bits-per-sample (offset 34) to 24.
        buf[34] = 24;
        let err = WavReader::read(buf.as_slice()).unwrap_err();
        assert!(matches!(err, WavError::Unsupported(_)), "{err}");
    }

    #[test]
    fn rejects_partial_frame_write() {
        let spec = WavSpec {
            channels: 2,
            sample_rate: 8_000,
            sample_format: SampleFormat::Pcm16,
        };
        let err = WavWriter::write(Vec::new(), spec, &[0.0; 3]).unwrap_err();
        assert!(matches!(err, WavError::Malformed(_)), "{err}");
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = WavError::Malformed("x".into());
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn paper_clip_size_matches_abstract() {
        // Paper: ~30 s clips of ~1.26 MB. At 20.16 kHz mono PCM16:
        // 30 * 20160 * 2 = 1_209_600 bytes ≈ 1.21 MB, matching the
        // paper's "approximately 1.26MB" Stargate clips.
        let bytes = 30 * 20_160 * 2;
        assert!(bytes > 900_000 && bytes < 1_400_000);
    }
}
