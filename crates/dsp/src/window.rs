//! Window functions for spectral analysis.
//!
//! The paper's `welchwindow` operator applies a **Welch window** to each
//! resliced record "helping minimize edge effects between records"
//! (§3). Welch is the parabolic window `w(i) = 1 - ((i - N/2) / (N/2))²`.
//! Other common windows are provided for comparison and for the synthetic
//! workload generator.

use std::f64::consts::PI;

/// The supported window shapes.
///
/// # Example
///
/// ```
/// use river_dsp::window::WindowKind;
///
/// let w = WindowKind::Welch.coefficients(5);
/// assert!((w[2] - 1.0).abs() < 1e-12); // parabola peaks mid-window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Welch's parabolic window — the pipeline default.
    #[default]
    Welch,
    /// Hann raised-cosine window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
    /// Symmetric triangular (Bartlett) window.
    Bartlett,
}

impl WindowKind {
    /// The window coefficient at sample `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be non-zero");
        assert!(i < n, "window index {i} out of range for length {n}");
        if n == 1 {
            return 1.0;
        }
        let nm1 = (n - 1) as f64;
        let x = i as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Welch => {
                let half = nm1 / 2.0;
                let t = (x - half) / half;
                1.0 - t * t
            }
            WindowKind::Hann => 0.5 * (1.0 - (2.0 * PI * x / nm1).cos()),
            WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x / nm1).cos(),
            WindowKind::Blackman => {
                0.42 - 0.5 * (2.0 * PI * x / nm1).cos() + 0.08 * (4.0 * PI * x / nm1).cos()
            }
            WindowKind::Bartlett => {
                let half = nm1 / 2.0;
                1.0 - ((x - half) / half).abs()
            }
        }
    }

    /// Materializes the full `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Multiplies `samples` by the window in place.
    ///
    /// This is the operation of the `welchwindow` operator (with
    /// [`WindowKind::Welch`]).
    pub fn apply(self, samples: &mut [f64]) {
        let n = samples.len();
        if n == 0 {
            return;
        }
        for (i, s) in samples.iter_mut().enumerate() {
            *s *= self.coefficient(i, n);
        }
    }

    /// Returns a windowed copy of `samples`.
    pub fn applied(self, samples: &[f64]) -> Vec<f64> {
        let mut out = samples.to_vec();
        self.apply(&mut out);
        out
    }

    /// The coherent gain (mean coefficient) of an `n`-point window; useful
    /// for amplitude-calibrated spectra.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// All window kinds, for sweeps and benches.
    pub const ALL: [WindowKind; 6] = [
        WindowKind::Rectangular,
        WindowKind::Welch,
        WindowKind::Hann,
        WindowKind::Hamming,
        WindowKind::Blackman,
        WindowKind::Bartlett,
    ];
}

impl std::fmt::Display for WindowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WindowKind::Rectangular => "rectangular",
            WindowKind::Welch => "welch",
            WindowKind::Hann => "hann",
            WindowKind::Hamming => "hamming",
            WindowKind::Blackman => "blackman",
            WindowKind::Bartlett => "bartlett",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_is_parabolic_and_symmetric() {
        let n = 101;
        let w = WindowKind::Welch.coefficients(n);
        assert!((w[50] - 1.0).abs() < 1e-12);
        assert!(w[0].abs() < 1e-12);
        assert!(w[n - 1].abs() < 1e-12);
        for i in 0..n {
            assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
    }

    #[test]
    fn all_windows_bounded_zero_to_one() {
        for kind in WindowKind::ALL {
            for &n in &[2usize, 3, 64, 700] {
                for (i, c) in kind.coefficients(n).into_iter().enumerate() {
                    assert!(
                        (-1e-12..=1.0 + 1e-12).contains(&c),
                        "{kind} n={n} i={i}: {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_windows_symmetric() {
        for kind in WindowKind::ALL {
            let n = 700;
            let w = kind.coefficients(n);
            for i in 0..n / 2 {
                assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "{kind} at {i}");
            }
        }
    }

    #[test]
    fn rectangular_is_identity() {
        let mut v = vec![1.5; 16];
        WindowKind::Rectangular.apply(&mut v);
        assert!(v.iter().all(|&x| x == 1.5));
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = WindowKind::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        assert!(w[63].abs() < 1e-12);
    }

    #[test]
    fn apply_matches_applied() {
        let samples: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let copied = WindowKind::Welch.applied(&samples);
        let mut in_place = samples.clone();
        WindowKind::Welch.apply(&mut in_place);
        assert_eq!(copied, in_place);
    }

    #[test]
    fn single_point_window_is_one() {
        for kind in WindowKind::ALL {
            assert_eq!(kind.coefficient(0, 1), 1.0);
        }
    }

    #[test]
    fn empty_apply_is_noop() {
        let mut v: Vec<f64> = vec![];
        WindowKind::Welch.apply(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn coherent_gain_sane() {
        // Rectangular gain is exactly 1; tapered windows are below 1.
        assert!((WindowKind::Rectangular.coherent_gain(128) - 1.0).abs() < 1e-12);
        for kind in [WindowKind::Welch, WindowKind::Hann, WindowKind::Hamming] {
            let g = kind.coherent_gain(128);
            assert!(g > 0.0 && g < 1.0, "{kind}: {g}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_index_checked() {
        WindowKind::Welch.coefficient(5, 5);
    }
}
