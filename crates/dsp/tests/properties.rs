//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use river_dsp::fft::{dft_naive, Fft};
use river_dsp::signal::normalize_oscillogram;
use river_dsp::stats::{SlidingStats, Welford};
use river_dsp::wav::{SampleFormat, WavReader, WavSpec, WavWriter};
use river_dsp::window::WindowKind;
use river_dsp::Complex64;

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT (any length, including Bluestein paths) agrees with the naive DFT.
    #[test]
    fn fft_matches_naive(x in complex_vec(64)) {
        let fast = Fft::new(x.len()).forward(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// forward then inverse is the identity.
    #[test]
    fn fft_round_trip(x in complex_vec(128)) {
        let fft = Fft::new(x.len());
        let back = fft.inverse(&fft.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-7 * (1.0 + a.abs()));
        }
    }

    /// Welford matches the two-pass batch computation.
    #[test]
    fn welford_matches_batch(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Sliding stats equal batch statistics of the trailing window.
    #[test]
    fn sliding_stats_match_batch(
        xs in prop::collection::vec(-1e3f64..1e3, 1..200),
        cap in 1usize..32,
    ) {
        let mut s = SlidingStats::new(cap);
        for (i, &x) in xs.iter().enumerate() {
            s.push(x);
            let lo = (i + 1).saturating_sub(cap);
            let window = &xs[lo..=i];
            let mean = window.iter().sum::<f64>() / window.len() as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        }
    }

    /// Oscillogram normalization output is always within [-1, 1] and
    /// zero-mean.
    #[test]
    fn oscillogram_normalized(xs in prop::collection::vec(-1e4f64..1e4, 2..300)) {
        let norm = normalize_oscillogram(&xs);
        let mean: f64 = norm.iter().sum::<f64>() / norm.len() as f64;
        prop_assert!(mean.abs() < 1e-6);
        for &v in &norm {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    /// Window coefficients are symmetric and within [0, 1] for all kinds.
    #[test]
    fn windows_symmetric_bounded(n in 2usize..512, kind_idx in 0usize..6) {
        let kind = WindowKind::ALL[kind_idx];
        let w = kind.coefficients(n);
        for i in 0..n {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&w[i]));
            prop_assert!((w[i] - w[n - 1 - i]).abs() < 1e-12);
        }
    }

    /// WAV PCM16 round trip preserves samples to quantization accuracy.
    #[test]
    fn wav_pcm16_round_trip(
        xs in prop::collection::vec(-1.0f64..1.0, 1..500),
        rate in 4_000u32..48_000,
    ) {
        let spec = WavSpec::mono_pcm16(rate);
        let mut buf = Vec::new();
        WavWriter::write(&mut buf, spec, &xs).unwrap();
        let decoded = WavReader::read(buf.as_slice()).unwrap();
        prop_assert_eq!(decoded.spec, spec);
        prop_assert_eq!(decoded.samples.len(), xs.len());
        for (a, b) in xs.iter().zip(&decoded.samples) {
            prop_assert!((a - b).abs() < 2.0 / 32768.0);
        }
    }

    /// WAV float32 round trip is near-exact for all supported channel
    /// counts.
    #[test]
    fn wav_float_round_trip(
        frames in prop::collection::vec(-1.0f64..1.0, 1..200),
        channels in 1u16..4,
    ) {
        let spec = WavSpec { channels, sample_rate: 20_160, sample_format: SampleFormat::Float32 };
        // Truncate to whole frames.
        let usable = frames.len() - frames.len() % channels as usize;
        if usable == 0 {
            return Ok(());
        }
        let samples = &frames[..usable];
        let mut buf = Vec::new();
        WavWriter::write(&mut buf, spec, samples).unwrap();
        let decoded = WavReader::read(buf.as_slice()).unwrap();
        for (a, b) in samples.iter().zip(&decoded.samples) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Reading arbitrary junk either fails cleanly or succeeds; it never
    /// panics.
    #[test]
    fn wav_reader_never_panics(junk in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = WavReader::read(junk.as_slice());
    }
}
