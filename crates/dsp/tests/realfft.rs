//! Property tests for the real-input FFT fast path: `RealFft` must
//! agree with the naive O(N²) reference DFT (on zero-imaginary packed
//! input) to ≤ 1e-9 relative error over random lengths spanning all
//! three plan shapes — packed radix-2 halves (n = 2^k), packed
//! Bluestein halves (other even n), and the odd-length direct fallback
//! — plus the misuse panics of the scratch API.

use proptest::prelude::*;
use river_dsp::fft::{dft_naive, RealFft};
use river_dsp::Complex64;

/// Deterministic pseudo-random samples in [-1, 1] (xorshift64*).
fn random_samples(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Asserts `got` ≡ `expected` within `tol` relative to the spectrum's
/// largest magnitude (floored at 1 so all-zero inputs compare absolutely).
fn assert_close(got: &[Complex64], expected: &[Complex64], tol: f64) {
    assert_eq!(got.len(), expected.len());
    let scale = expected.iter().map(|z| z.abs()).fold(1.0_f64, f64::max);
    for (k, (a, b)) in got.iter().zip(expected).enumerate() {
        let err = (*a - *b).abs();
        assert!(
            err <= tol * scale,
            "bin {k}: {a} vs {b} (err {err:.3e}, scale {scale:.3e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random lengths: powers of two exercise packed radix-2, other
    /// even lengths packed Bluestein, odd lengths the direct fallback.
    #[test]
    fn realfft_matches_naive_dft(n in 1usize..260, seed in 0u64..1_000_000) {
        let x = random_samples(n, seed);
        let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let expected = dft_naive(&packed);
        let got = RealFft::new(n).forward(&x);
        let scale = expected.iter().map(|z| z.abs()).fold(1.0_f64, f64::max);
        for (k, (a, b)) in got.iter().zip(&expected).enumerate() {
            let err = (*a - *b).abs();
            prop_assert!(err <= 1e-9 * scale, "n={} bin {}: err {:.3e}", n, k, err);
        }
    }

    /// The fused magnitude path agrees with |naive DFT of windowed
    /// input| — the equivalence the `spectrum` operator rides on.
    #[test]
    fn magnitudes_match_naive_windowed(n in 1usize..160, seed in 0u64..1_000_000) {
        let x = random_samples(n, seed);
        let window = random_samples(n, seed ^ 0xDEAD_BEEF);
        let windowed: Vec<Complex64> = x
            .iter()
            .zip(&window)
            .map(|(&v, &w)| Complex64::from_real(v * w))
            .collect();
        let expected = dft_naive(&windowed);
        let plan = RealFft::new(n);
        let mut mags = vec![0.0; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.magnitudes_into(&x, Some(&window), &mut mags, &mut scratch);
        let scale = expected.iter().map(|z| z.abs()).fold(1.0_f64, f64::max);
        for (k, (&m, z)) in mags.iter().zip(&expected).enumerate() {
            let err = (m - z.abs()).abs();
            prop_assert!(err <= 1e-9 * scale, "n={} bin {}: err {:.3e}", n, k, err);
        }
    }
}

#[test]
fn production_record_length_matches_naive() {
    // 840 = the 20.16 kHz record geometry: packs into a 420-point
    // Bluestein half — the case the pipeline hot path rides.
    let x = random_samples(840, 7);
    let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    assert_close(&RealFft::new(840).forward(&x), &dft_naive(&packed), 1e-9);
}

#[test]
fn odd_and_prime_lengths_match_naive() {
    for &n in &[1usize, 3, 5, 7, 31, 101, 127, 211] {
        let x = random_samples(n, n as u64);
        let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        assert_close(&RealFft::new(n).forward(&x), &dft_naive(&packed), 1e-9);
    }
}

#[test]
#[should_panic(expected = "length must match")]
fn wrong_input_length_is_rejected() {
    RealFft::new(64).forward(&[0.0; 63]);
}

#[test]
#[should_panic(expected = "output length must match")]
fn wrong_output_length_is_rejected() {
    let plan = RealFft::new(8);
    let mut out = vec![Complex64::ZERO; 7];
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.forward_into(&[0.0; 8], &mut out, &mut scratch);
}

#[test]
#[should_panic(expected = "scratch length")]
fn short_scratch_is_rejected() {
    let plan = RealFft::new(840);
    let mut out = vec![0.0; 840];
    plan.magnitudes_into(&[0.0; 840], None, &mut out, &mut []);
}

#[test]
#[should_panic(expected = "window length must match")]
fn wrong_window_length_is_rejected() {
    let plan = RealFft::new(16);
    let mut out = vec![0.0; 16];
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.magnitudes_into(&[0.0; 16], Some(&[1.0; 15]), &mut out, &mut scratch);
}
