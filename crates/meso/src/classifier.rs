//! The MESO classifier: leader–follower training into sensitivity
//! spheres, with incremental removal for cheap exact leave-one-out.

use crate::dataset::Label;
use crate::sphere::SensitivitySphere;
use crate::tree::SphereTree;

/// Policy controlling the sensitivity δ — the radius within which a new
/// training pattern joins an existing sphere rather than founding a new
/// one.
///
/// The TKDE paper grows δ as training progresses; the DEPSA paper only
/// summarizes this. The default `RunningMean` policy — δ is a fraction
/// of the running mean nearest-sphere distance — reproduces the
/// qualitative behaviour (δ adapts to the data's scale without tuning)
/// and is documented in `DESIGN.md` as an approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaPolicy {
    /// Constant sensitivity.
    Fixed(f64),
    /// δ = `factor` × running mean of observed nearest-sphere distances.
    RunningMean {
        /// Fraction of the running mean distance (0.75 works well across
        /// the paper's datasets).
        factor: f64,
    },
    /// δ = `factor` × the first non-zero nearest-sphere distance seen.
    FirstDistance {
        /// Fraction of the first observed distance.
        factor: f64,
    },
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy::RunningMean { factor: 0.75 }
    }
}

/// How a query maps the nearest sphere to a label (DEPSA §2: MESO
/// "returns the label associated with the most similar training pattern
/// or a sensitivity sphere containing a set of similar training
/// patterns").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Majority label among the nearest sphere's members (default).
    #[default]
    SphereMajority,
    /// Label of the single nearest training pattern within the nearest
    /// sphere.
    NearestPattern,
}

/// Configuration for [`Meso`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MesoConfig {
    /// Sensitivity growth policy.
    pub delta_policy: DeltaPolicy,
    /// Query labeling mode.
    pub query_mode: QueryMode,
}

/// Identifier of a stored training pattern, returned by
/// [`Meso::train`]; needed for [`Meso::remove`] / [`Meso::restore`].
pub type PatternId = usize;

#[derive(Debug, Clone)]
struct StoredPattern {
    features: Vec<f64>,
    label: Label,
    sphere: usize,
    alive: bool,
}

/// Result of a detailed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Predicted label.
    pub label: Label,
    /// Index of the nearest sphere.
    pub sphere: usize,
    /// Euclidean distance from the query to that sphere's center.
    pub distance: f64,
    /// `(label, member count)` pairs of the nearest sphere.
    pub votes: Vec<(Label, usize)>,
}

/// The MESO perceptual memory.
///
/// # Example
///
/// ```
/// use meso::{Meso, MesoConfig};
///
/// let mut m = Meso::new(1, MesoConfig::default());
/// let id = m.train(&[0.0], 0);
/// m.train(&[0.2], 0);
/// m.train(&[10.0], 1);
/// assert_eq!(m.classify(&[0.1]), Some(0));
///
/// // Exact leave-one-out: remove, query, restore.
/// m.remove(id);
/// assert_eq!(m.classify(&[0.0]), Some(0)); // neighbor at 0.2 remains
/// m.restore(id);
/// ```
#[derive(Debug, Clone)]
pub struct Meso {
    dim: usize,
    config: MesoConfig,
    spheres: Vec<SensitivitySphere>,
    /// Pattern ids per sphere, parallel to `spheres`.
    members: Vec<Vec<PatternId>>,
    patterns: Vec<StoredPattern>,
    live_patterns: usize,
    delta: f64,
    /// Running mean of nearest-sphere distances (for `RunningMean`).
    dist_mean: f64,
    dist_count: u64,
    /// First non-zero observed distance (for `FirstDistance`).
    first_distance: Option<f64>,
}

impl Meso {
    /// Creates an empty memory for patterns of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, if a fixed δ is negative or non-finite, or
    /// if a policy factor is non-positive.
    pub fn new(dim: usize, config: MesoConfig) -> Self {
        assert!(dim > 0, "pattern dimension must be non-zero");
        match config.delta_policy {
            DeltaPolicy::Fixed(d) => {
                assert!(d.is_finite() && d >= 0.0, "fixed delta must be >= 0");
            }
            DeltaPolicy::RunningMean { factor } | DeltaPolicy::FirstDistance { factor } => {
                assert!(factor.is_finite() && factor > 0.0, "factor must be > 0");
            }
        }
        Meso {
            dim,
            config,
            spheres: Vec::new(),
            members: Vec::new(),
            patterns: Vec::new(),
            live_patterns: 0,
            delta: match config.delta_policy {
                DeltaPolicy::Fixed(d) => d,
                _ => 0.0,
            },
            dist_mean: 0.0,
            dist_count: 0,
            first_distance: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MesoConfig {
        &self.config
    }

    /// Current sensitivity δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of non-empty sensitivity spheres.
    pub fn sphere_count(&self) -> usize {
        self.spheres.iter().filter(|s| !s.is_empty()).count()
    }

    /// Number of live (not removed) training patterns.
    pub fn pattern_count(&self) -> usize {
        self.live_patterns
    }

    /// Direct access to the spheres (empty spheres included), for
    /// inspection and rendering.
    pub fn spheres(&self) -> &[SensitivitySphere] {
        &self.spheres
    }

    /// Index of the nearest non-empty sphere and its center distance.
    fn nearest_sphere(&self, features: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.spheres.iter().enumerate() {
            if s.is_empty() {
                continue;
            }
            let d = s.distance_sq(features);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, d)| (i, d.sqrt()))
    }

    fn update_delta(&mut self, observed: f64) {
        match self.config.delta_policy {
            DeltaPolicy::Fixed(_) => {}
            DeltaPolicy::RunningMean { factor } => {
                self.dist_count += 1;
                self.dist_mean += (observed - self.dist_mean) / self.dist_count as f64;
                self.delta = factor * self.dist_mean;
            }
            DeltaPolicy::FirstDistance { factor } => {
                if self.first_distance.is_none() && observed > 0.0 {
                    self.first_distance = Some(observed);
                    self.delta = factor * observed;
                }
            }
        }
    }

    /// Trains on one labeled pattern (leader–follower step) and returns
    /// its [`PatternId`].
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension is wrong or any value is
    /// non-finite.
    pub fn train(&mut self, features: &[f64], label: Label) -> PatternId {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(
            features.iter().all(|x| x.is_finite()),
            "features must be finite"
        );
        let id = self.patterns.len();
        let sphere = match self.nearest_sphere(features) {
            None => self.new_sphere(features, label),
            Some((nearest, d)) => {
                self.update_delta(d);
                if d <= self.delta {
                    self.spheres[nearest].insert(features, label);
                    self.members[nearest].push(id);
                    nearest
                } else {
                    self.new_sphere(features, label)
                }
            }
        };
        self.patterns.push(StoredPattern {
            features: features.to_vec(),
            label,
            sphere,
            alive: true,
        });
        self.live_patterns += 1;
        id
    }

    fn new_sphere(&mut self, features: &[f64], label: Label) -> usize {
        self.spheres.push(SensitivitySphere::new(features, label));
        self.members.push(vec![self.patterns.len()]);
        self.spheres.len() - 1
    }

    /// Trains on a whole labeled set, returning the assigned ids.
    pub fn train_all<'a, I>(&mut self, items: I) -> Vec<PatternId>
    where
        I: IntoIterator<Item = (&'a [f64], Label)>,
    {
        items.into_iter().map(|(f, l)| self.train(f, l)).collect()
    }

    /// Removes a training pattern from memory (its sphere's center and
    /// counts are exactly rewound). Enables exact-memory leave-one-out
    /// without retraining.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or already removed.
    pub fn remove(&mut self, id: PatternId) {
        let p = &mut self.patterns[id];
        assert!(p.alive, "pattern {id} already removed");
        p.alive = false;
        let sphere = p.sphere;
        let label = p.label;
        let features = std::mem::take(&mut p.features);
        self.spheres[sphere].remove(&features, label);
        self.members[sphere].retain(|&m| m != id);
        self.patterns[id].features = features;
        self.live_patterns -= 1;
    }

    /// Restores a previously removed pattern into the sphere it came
    /// from (exact inverse of [`remove`](Self::remove)).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or not currently removed.
    pub fn restore(&mut self, id: PatternId) {
        let p = &mut self.patterns[id];
        assert!(!p.alive, "pattern {id} is not removed");
        p.alive = true;
        let sphere = p.sphere;
        let label = p.label;
        let features = std::mem::take(&mut p.features);
        self.spheres[sphere].insert(&features, label);
        self.members[sphere].push(id);
        self.patterns[id].features = features;
        self.live_patterns += 1;
    }

    /// Classifies a query pattern; `None` when the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics on feature-dimension mismatch.
    pub fn classify(&self, features: &[f64]) -> Option<Label> {
        self.query(features).map(|r| r.label)
    }

    /// Classifies with full detail (nearest sphere, distance, votes).
    ///
    /// # Panics
    ///
    /// Panics on feature-dimension mismatch.
    pub fn query(&self, features: &[f64]) -> Option<QueryResult> {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let (sphere, distance) = self.nearest_sphere(features)?;
        Some(self.result_for_sphere(sphere, distance, features))
    }

    fn result_for_sphere(&self, sphere: usize, distance: f64, features: &[f64]) -> QueryResult {
        let s = &self.spheres[sphere];
        let label = match self.config.query_mode {
            QueryMode::SphereMajority => s.majority_label().expect("non-empty sphere"),
            QueryMode::NearestPattern => {
                let mut best = (f64::INFINITY, 0usize);
                for &id in &self.members[sphere] {
                    let p = &self.patterns[id];
                    let d: f64 = p
                        .features
                        .iter()
                        .zip(features)
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum();
                    if d < best.0 {
                        best = (d, id);
                    }
                }
                self.patterns[best.1].label
            }
        };
        QueryResult {
            label,
            sphere,
            distance,
            votes: s.labels().collect(),
        }
    }

    /// Builds a ball-tree index over the current (non-empty) spheres for
    /// sublinear nearest-sphere search. The index is a snapshot: it is
    /// invalidated by any later `train`/`remove`/`restore`.
    pub fn build_index(&self) -> SphereTree {
        SphereTree::build(
            self.spheres
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, s)| (i, s.center().to_vec())),
        )
    }

    /// Classifies using a prebuilt index; result is identical to
    /// [`classify`](Self::classify) as long as the index snapshot is
    /// current.
    ///
    /// # Panics
    ///
    /// Panics on feature-dimension mismatch.
    pub fn classify_indexed(&self, index: &SphereTree, features: &[f64]) -> Option<Label> {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let (sphere, distance) = index.nearest(features)?;
        Some(self.result_for_sphere(sphere, distance, features).label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_memory() -> Meso {
        let mut m = Meso::new(2, MesoConfig::default());
        for i in 0..10 {
            let t = i as f64 * 0.01;
            m.train(&[t, -t], 0);
            m.train(&[5.0 + t, 5.0 - t], 1);
        }
        m
    }

    #[test]
    fn classifies_two_well_separated_clusters() {
        let m = two_cluster_memory();
        assert_eq!(m.classify(&[0.02, 0.0]), Some(0));
        assert_eq!(m.classify(&[5.1, 5.0]), Some(1));
        assert!(m.sphere_count() >= 2);
        assert_eq!(m.pattern_count(), 20);
    }

    #[test]
    fn empty_memory_returns_none() {
        let m = Meso::new(3, MesoConfig::default());
        assert_eq!(m.classify(&[0.0, 0.0, 0.0]), None);
    }

    #[test]
    fn first_pattern_founds_first_sphere() {
        let mut m = Meso::new(1, MesoConfig::default());
        m.train(&[1.0], 7);
        assert_eq!(m.sphere_count(), 1);
        assert_eq!(m.classify(&[100.0]), Some(7));
    }

    #[test]
    fn identical_patterns_share_one_sphere() {
        let mut m = Meso::new(2, MesoConfig::default());
        for _ in 0..50 {
            m.train(&[1.0, 1.0], 0);
        }
        assert_eq!(m.sphere_count(), 1);
        assert_eq!(m.spheres()[0].len(), 50);
    }

    #[test]
    fn distant_patterns_found_new_spheres() {
        let mut m = Meso::new(1, MesoConfig::default());
        m.train(&[0.0], 0);
        m.train(&[0.1], 0);
        m.train(&[1000.0], 1);
        assert!(m.sphere_count() >= 2, "spheres: {}", m.sphere_count());
    }

    #[test]
    fn remove_then_restore_is_identity() {
        let mut m = two_cluster_memory();
        let spheres_before: Vec<usize> = m
            .spheres()
            .iter()
            .map(super::super::sphere::SensitivitySphere::len)
            .collect();
        let id = m.train(&[0.005, 0.005], 0);
        m.remove(id);
        let spheres_after: Vec<usize> = m
            .spheres()
            .iter()
            .map(super::super::sphere::SensitivitySphere::len)
            .collect();
        // Removing the just-added pattern rewinds counts exactly (a new
        // sphere may exist but must be empty).
        for (i, &n) in spheres_before.iter().enumerate() {
            assert_eq!(spheres_after[i], n);
        }
        m.restore(id);
        assert_eq!(m.pattern_count(), 21);
        assert_eq!(m.classify(&[0.005, 0.005]), Some(0));
    }

    #[test]
    fn loo_removal_changes_prediction_when_isolated() {
        // A lone pattern of label 9 far away: removing it must flip the
        // local prediction to the remaining data.
        let mut m = two_cluster_memory();
        let id = m.train(&[100.0, 100.0], 9);
        assert_eq!(m.classify(&[100.0, 100.0]), Some(9));
        m.remove(id);
        let pred = m.classify(&[100.0, 100.0]).unwrap();
        assert_ne!(pred, 9);
        m.restore(id);
        assert_eq!(m.classify(&[100.0, 100.0]), Some(9));
    }

    #[test]
    fn nearest_pattern_mode_uses_member_labels() {
        let cfg = MesoConfig {
            delta_policy: DeltaPolicy::Fixed(10.0),
            query_mode: QueryMode::NearestPattern,
        };
        let mut m = Meso::new(1, cfg);
        // One sphere with mixed labels; majority is 0 but nearest to 0.9
        // is the single label-1 pattern at 1.0.
        m.train(&[0.0], 0);
        m.train(&[0.1], 0);
        m.train(&[0.2], 0);
        m.train(&[1.0], 1);
        assert_eq!(m.sphere_count(), 1);
        assert_eq!(m.classify(&[0.9]), Some(1));
        let majority = Meso::new(
            1,
            MesoConfig {
                query_mode: QueryMode::SphereMajority,
                ..cfg
            },
        );
        let _ = majority; // majority mode covered by other tests
    }

    #[test]
    fn query_reports_votes_and_distance() {
        let m = two_cluster_memory();
        let r = m.query(&[0.0, 0.0]).unwrap();
        assert_eq!(r.label, 0);
        assert!(r.distance < 1.0);
        assert!(!r.votes.is_empty());
    }

    #[test]
    fn fixed_delta_policy_controls_sphere_creation() {
        let cfg = MesoConfig {
            delta_policy: DeltaPolicy::Fixed(0.0),
            query_mode: QueryMode::SphereMajority,
        };
        let mut m = Meso::new(1, cfg);
        m.train(&[0.0], 0);
        m.train(&[0.001], 0);
        // delta 0: every distinct pattern founds its own sphere.
        assert_eq!(m.sphere_count(), 2);
    }

    #[test]
    fn first_distance_policy() {
        let cfg = MesoConfig {
            delta_policy: DeltaPolicy::FirstDistance { factor: 2.0 },
            query_mode: QueryMode::SphereMajority,
        };
        let mut m = Meso::new(1, cfg);
        m.train(&[0.0], 0);
        m.train(&[1.0], 0); // first distance = 1.0 -> delta = 2.0
        assert!((m.delta() - 2.0).abs() < 1e-12);
        m.train(&[1.5], 0); // within delta of sphere
        assert!(m.sphere_count() <= 2);
    }

    #[test]
    fn indexed_classification_matches_linear() {
        let m = two_cluster_memory();
        let index = m.build_index();
        for q in [[0.0, 0.0], [5.0, 5.0], [2.5, 2.5], [-1.0, 3.0]] {
            assert_eq!(m.classify_indexed(&index, &q), m.classify(&q), "{q:?}");
        }
    }

    #[test]
    fn train_all_convenience() {
        let mut m = Meso::new(1, MesoConfig::default());
        let data: Vec<(Vec<f64>, Label)> = vec![(vec![0.0], 0), (vec![9.0], 1)];
        let ids = m.train_all(data.iter().map(|(f, l)| (f.as_slice(), *l)));
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut m = Meso::new(1, MesoConfig::default());
        let id = m.train(&[0.0], 0);
        m.remove(id);
        m.remove(id);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_features() {
        let mut m = Meso::new(1, MesoConfig::default());
        m.train(&[f64::NAN], 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_query_dim() {
        let m = two_cluster_memory();
        m.classify(&[1.0]);
    }
}
