//! Confusion matrices — the artifact behind the paper's Table 3.

use crate::dataset::Label;
use std::fmt;
use std::fmt::Write as _;

/// A square confusion matrix: rows are actual labels, columns are
/// predicted labels (the paper's Table 3 layout).
///
/// # Example
///
/// ```
/// use meso::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.count(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    /// Row-major counts: `counts[actual * classes + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an all-zero matrix over `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "class count must be non-zero");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one test outcome.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: Label, predicted: Label) {
        assert!(actual < self.classes, "actual label out of range");
        assert!(predicted < self.classes, "predicted label out of range");
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Count of tests with the given actual/predicted pair.
    pub fn count(&self, actual: Label, predicted: Label) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total number of recorded tests.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of correct predictions (the main diagonal).
    pub fn correct(&self) -> u64 {
        (0..self.classes).map(|i| self.count(i, i)).sum()
    }

    /// Overall accuracy: `correct / total`; `0.0` when nothing has been
    /// recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Row-normalized percentage for `(actual, predicted)` — the numbers
    /// printed in the paper's Table 3; `0.0` for empty rows.
    pub fn percent(&self, actual: Label, predicted: Label) -> f64 {
        let row_total: u64 = (0..self.classes).map(|p| self.count(actual, p)).sum();
        if row_total == 0 {
            0.0
        } else {
            100.0 * self.count(actual, predicted) as f64 / row_total as f64
        }
    }

    /// Per-class recall (diagonal percentage / 100).
    pub fn recall(&self, label: Label) -> f64 {
        self.percent(label, label) / 100.0
    }

    /// Merges another matrix into this one (accumulating across
    /// iterations).
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Renders the matrix as a table of row percentages with the given
    /// class names (falls back to indices when names are missing).
    pub fn render(&self, names: &[&str]) -> String {
        let name = |i: usize| -> String {
            names
                .get(i)
                .map_or_else(|| format!("C{i}"), std::string::ToString::to_string)
        };
        let mut out = String::new();
        out.push_str("actual\\pred");
        for p in 0..self.classes {
            let _ = write!(out, " {:>6}", name(p));
        }
        out.push('\n');
        for a in 0..self.classes {
            let _ = write!(out, "{:<11}", name(a));
            for p in 0..self.classes {
                let pct = self.percent(a, p);
                if pct == 0.0 {
                    out.push_str("      .");
                } else {
                    let _ = write!(out, " {pct:>6.1}");
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        for _ in 0..8 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        cm.record(0, 2);
        for _ in 0..5 {
            cm.record(1, 1);
        }
        cm.record(2, 0);
        cm.record(2, 2);
        cm
    }

    #[test]
    fn counts_and_totals() {
        let cm = sample();
        assert_eq!(cm.total(), 17);
        assert_eq!(cm.correct(), 14);
        assert_eq!(cm.count(0, 1), 1);
    }

    #[test]
    fn accuracy() {
        let cm = sample();
        assert!((cm.accuracy() - 14.0 / 17.0).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(2).accuracy(), 0.0);
    }

    #[test]
    fn row_percentages() {
        let cm = sample();
        assert!((cm.percent(0, 0) - 80.0).abs() < 1e-12);
        assert!((cm.percent(1, 1) - 100.0).abs() < 1e-12);
        assert!((cm.percent(2, 0) - 50.0).abs() < 1e-12);
        // Rows sum to 100.
        for a in 0..3 {
            let row: f64 = (0..3).map(|p| cm.percent(a, p)).sum();
            assert!((row - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_row_percent_is_zero() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.percent(1, 1), 0.0);
    }

    #[test]
    fn recall_matches_diagonal() {
        let cm = sample();
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 34);
        assert!((a.accuracy() - 14.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_names() {
        let cm = sample();
        let s = cm.render(&["AMGO", "BCCH", "BLJA"]);
        assert!(s.contains("AMGO"));
        assert!(s.contains("80.0"));
        // Display falls back to indices.
        assert!(cm.to_string().contains("C0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
