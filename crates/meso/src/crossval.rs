//! Cross-validation protocols from the paper's assessment (§4):
//! leave-one-out and resubstitution, with ensemble grouping and voting,
//! plus k-fold as an extension.
//!
//! "A voting approach is used for testing each ensemble, specifically
//! each pattern belonging to a given ensemble is tested independently
//! and represents a 'vote' for the species indicated by the test. The
//! species with the most votes is returned as the recognized species."

use crate::classifier::{Meso, MesoConfig, PatternId};
use crate::confusion::ConfusionMatrix;
use crate::dataset::{Dataset, Label};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// How leave-one-out holds a group out of the trained memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LooMode {
    /// Train once per iteration, then *remove* the held-out group's
    /// patterns, query, and restore. Exact memory-without-the-group
    /// semantics at a fraction of the cost; the default.
    #[default]
    Removal,
    /// Retrain a fresh memory from scratch for every held-out group —
    /// the paper's literal procedure (MESO "is trained and tested 9,460
    /// times" for the ensemble set). Slower by a factor of the dataset
    /// size.
    Retrain,
}

/// Configuration for the cross-validation harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossValConfig {
    /// Number of repetitions (`n` in the paper: 20 for leave-one-out,
    /// 100 for resubstitution).
    pub iterations: usize,
    /// RNG seed for dataset randomization.
    pub seed: u64,
    /// Leave-one-out strategy.
    pub loo_mode: LooMode,
    /// Classifier configuration.
    pub meso: MesoConfig,
}

impl Default for CrossValConfig {
    fn default() -> Self {
        CrossValConfig {
            iterations: 1,
            seed: 0,
            loo_mode: LooMode::default(),
            meso: MesoConfig::default(),
        }
    }
}

/// Aggregate result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Accuracy of each iteration.
    pub accuracies: Vec<f64>,
    /// Confusion accumulated over all iterations.
    pub confusion: ConfusionMatrix,
    /// Total time spent training memories.
    pub train_time: Duration,
    /// Total time spent testing (including removal/restore in
    /// [`LooMode::Removal`]).
    pub test_time: Duration,
}

impl RunStats {
    /// Mean accuracy across iterations; `0.0` when empty.
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracies.is_empty() {
            0.0
        } else {
            self.accuracies.iter().sum::<f64>() / self.accuracies.len() as f64
        }
    }

    /// Sample standard deviation of the per-iteration accuracies
    /// (`0.0` for fewer than two iterations) — the ± column of Table 2.
    pub fn std_accuracy(&self) -> f64 {
        let n = self.accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_accuracy();
        let var = self
            .accuracies
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Majority vote across per-pattern predictions; ties break toward the
/// label with the smallest id (deterministic).
pub fn vote(predictions: &[Label]) -> Option<Label> {
    let &max_label = predictions.iter().max()?;
    let mut counts = vec![0usize; max_label + 1];
    for &p in predictions {
        counts[p] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(label, _)| label)
}

fn shuffled_group_order(ds: &Dataset, rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ds.group_count()).collect();
    order.shuffle(rng);
    order
}

/// Leave-one-out cross-validation over *groups* (ensembles); for
/// pattern-level datasets every pattern is its own group, giving the
/// paper's pattern protocol.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn leave_one_out(ds: &Dataset, cfg: &CrossValConfig) -> RunStats {
    assert!(!ds.is_empty(), "dataset must not be empty");
    let classes = ds.label_count();
    let mut stats = RunStats {
        accuracies: Vec::with_capacity(cfg.iterations),
        confusion: ConfusionMatrix::new(classes),
        train_time: Duration::ZERO,
        test_time: Duration::ZERO,
    };
    let members = ds.group_members();

    for iter in 0..cfg.iterations {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(iter as u64));
        let order = shuffled_group_order(ds, &mut rng);
        match cfg.loo_mode {
            LooMode::Removal => {
                // Train the full memory once, in randomized group order.
                let t0 = Instant::now();
                let mut memory = Meso::new(ds.dim(), cfg.meso);
                let mut ids: Vec<Vec<PatternId>> = vec![Vec::new(); ds.group_count()];
                for &g in &order {
                    for &p in &members[g] {
                        ids[g].push(memory.train(ds.features(p), ds.label(p)));
                    }
                }
                stats.train_time += t0.elapsed();

                let t1 = Instant::now();
                let mut correct = 0usize;
                let mut tested = 0usize;
                for &g in &order {
                    if members[g].is_empty() {
                        continue;
                    }
                    for &id in &ids[g] {
                        memory.remove(id);
                    }
                    let predictions: Vec<Label> = members[g]
                        .iter()
                        .filter_map(|&p| memory.classify(ds.features(p)))
                        .collect();
                    if let (Some(predicted), Some(actual)) = (vote(&predictions), ds.group_label(g))
                    {
                        stats.confusion.record(actual, predicted);
                        tested += 1;
                        if predicted == actual {
                            correct += 1;
                        }
                    }
                    for &id in &ids[g] {
                        memory.restore(id);
                    }
                }
                stats.test_time += t1.elapsed();
                stats.accuracies.push(if tested == 0 {
                    0.0
                } else {
                    correct as f64 / tested as f64
                });
            }
            LooMode::Retrain => {
                let mut correct = 0usize;
                let mut tested = 0usize;
                for &held in &order {
                    if members[held].is_empty() {
                        continue;
                    }
                    let t0 = Instant::now();
                    let mut memory = Meso::new(ds.dim(), cfg.meso);
                    for &g in &order {
                        if g == held {
                            continue;
                        }
                        for &p in &members[g] {
                            memory.train(ds.features(p), ds.label(p));
                        }
                    }
                    stats.train_time += t0.elapsed();

                    let t1 = Instant::now();
                    let predictions: Vec<Label> = members[held]
                        .iter()
                        .filter_map(|&p| memory.classify(ds.features(p)))
                        .collect();
                    if let (Some(predicted), Some(actual)) =
                        (vote(&predictions), ds.group_label(held))
                    {
                        stats.confusion.record(actual, predicted);
                        tested += 1;
                        if predicted == actual {
                            correct += 1;
                        }
                    }
                    stats.test_time += t1.elapsed();
                }
                stats.accuracies.push(if tested == 0 {
                    0.0
                } else {
                    correct as f64 / tested as f64
                });
            }
        }
    }
    stats
}

/// Resubstitution: train and test on the entire dataset. "Although
/// lacking statistical independence between training and testing data,
/// resubstitution affords an estimate of the maximum classification
/// accuracy expected for a particular data set" (§4).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn resubstitution(ds: &Dataset, cfg: &CrossValConfig) -> RunStats {
    assert!(!ds.is_empty(), "dataset must not be empty");
    let classes = ds.label_count();
    let mut stats = RunStats {
        accuracies: Vec::with_capacity(cfg.iterations),
        confusion: ConfusionMatrix::new(classes),
        train_time: Duration::ZERO,
        test_time: Duration::ZERO,
    };
    let members = ds.group_members();

    for iter in 0..cfg.iterations {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(iter as u64));
        let order = shuffled_group_order(ds, &mut rng);

        let t0 = Instant::now();
        let mut memory = Meso::new(ds.dim(), cfg.meso);
        for &g in &order {
            for &p in &members[g] {
                memory.train(ds.features(p), ds.label(p));
            }
        }
        stats.train_time += t0.elapsed();

        let t1 = Instant::now();
        let mut correct = 0usize;
        let mut tested = 0usize;
        for &g in &order {
            if members[g].is_empty() {
                continue;
            }
            let predictions: Vec<Label> = members[g]
                .iter()
                .filter_map(|&p| memory.classify(ds.features(p)))
                .collect();
            if let (Some(predicted), Some(actual)) = (vote(&predictions), ds.group_label(g)) {
                stats.confusion.record(actual, predicted);
                tested += 1;
                if predicted == actual {
                    correct += 1;
                }
            }
        }
        stats.test_time += t1.elapsed();
        stats.accuracies.push(if tested == 0 {
            0.0
        } else {
            correct as f64 / tested as f64
        });
    }
    stats
}

/// k-fold cross-validation over groups (extension beyond the paper's
/// protocols; useful for larger synthetic corpora).
///
/// # Panics
///
/// Panics if the dataset is empty or `k < 2`.
pub fn k_fold(ds: &Dataset, k: usize, cfg: &CrossValConfig) -> RunStats {
    assert!(!ds.is_empty(), "dataset must not be empty");
    assert!(k >= 2, "k must be at least 2");
    let classes = ds.label_count();
    let mut stats = RunStats {
        accuracies: Vec::with_capacity(cfg.iterations),
        confusion: ConfusionMatrix::new(classes),
        train_time: Duration::ZERO,
        test_time: Duration::ZERO,
    };
    let members = ds.group_members();

    for iter in 0..cfg.iterations {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(iter as u64));
        let order = shuffled_group_order(ds, &mut rng);
        let mut correct = 0usize;
        let mut tested = 0usize;
        for fold in 0..k {
            let test_groups: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == fold)
                .map(|(_, &g)| g)
                .collect();
            let t0 = Instant::now();
            let mut memory = Meso::new(ds.dim(), cfg.meso);
            for &g in &order {
                if test_groups.contains(&g) {
                    continue;
                }
                for &p in &members[g] {
                    memory.train(ds.features(p), ds.label(p));
                }
            }
            stats.train_time += t0.elapsed();
            if memory.pattern_count() == 0 {
                continue;
            }

            let t1 = Instant::now();
            for &g in &test_groups {
                if members[g].is_empty() {
                    continue;
                }
                let predictions: Vec<Label> = members[g]
                    .iter()
                    .filter_map(|&p| memory.classify(ds.features(p)))
                    .collect();
                if let (Some(predicted), Some(actual)) = (vote(&predictions), ds.group_label(g)) {
                    stats.confusion.record(actual, predicted);
                    tested += 1;
                    if predicted == actual {
                        correct += 1;
                    }
                }
            }
            stats.test_time += t1.elapsed();
        }
        stats.accuracies.push(if tested == 0 {
            0.0
        } else {
            correct as f64 / tested as f64
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Three well-separated 2-D blobs, grouped three patterns per group.
    fn blob_dataset(per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut ds = Dataset::new(2);
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per_class / 3 {
                let g = ds.push_group();
                for _ in 0..3 {
                    let x = cx + rng.random_range(-1.0..1.0);
                    let y = cy + rng.random_range(-1.0..1.0);
                    ds.push(vec![x, y], label, g);
                }
            }
        }
        ds
    }

    #[test]
    fn vote_majority_and_ties() {
        assert_eq!(vote(&[1, 1, 2]), Some(1));
        assert_eq!(vote(&[2, 1]), Some(1)); // tie -> smaller label
        assert_eq!(vote(&[]), None);
        assert_eq!(vote(&[5]), Some(5));
    }

    #[test]
    fn loo_removal_high_accuracy_on_separated_blobs() {
        let ds = blob_dataset(18, 7);
        let cfg = CrossValConfig {
            iterations: 3,
            seed: 42,
            loo_mode: LooMode::Removal,
            meso: MesoConfig::default(),
        };
        let stats = leave_one_out(&ds, &cfg);
        assert_eq!(stats.accuracies.len(), 3);
        assert!(
            stats.mean_accuracy() > 0.9,
            "accuracy {}",
            stats.mean_accuracy()
        );
        assert_eq!(stats.confusion.total(), 3 * 18);
    }

    #[test]
    fn loo_retrain_matches_removal_closely() {
        let ds = blob_dataset(12, 3);
        let base = CrossValConfig {
            iterations: 2,
            seed: 11,
            loo_mode: LooMode::Removal,
            meso: MesoConfig::default(),
        };
        let removal = leave_one_out(&ds, &base);
        let retrain = leave_one_out(
            &ds,
            &CrossValConfig {
                loo_mode: LooMode::Retrain,
                ..base
            },
        );
        assert!(
            (removal.mean_accuracy() - retrain.mean_accuracy()).abs() < 0.2,
            "removal {} vs retrain {}",
            removal.mean_accuracy(),
            retrain.mean_accuracy()
        );
    }

    #[test]
    fn resubstitution_at_least_as_accurate_as_loo() {
        let ds = blob_dataset(18, 5);
        let cfg = CrossValConfig {
            iterations: 3,
            seed: 1,
            loo_mode: LooMode::Removal,
            meso: MesoConfig::default(),
        };
        let loo = leave_one_out(&ds, &cfg);
        let resub = resubstitution(&ds, &cfg);
        assert!(resub.mean_accuracy() >= loo.mean_accuracy() - 0.05);
        assert!(resub.mean_accuracy() > 0.9);
    }

    #[test]
    fn pattern_level_protocol_via_ungrouped() {
        let ds = blob_dataset(18, 9).ungrouped();
        let cfg = CrossValConfig {
            iterations: 2,
            seed: 2,
            loo_mode: LooMode::Removal,
            meso: MesoConfig::default(),
        };
        let stats = leave_one_out(&ds, &cfg);
        assert!(stats.mean_accuracy() > 0.85);
    }

    #[test]
    fn k_fold_runs_and_scores() {
        let ds = blob_dataset(18, 13);
        let cfg = CrossValConfig {
            iterations: 2,
            seed: 3,
            loo_mode: LooMode::Retrain,
            meso: MesoConfig::default(),
        };
        let stats = k_fold(&ds, 3, &cfg);
        assert_eq!(stats.accuracies.len(), 2);
        assert!(stats.mean_accuracy() > 0.8);
    }

    #[test]
    fn stats_mean_and_std() {
        let stats = RunStats {
            accuracies: vec![0.8, 1.0],
            confusion: ConfusionMatrix::new(2),
            train_time: Duration::ZERO,
            test_time: Duration::ZERO,
        };
        assert!((stats.mean_accuracy() - 0.9).abs() < 1e-12);
        assert!((stats.std_accuracy() - (0.02f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(12, 21);
        let cfg = CrossValConfig {
            iterations: 2,
            seed: 77,
            loo_mode: LooMode::Removal,
            meso: MesoConfig::default(),
        };
        let a = leave_one_out(&ds, &cfg);
        let b = leave_one_out(&ds, &cfg);
        assert_eq!(a.accuracies, b.accuracies);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_dataset() {
        leave_one_out(&Dataset::new(2), &CrossValConfig::default());
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn rejects_k_one() {
        let ds = blob_dataset(6, 1);
        k_fold(&ds, 1, &CrossValConfig::default());
    }
}
