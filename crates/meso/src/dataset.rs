//! Labeled pattern datasets for training and evaluation.

/// A class label: a small integer index. Callers keep their own mapping
/// from labels to names (e.g. the ten four-letter species codes of the
/// paper's Table 1).
pub type Label = usize;

/// A labeled, optionally grouped collection of fixed-dimension patterns.
///
/// Groups model the paper's *ensembles*: each ensemble contributes one
/// or more patterns, and ensemble-level recognition votes across the
/// patterns of a group (§4, "a voting approach is used for testing each
/// ensemble"). For pattern-level datasets every pattern is its own
/// group.
///
/// # Example
///
/// ```
/// use meso::Dataset;
///
/// let mut ds = Dataset::new(3);
/// let g0 = ds.push_group();
/// ds.push(vec![0.0, 0.0, 1.0], 0, g0);
/// ds.push(vec![0.1, 0.0, 0.9], 0, g0);
/// let g1 = ds.push_group();
/// ds.push(vec![5.0, 5.0, 5.0], 1, g1);
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds.group_count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    dim: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<Label>,
    groups: Vec<usize>,
    group_count: usize,
}

impl Dataset {
    /// Creates an empty dataset of the given feature dimension.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            features: Vec::new(),
            labels: Vec::new(),
            groups: Vec::new(),
            group_count: 0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` when the dataset holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of groups (ensembles) allocated.
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Allocates a new group id (one per ensemble).
    pub fn push_group(&mut self) -> usize {
        self.group_count += 1;
        self.group_count - 1
    }

    /// Adds a pattern with its label and group.
    ///
    /// # Panics
    ///
    /// Panics if the feature length differs from [`dim`](Self::dim) or
    /// the group id has not been allocated.
    pub fn push(&mut self, features: Vec<f64>, label: Label, group: usize) {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(group < self.group_count, "group {group} not allocated");
        self.features.push(features);
        self.labels.push(label);
        self.groups.push(group);
    }

    /// Adds a pattern as its own group (pattern-level dataset).
    pub fn push_ungrouped(&mut self, features: Vec<f64>, label: Label) {
        let g = self.push_group();
        self.push(features, label, g);
    }

    /// Features of pattern `i`.
    pub fn features(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of pattern `i`.
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Group of pattern `i`.
    pub fn group(&self, i: usize) -> usize {
        self.groups[i]
    }

    /// Iterates `(features, label, group)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label, usize)> {
        self.features
            .iter()
            .zip(&self.labels)
            .zip(&self.groups)
            .map(|((f, &l), &g)| (f.as_slice(), l, g))
    }

    /// Pattern indices of every group, indexed by group id.
    pub fn group_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.group_count];
        for (i, &g) in self.groups.iter().enumerate() {
            members[g].push(i);
        }
        members
    }

    /// The label of a group (taken from its first pattern; the paper's
    /// ensembles are single-species by construction).
    ///
    /// Returns `None` for an empty group.
    pub fn group_label(&self, group: usize) -> Option<Label> {
        self.groups
            .iter()
            .position(|&g| g == group)
            .map(|i| self.labels[i])
    }

    /// Number of distinct labels (`max label + 1`); `0` when empty.
    pub fn label_count(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Derives a pattern-level dataset (each pattern its own group),
    /// discarding ensemble structure — how the paper builds its
    /// "pattern data sets" from the ensemble data sets (§4).
    pub fn ungrouped(&self) -> Dataset {
        let mut ds = Dataset::new(self.dim);
        for (f, l, _) in self.iter() {
            ds.push_ungrouped(f.to_vec(), l);
        }
        ds
    }

    /// Applies a feature transform to every pattern, keeping labels and
    /// groups (e.g. PAA reduction for the paper's PAA datasets).
    pub fn map_features<F>(&self, mut f: F) -> Dataset
    where
        F: FnMut(&[f64]) -> Vec<f64>,
    {
        let transformed: Vec<Vec<f64>> = self.features.iter().map(|x| f(x)).collect();
        let dim = transformed.first().map_or(0, std::vec::Vec::len);
        for t in &transformed {
            assert_eq!(t.len(), dim, "transform produced ragged features");
        }
        Dataset {
            dim,
            features: transformed,
            labels: self.labels.clone(),
            groups: self.groups.clone(),
            group_count: self.group_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(2);
        let g0 = ds.push_group();
        ds.push(vec![1.0, 2.0], 0, g0);
        ds.push(vec![1.1, 2.1], 0, g0);
        let g1 = ds.push_group();
        ds.push(vec![5.0, 6.0], 1, g1);
        ds
    }

    #[test]
    fn basic_accessors() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.label(2), 1);
        assert_eq!(ds.group(1), 0);
        assert_eq!(ds.label_count(), 2);
    }

    #[test]
    fn group_members_partition_patterns() {
        let ds = sample();
        let members = ds.group_members();
        assert_eq!(members, vec![vec![0, 1], vec![2]]);
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn group_label_from_first_member() {
        let ds = sample();
        assert_eq!(ds.group_label(0), Some(0));
        assert_eq!(ds.group_label(1), Some(1));
        assert_eq!(ds.group_label(7), None);
    }

    #[test]
    fn ungrouped_flattens_groups() {
        let flat = sample().ungrouped();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.group_count(), 3);
        for i in 0..flat.len() {
            assert_eq!(flat.group(i), i);
        }
    }

    #[test]
    fn map_features_transforms_dim() {
        let ds = sample();
        let halved = ds.map_features(|f| vec![f[0] + f[1]]);
        assert_eq!(halved.dim(), 1);
        assert_eq!(halved.features(0), &[3.0]);
        assert_eq!(halved.group(1), 0); // structure preserved
    }

    #[test]
    fn iter_round_trip() {
        let ds = sample();
        let collected: Vec<_> = ds.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2].1, 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dim() {
        let mut ds = Dataset::new(2);
        let g = ds.push_group();
        ds.push(vec![1.0], 0, g);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn rejects_unallocated_group() {
        let mut ds = Dataset::new(1);
        ds.push(vec![1.0], 0, 0);
    }
}
