//! # meso — a perceptual memory system
//!
//! A from-scratch implementation of MESO (Kasten & McKinley, IEEE TKDE
//! 19(4), 2007), the classifier used by *Automated Ensemble Extraction
//! and Analysis of Acoustic Data Streams* (DEPSA/ICDCS 2007) to identify
//! bird species from extracted ensembles.
//!
//! MESO is "based on the well-known leader–follower algorithm, an
//! online, incremental technique for clustering a data set. A novel
//! feature of MESO is its use of small agglomerative clusters, called
//! **sensitivity spheres**, that aggregate similar training patterns.
//! Once MESO has been trained, the system can be queried using an
//! unlabeled pattern; MESO tests the new pattern and returns the label
//! associated with the most similar training pattern or a sensitivity
//! sphere containing a set of similar training patterns and their
//! labels" (DEPSA paper, §2).
//!
//! ## What this crate provides
//!
//! - [`Meso`] — incremental training into sensitivity spheres, queries
//!   by sphere majority or nearest pattern, and **incremental pattern
//!   removal** (which makes exact-memory leave-one-out evaluation cheap);
//! - [`tree::SphereTree`] — a ball-tree index over sphere centers for
//!   sublinear nearest-sphere search (MESO's hierarchical organization);
//! - [`crossval`] — the paper's experimental protocols: leave-one-out
//!   and resubstitution (§4), plus k-fold as an extension, with ensemble
//!   grouping and vote-based recognition;
//! - [`confusion::ConfusionMatrix`] — the Table 3 artifact.
//!
//! ## Example
//!
//! ```
//! use meso::{Meso, MesoConfig};
//!
//! let mut memory = Meso::new(2, MesoConfig::default());
//! memory.train(&[0.0, 0.0], 0);
//! memory.train(&[0.1, 0.1], 0);
//! memory.train(&[5.0, 5.0], 1);
//! assert_eq!(memory.classify(&[0.05, 0.02]), Some(0));
//! assert_eq!(memory.classify(&[4.9, 5.2]), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod confusion;
pub mod crossval;
pub mod dataset;
pub mod sphere;
pub mod tree;

pub use classifier::{DeltaPolicy, Meso, MesoConfig, QueryMode};
pub use confusion::ConfusionMatrix;
pub use crossval::{leave_one_out, resubstitution, CrossValConfig, RunStats};
pub use dataset::{Dataset, Label};
pub use sphere::SensitivitySphere;
