//! Sensitivity spheres: MESO's "small agglomerative clusters … that
//! aggregate similar training patterns" (DEPSA paper §2).
//!
//! A sphere holds the running mean of its member patterns (its center)
//! and a per-label member count, and supports O(dim) incremental
//! insertion *and removal* so the classifier can implement cheap exact
//! leave-one-out evaluation.

use crate::dataset::Label;

/// One sensitivity sphere.
///
/// # Example
///
/// ```
/// use meso::SensitivitySphere;
///
/// let mut s = SensitivitySphere::new(&[1.0, 1.0], 0);
/// s.insert(&[3.0, 3.0], 0);
/// assert_eq!(s.center(), &[2.0, 2.0]);
/// assert_eq!(s.majority_label(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivitySphere {
    /// Component-wise sum of member features.
    sum: Vec<f64>,
    /// Cached center (`sum / count`).
    center: Vec<f64>,
    /// Member count per label (sparse: `(label, count)` pairs — spheres
    /// aggregate *similar* patterns, so few distinct labels appear).
    label_counts: Vec<(Label, usize)>,
    count: usize,
}

impl SensitivitySphere {
    /// Creates a sphere seeded with one pattern.
    pub fn new(features: &[f64], label: Label) -> Self {
        SensitivitySphere {
            sum: features.to_vec(),
            center: features.to_vec(),
            label_counts: vec![(label, 1)],
            count: 1,
        }
    }

    /// The sphere center: the mean of its member patterns.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Number of member patterns.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when all members have been removed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Adds a member pattern, updating the center incrementally.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from the sphere's.
    pub fn insert(&mut self, features: &[f64], label: Label) {
        assert_eq!(features.len(), self.dim(), "dimension mismatch");
        for (s, &x) in self.sum.iter_mut().zip(features) {
            *s += x;
        }
        self.count += 1;
        match self.label_counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => self.label_counts.push((label, 1)),
        }
        self.refresh_center();
    }

    /// Removes a member pattern (exact inverse of [`insert`](Self::insert)).
    ///
    /// # Panics
    ///
    /// Panics if the sphere has no member with this label, or on
    /// dimension mismatch — both indicate corrupted caller bookkeeping.
    pub fn remove(&mut self, features: &[f64], label: Label) {
        assert_eq!(features.len(), self.dim(), "dimension mismatch");
        let slot = self
            .label_counts
            .iter_mut()
            .find(|(l, c)| *l == label && *c > 0)
            .expect("removing pattern with label not present in sphere");
        slot.1 -= 1;
        self.label_counts.retain(|&(_, c)| c > 0);
        self.count -= 1;
        for (s, &x) in self.sum.iter_mut().zip(features) {
            *s -= x;
        }
        self.refresh_center();
    }

    fn refresh_center(&mut self) {
        if self.count == 0 {
            self.center.fill(0.0);
        } else {
            // Plain division (not multiplication by a reciprocal) keeps the
            // center exact when all members are identical, e.g. 49.0/49.0.
            let n = self.count as f64;
            for (c, &s) in self.center.iter_mut().zip(&self.sum) {
                *c = s / n;
            }
        }
    }

    /// The label held by the most members; ties break toward the smaller
    /// label id. `None` for an empty sphere.
    pub fn majority_label(&self) -> Option<Label> {
        self.label_counts
            .iter()
            .filter(|&&(_, c)| c > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(l, _)| l)
    }

    /// Count of members carrying `label`.
    pub fn label_count(&self, label: Label) -> usize {
        self.label_counts
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |&(_, c)| c)
    }

    /// Iterates `(label, count)` pairs.
    pub fn labels(&self) -> impl Iterator<Item = (Label, usize)> + '_ {
        self.label_counts.iter().copied()
    }

    /// Squared Euclidean distance from the center to `features`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[inline]
    pub fn distance_sq(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dim(), "dimension mismatch");
        self.center
            .iter()
            .zip(features)
            .map(|(&c, &x)| {
                let d = c - x;
                d * d
            })
            .sum()
    }

    /// Euclidean distance from the center to `features`.
    #[inline]
    pub fn distance(&self, features: &[f64]) -> f64 {
        self.distance_sq(features).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_is_member_mean() {
        let mut s = SensitivitySphere::new(&[0.0, 0.0], 0);
        s.insert(&[2.0, 4.0], 0);
        s.insert(&[4.0, 8.0], 1);
        assert_eq!(s.center(), &[2.0, 4.0]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_remove_round_trip_restores_center() {
        let mut s = SensitivitySphere::new(&[1.0, 2.0], 0);
        let before = s.clone();
        s.insert(&[10.0, -3.0], 1);
        s.remove(&[10.0, -3.0], 1);
        assert_eq!(s.len(), 1);
        for (a, b) in s.center().iter().zip(before.center()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(s.majority_label(), Some(0));
    }

    #[test]
    fn majority_label_follows_counts() {
        let mut s = SensitivitySphere::new(&[0.0], 3);
        s.insert(&[0.0], 7);
        s.insert(&[0.0], 7);
        assert_eq!(s.majority_label(), Some(7));
        assert_eq!(s.label_count(7), 2);
        assert_eq!(s.label_count(3), 1);
        assert_eq!(s.label_count(0), 0);
    }

    #[test]
    fn majority_tie_breaks_to_smaller_label() {
        let mut s = SensitivitySphere::new(&[0.0], 5);
        s.insert(&[0.0], 2);
        assert_eq!(s.majority_label(), Some(2));
    }

    #[test]
    fn empty_after_removing_all() {
        let mut s = SensitivitySphere::new(&[1.0], 0);
        s.remove(&[1.0], 0);
        assert!(s.is_empty());
        assert_eq!(s.majority_label(), None);
    }

    #[test]
    fn distances() {
        let s = SensitivitySphere::new(&[0.0, 0.0], 0);
        assert_eq!(s.distance(&[3.0, 4.0]), 5.0);
        assert_eq!(s.distance_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn labels_iterator() {
        let mut s = SensitivitySphere::new(&[0.0], 1);
        s.insert(&[0.0], 2);
        let mut pairs: Vec<_> = s.labels().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 1), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "label not present")]
    fn remove_missing_label_panics() {
        let mut s = SensitivitySphere::new(&[0.0], 0);
        s.remove(&[0.0], 9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dim_panics() {
        let mut s = SensitivitySphere::new(&[0.0, 1.0], 0);
        s.insert(&[0.0], 0);
    }
}
