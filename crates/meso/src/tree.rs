//! A ball tree over sphere centers — MESO's hierarchical organization of
//! sensitivity spheres for sublinear nearest-sphere search.
//!
//! The tree is exact: every node stores a covering radius, and the
//! best-first search prunes a subtree only when the triangle inequality
//! proves it cannot contain a closer center. Searching therefore always
//! returns the same sphere as a linear scan (ties broken by sphere id).

use std::collections::BinaryHeap;

/// Maximum number of entries in a leaf before it splits.
const LEAF_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// `(sphere id, center)` entries.
        entries: Vec<(usize, Vec<f64>)>,
    },
    Branch {
        children: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
struct NodeMeta {
    centroid: Vec<f64>,
    radius: f64,
}

/// An immutable ball-tree snapshot of sphere centers.
///
/// # Example
///
/// ```
/// use meso::tree::SphereTree;
///
/// let tree = SphereTree::build(vec![
///     (0, vec![0.0, 0.0]),
///     (1, vec![10.0, 10.0]),
///     (2, vec![0.5, 0.5]),
/// ]);
/// let (id, dist) = tree.nearest(&[0.4, 0.6]).unwrap();
/// assert_eq!(id, 2);
/// assert!(dist < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SphereTree {
    nodes: Vec<Node>,
    meta: Vec<NodeMeta>,
    root: Option<usize>,
    len: usize,
    dim: usize,
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl SphereTree {
    /// Builds a tree from `(sphere id, center)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if centers have inconsistent dimensions.
    pub fn build<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (usize, Vec<f64>)>,
    {
        let entries: Vec<(usize, Vec<f64>)> = entries.into_iter().collect();
        let dim = entries.first().map_or(0, |(_, c)| c.len());
        for (_, c) in &entries {
            assert_eq!(c.len(), dim, "inconsistent center dimensions");
        }
        let mut tree = SphereTree {
            nodes: Vec::new(),
            meta: Vec::new(),
            root: None,
            len: entries.len(),
            dim,
        };
        if !entries.is_empty() {
            tree.root = Some(tree.build_node(entries));
        }
        tree
    }

    /// Number of indexed spheres.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree indexes no spheres.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature dimension of the indexed centers.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn build_node(&mut self, entries: Vec<(usize, Vec<f64>)>) -> usize {
        let centroid = centroid_of(&entries, self.dim);
        let radius = entries
            .iter()
            .map(|(_, c)| distance(&centroid, c))
            .fold(0.0, f64::max);
        if entries.len() <= LEAF_CAPACITY {
            self.nodes.push(Node::Leaf { entries });
            self.meta.push(NodeMeta { centroid, radius });
            return self.nodes.len() - 1;
        }
        // Split by farthest pair seeding (standard ball-tree split).
        let (seed_a, seed_b) = farthest_pair(&entries);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in entries {
            let da = distance(&e.1, &seed_a);
            let db = distance(&e.1, &seed_b);
            if da <= db {
                left.push(e);
            } else {
                right.push(e);
            }
        }
        // Degenerate split (identical centers): force balance.
        if left.is_empty() || right.is_empty() {
            let mut all = left;
            all.append(&mut right);
            let half = all.len() / 2;
            right = all.split_off(half);
            left = all;
        }
        let li = self.build_node(left);
        let ri = self.build_node(right);
        self.nodes.push(Node::Branch {
            children: vec![li, ri],
        });
        self.meta.push(NodeMeta { centroid, radius });
        self.nodes.len() - 1
    }

    /// Returns the `(sphere id, distance)` of the center nearest to
    /// `query`, or `None` for an empty tree. Exact; ties break to the
    /// smaller sphere id.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the indexed dimension.
    pub fn nearest(&self, query: &[f64]) -> Option<(usize, f64)> {
        // Best-first search over nodes keyed by optimistic distance.
        #[derive(PartialEq)]
        struct Candidate {
            optimistic: f64,
            node: usize,
        }
        impl Eq for Candidate {}
        impl PartialOrd for Candidate {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Candidate {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on optimistic distance via reversed compare.
                other
                    .optimistic
                    .total_cmp(&self.optimistic)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }

        let root = self.root?;
        assert_eq!(query.len(), self.dim, "query dimension mismatch");

        let optimistic = |node: usize| -> f64 {
            let m = &self.meta[node];
            (distance(query, &m.centroid) - m.radius).max(0.0)
        };

        let mut heap = BinaryHeap::new();
        heap.push(Candidate {
            optimistic: optimistic(root),
            node: root,
        });
        let mut best: Option<(usize, f64)> = None;

        while let Some(Candidate {
            optimistic: opt,
            node,
        }) = heap.pop()
        {
            if let Some((_, bd)) = best {
                if opt > bd {
                    break; // nothing left can beat the current best
                }
            }
            match &self.nodes[node] {
                Node::Leaf { entries } => {
                    for (id, center) in entries {
                        let d = distance(query, center);
                        let better = match best {
                            None => true,
                            Some((bid, bd)) => d < bd || (d == bd && *id < bid),
                        };
                        if better {
                            best = Some((*id, d));
                        }
                    }
                }
                Node::Branch { children } => {
                    for &c in children {
                        heap.push(Candidate {
                            optimistic: optimistic(c),
                            node: c,
                        });
                    }
                }
            }
        }
        best
    }
}

fn centroid_of(entries: &[(usize, Vec<f64>)], dim: usize) -> Vec<f64> {
    let mut c = vec![0.0; dim];
    if entries.is_empty() {
        return c;
    }
    for (_, center) in entries {
        for (acc, &x) in c.iter_mut().zip(center) {
            *acc += x;
        }
    }
    let inv = 1.0 / entries.len() as f64;
    for acc in &mut c {
        *acc *= inv;
    }
    c
}

/// Approximate farthest pair: pick any point, find its farthest
/// neighbor `a`, then `a`'s farthest neighbor `b` (two sweeps).
fn farthest_pair(entries: &[(usize, Vec<f64>)]) -> (Vec<f64>, Vec<f64>) {
    let first = &entries[0].1;
    let a = entries
        .iter()
        .max_by(|x, y| distance(&x.1, first).total_cmp(&distance(&y.1, first)))
        .map(|(_, c)| c.clone())
        .expect("non-empty entries");
    let b = entries
        .iter()
        .max_by(|x, y| distance(&x.1, &a).total_cmp(&distance(&y.1, &a)))
        .map(|(_, c)| c.clone())
        .expect("non-empty entries");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_centers(n: usize) -> Vec<(usize, Vec<f64>)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (i, vec![x, y])
            })
            .collect()
    }

    fn linear_nearest(entries: &[(usize, Vec<f64>)], q: &[f64]) -> Option<(usize, f64)> {
        entries
            .iter()
            .map(|(id, c)| (*id, distance(q, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    #[test]
    fn empty_tree() {
        let t = SphereTree::build(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.nearest(&[]), None);
    }

    #[test]
    fn single_entry() {
        let t = SphereTree::build(vec![(42, vec![1.0, 2.0])]);
        let (id, d) = t.nearest(&[1.0, 2.0]).unwrap();
        assert_eq!(id, 42);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn matches_linear_scan_on_grid() {
        let entries = grid_centers(100);
        let tree = SphereTree::build(entries.clone());
        for i in 0..50 {
            let q = vec![(i as f64) * 0.37 % 10.0, (i as f64) * 0.73 % 10.0];
            assert_eq!(
                tree.nearest(&q),
                linear_nearest(&entries, &q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn handles_duplicate_centers() {
        let entries: Vec<(usize, Vec<f64>)> = (0..30).map(|i| (i, vec![1.0, 1.0])).collect();
        let tree = SphereTree::build(entries);
        let (id, d) = tree.nearest(&[1.0, 1.0]).unwrap();
        assert_eq!(id, 0); // tie breaks to smallest id
        assert_eq!(d, 0.0);
    }

    #[test]
    fn high_dimensional_centers() {
        let entries: Vec<(usize, Vec<f64>)> = (0..64)
            .map(|i| (i, (0..105).map(|j| ((i * j) % 17) as f64).collect()))
            .collect();
        let tree = SphereTree::build(entries.clone());
        for probe in [0usize, 13, 40, 63] {
            let q = entries[probe].1.clone();
            let (id, _) = tree.nearest(&q).unwrap();
            let (lid, _) = linear_nearest(&entries, &q).unwrap();
            assert_eq!(id, lid);
        }
    }

    #[test]
    fn len_reports_entry_count() {
        assert_eq!(SphereTree::build(grid_centers(37)).len(), 37);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_query_dim() {
        let tree = SphereTree::build(vec![(0, vec![0.0, 0.0])]);
        tree.nearest(&[1.0]);
    }
}
