//! Property-based tests for the MESO classifier.

use meso::classifier::{DeltaPolicy, Meso, MesoConfig, QueryMode};
use meso::crossval::vote;
use meso::tree::SphereTree;
use meso::ConfusionMatrix;
use proptest::prelude::*;

fn pattern_set(dim: usize, max: usize) -> impl Strategy<Value = Vec<(Vec<f64>, usize)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, dim..=dim),
            0usize..5,
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every live pattern is accounted for in exactly one sphere, and
    /// sphere member counts sum to the live pattern count.
    #[test]
    fn sphere_counts_partition_patterns(data in pattern_set(3, 60)) {
        let mut m = Meso::new(3, MesoConfig::default());
        for (f, l) in &data {
            m.train(f, *l);
        }
        let total: usize = m.spheres().iter().map(meso::SensitivitySphere::len).sum();
        prop_assert_eq!(total, data.len());
        prop_assert_eq!(m.pattern_count(), data.len());
    }

    /// Classification always returns a label that was trained.
    #[test]
    fn classify_returns_trained_label(
        data in pattern_set(2, 40),
        query in prop::collection::vec(-200.0f64..200.0, 2..=2),
    ) {
        let mut m = Meso::new(2, MesoConfig::default());
        let mut labels = std::collections::HashSet::new();
        for (f, l) in &data {
            m.train(f, *l);
            labels.insert(*l);
        }
        let predicted = m.classify(&query).unwrap();
        prop_assert!(labels.contains(&predicted));
    }

    /// Remove + restore is an exact identity on classification results.
    #[test]
    fn remove_restore_identity(
        data in pattern_set(2, 40),
        victim in 0usize..40,
        query in prop::collection::vec(-50.0f64..50.0, 2..=2),
    ) {
        let mut m = Meso::new(2, MesoConfig::default());
        let ids: Vec<_> = data.iter().map(|(f, l)| m.train(f, *l)).collect();
        let before = m.classify(&query);
        let id = ids[victim % ids.len()];
        m.remove(id);
        m.restore(id);
        prop_assert_eq!(m.classify(&query), before);
        prop_assert_eq!(m.pattern_count(), data.len());
    }

    /// With a single trained label, every query (in either query mode)
    /// predicts that label.
    #[test]
    fn single_label_memory_always_predicts_it(
        features in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..=2),
            1..40,
        ),
        label in 0usize..7,
        query in prop::collection::vec(-500.0f64..500.0, 2..=2),
        nearest_mode in any::<bool>(),
    ) {
        let cfg = MesoConfig {
            delta_policy: DeltaPolicy::default(),
            query_mode: if nearest_mode {
                QueryMode::NearestPattern
            } else {
                QueryMode::SphereMajority
            },
        };
        let mut m = Meso::new(2, cfg);
        for f in &features {
            m.train(f, label);
        }
        prop_assert_eq!(m.classify(&query), Some(label));
    }

    /// The ball-tree index always agrees with the linear scan.
    #[test]
    fn tree_matches_linear(
        centers in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 4..=4),
            1..80,
        ),
        query in prop::collection::vec(-150.0f64..150.0, 4..=4),
    ) {
        let entries: Vec<(usize, Vec<f64>)> =
            centers.iter().cloned().enumerate().collect();
        let tree = SphereTree::build(entries.clone());
        let (tid, td) = tree.nearest(&query).unwrap();
        let (lid, ld) = entries
            .iter()
            .map(|(id, c)| {
                let d: f64 = c.iter().zip(&query).map(|(&a, &b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                (*id, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap();
        prop_assert_eq!(tid, lid);
        prop_assert!((td - ld).abs() < 1e-9);
    }

    /// vote() always returns the modal label.
    #[test]
    fn vote_returns_mode(preds in prop::collection::vec(0usize..6, 1..30)) {
        let winner = vote(&preds).unwrap();
        let count = |l: usize| preds.iter().filter(|&&p| p == l).count();
        for l in 0..6 {
            prop_assert!(count(winner) >= count(l));
        }
    }

    /// Confusion-matrix accuracy equals manual correct/total.
    #[test]
    fn confusion_accuracy_consistent(
        outcomes in prop::collection::vec((0usize..4, 0usize..4), 1..100),
    ) {
        let mut cm = ConfusionMatrix::new(4);
        let mut correct = 0usize;
        for &(a, p) in &outcomes {
            cm.record(a, p);
            if a == p {
                correct += 1;
            }
        }
        prop_assert_eq!(cm.total(), outcomes.len() as u64);
        prop_assert!((cm.accuracy() - correct as f64 / outcomes.len() as f64).abs() < 1e-12);
    }
}
