//! Static chain verification (DESIGN.md §15).
//!
//! A pipeline chain is data: a sequence of operators, each of which
//! declares — through [`Operator::signature`] — which data-record
//! classes it reacts to, what it emits, and what it does to scope
//! discipline. [`analyze`](crate::pipeline::Pipeline::check) walks a
//! chain propagating an **abstract record-set** (a set of
//! [`RecordClass`]es over-approximating the data records that can be in
//! flight at that point) through each stage's declared transfer
//! function and reports typed [`Diagnostic`]s:
//!
//! - [`DiagnosticKind::TypeMismatch`] — a record class produced
//!   upstream is *guaranteed* to make a stage fail at runtime (wrong
//!   payload kind for a strict stage, or any data record reaching a
//!   stage that rejects unmatched records).
//! - [`DiagnosticKind::DeadStage`] — none of the classes a stage
//!   consumes is ever produced upstream: the stage's distinctive work
//!   can never execute (the classic mis-ordered chain, e.g. `trigger`
//!   placed before `saxanomaly`).
//! - [`DiagnosticKind::ScopeImbalance`] — a stage opens scopes no later
//!   stage (or the stage itself, at end-of-stream) closes, or closes
//!   scopes that are never opened.
//! - [`DiagnosticKind::ShardUnsafe`] — an operator whose
//!   [`Operator::clone_op`] returns `None`; the chain cannot be
//!   sharded. A warning under plain [`Pipeline::check`], an error when
//!   checking on behalf of [`Pipeline::run_sharded`].
//! - [`DiagnosticKind::UnknownSignature`] — an operator with no
//!   declared signature. A **warning**, never an error: signatures are
//!   opt-in, an undeclared operator may do anything (so the analyzer
//!   resets to the unknown state and stays sound), and failing the run
//!   would punish exactly the user-defined closures the pipeline API
//!   encourages.
//!
//! The analysis is deliberately over-approximate in the sound
//! direction: it only reports a problem when the declared signatures
//! *prove* one, so a clean chain is never rejected. The price is missed
//! detections around undeclared operators — which is what the
//! `UnknownSignature` warning surfaces.
//!
//! ```
//! use dynamic_river::prelude::*;
//!
//! let mut pipeline = Pipeline::new();
//! pipeline.add(MapPayload::new("gain", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 2.0);
//! }));
//! // A closure operator with no declared signature: legal, but the
//! // analyzer loses precision from this stage on and says so.
//! pipeline.add(FnOp::new("mystery", |record, out: &mut dyn Sink| {
//!     out.push(record)
//! }));
//!
//! let diags = pipeline.check();
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].kind, DiagnosticKind::UnknownSignature);
//! assert_eq!(diags[0].kind.code(), "RL0005");
//! assert!(diags[0].render().starts_with("warning[RL0005]"));
//! ```
//!
//! [`Pipeline::check`]: crate::pipeline::Pipeline::check
//! [`Pipeline::run_sharded`]: crate::pipeline::Pipeline::run_sharded
//! [`Operator::signature`]: crate::operator::Operator::signature
//! [`Operator::clone_op`]: crate::operator::Operator::clone_op

use std::collections::BTreeSet;
use std::fmt;

use crate::operator::Operator;
use crate::record::Payload;

/// The payload kind of a data record — [`Payload`] without the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PayloadKind {
    /// No payload.
    Empty,
    /// Real samples.
    F64,
    /// Interleaved (re, im) complex samples.
    Complex,
    /// Raw bytes.
    Bytes,
    /// UTF-8 text.
    Text,
    /// Key/value string pairs.
    Pairs,
}

impl PayloadKind {
    /// The kind of a concrete payload.
    pub fn of(payload: &Payload) -> PayloadKind {
        match payload {
            Payload::Empty => PayloadKind::Empty,
            Payload::F64(_) => PayloadKind::F64,
            Payload::Complex(_) => PayloadKind::Complex,
            Payload::Bytes(_) => PayloadKind::Bytes,
            Payload::Text(_) => PayloadKind::Text,
            Payload::Pairs(_) => PayloadKind::Pairs,
        }
    }

    fn label(self) -> &'static str {
        match self {
            PayloadKind::Empty => "empty",
            PayloadKind::F64 => "f64",
            PayloadKind::Complex => "complex",
            PayloadKind::Bytes => "bytes",
            PayloadKind::Text => "text",
            PayloadKind::Pairs => "pairs",
        }
    }
}

/// An abstract class of data records: a `subtype` constraint and a
/// payload-kind constraint, each optional (`None` = any).
///
/// Classes are the elements of the abstract record-set the analyzer
/// pushes through a chain. [`RecordClass::ANY`] (both fields `None`)
/// describes a completely unknown stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordClass {
    /// Record subtype, or `None` for any subtype.
    pub subtype: Option<u16>,
    /// Payload kind, or `None` for any payload.
    pub payload: Option<PayloadKind>,
}

impl RecordClass {
    /// The class of all data records.
    pub const ANY: RecordClass = RecordClass {
        subtype: None,
        payload: None,
    };

    /// A fully concrete class: one subtype, one payload kind.
    pub const fn of(subtype: u16, payload: PayloadKind) -> RecordClass {
        RecordClass {
            subtype: Some(subtype),
            payload: Some(payload),
        }
    }

    /// All records of one subtype, any payload.
    pub const fn subtype(subtype: u16) -> RecordClass {
        RecordClass {
            subtype: Some(subtype),
            payload: None,
        }
    }

    /// `true` when some record could belong to both classes.
    pub fn overlaps(&self, other: &RecordClass) -> bool {
        fits(self.subtype, other.subtype) && fits(self.payload, other.payload)
    }

    /// `true` when every record of `self` also belongs to `other`.
    pub fn within(&self, other: &RecordClass) -> bool {
        subsumes(other.subtype, self.subtype) && subsumes(other.payload, self.payload)
    }
}

/// Two optional constraints are compatible (either side wildcards or
/// both agree).
fn fits<T: PartialEq>(a: Option<T>, b: Option<T>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// Constraint `outer` subsumes constraint `inner`.
fn subsumes<T: PartialEq>(outer: Option<T>, inner: Option<T>) -> bool {
    match (outer, inner) {
        (None, _) => true,
        (Some(x), Some(y)) => x == y,
        (Some(_), None) => false,
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.subtype {
            Some(s) => write!(f, "#{s}")?,
            None => write!(f, "*")?,
        }
        match self.payload {
            Some(p) => write!(f, "/{}", p.label()),
            None => write!(f, "/*"),
        }
    }
}

/// What a stage does with data records matching none of its
/// [`Signature::consumes`] classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnmatchedPolicy {
    /// Unmatched data records pass through unchanged (the common case).
    Keep,
    /// Unmatched data records are silently dropped (e.g. `cutter`
    /// discarding scores inside a clip).
    Drop,
    /// Unmatched data records are a runtime error.
    Error,
}

/// A stage's effect on scope discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeEffect {
    /// Passes scope records through without adding or removing any.
    Preserves,
    /// Opens scopes of the given type **and closes every one of them
    /// itself** (by the matching point or at end-of-stream), so the
    /// chain stays balanced — e.g. `cutter` wrapping ensembles.
    OpensBalanced {
        /// The `scope_type` of the scopes opened.
        scope_type: u16,
    },
    /// Net-opens scopes of the given type: some remain open unless a
    /// later stage closes them.
    Opens {
        /// The `scope_type` of the scopes opened.
        scope_type: u16,
    },
    /// Net-closes scopes of the given type opened elsewhere.
    Closes {
        /// The `scope_type` of the scopes closed.
        scope_type: u16,
    },
    /// Normalizes scope discipline (drops stray closes, force-closes
    /// leftovers at end-of-stream) — e.g.
    /// [`ScopeRepair`](crate::ops::ScopeRepair). Downstream of a
    /// repairing stage the analyzer restarts scope tracking.
    Repairs,
}

/// A declared operator signature: the operator's abstract transfer
/// function, scope effect and flush behavior — everything the
/// [chain analyzer](crate::pipeline::Pipeline::check) needs to reason
/// about the operator without running it.
///
/// Scope **markers** (open/close records) always flow through every
/// operator and are not part of `consumes`/`produces`; only data
/// records are classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Data-record classes the operator reacts to. Empty means the
    /// operator's emissions are not data-driven (e.g. triggered by
    /// scope boundaries): [`produces`](Self::produces) then counts as
    /// always reachable.
    pub consumes: Vec<RecordClass>,
    /// `true` when consumed records also continue downstream (the
    /// operator taps rather than transforms — e.g. `saxanomaly`
    /// forwarding audio alongside the scores it emits).
    pub passes_matched: bool,
    /// Data-record classes the operator emits when it fires.
    pub produces: Vec<RecordClass>,
    /// Treatment of data records matching no `consumes` class.
    pub unmatched: UnmatchedPolicy,
    /// `true` when a record whose subtype matches a `consumes` class
    /// but whose payload kind differs is a **runtime error** (e.g.
    /// `trigger` on a score record without an F64 payload) rather than
    /// falling through to [`unmatched`](Self::unmatched).
    pub strict_payload: bool,
    /// Effect on scope discipline.
    pub scope: ScopeEffect,
    /// `true` when the operator emits buffered records at
    /// end-of-stream ([`Operator::on_eos`]).
    ///
    /// [`Operator::on_eos`]: crate::operator::Operator::on_eos
    pub flushes_at_eos: bool,
}

impl Signature {
    /// The identity signature: passes every record through unchanged.
    pub fn passthrough() -> Signature {
        Signature {
            consumes: vec![RecordClass::ANY],
            passes_matched: true,
            produces: Vec::new(),
            unmatched: UnmatchedPolicy::Keep,
            strict_payload: false,
            scope: ScopeEffect::Preserves,
            flushes_at_eos: false,
        }
    }

    /// A 1:1 transformer: records of `from` become records of `to`,
    /// everything else passes through.
    pub fn map(from: RecordClass, to: RecordClass) -> Signature {
        Signature {
            consumes: vec![from],
            passes_matched: false,
            produces: vec![to],
            unmatched: UnmatchedPolicy::Keep,
            strict_payload: false,
            scope: ScopeEffect::Preserves,
            flushes_at_eos: false,
        }
    }

    /// Builder: replace the scope effect.
    #[must_use]
    pub fn with_scope(mut self, scope: ScopeEffect) -> Signature {
        self.scope = scope;
        self
    }

    /// Builder: replace the unmatched-record policy.
    #[must_use]
    pub fn with_unmatched(mut self, policy: UnmatchedPolicy) -> Signature {
        self.unmatched = policy;
        self
    }

    /// Builder: mark mismatched payload kinds on matching subtypes as
    /// runtime errors.
    #[must_use]
    pub fn with_strict_payload(mut self) -> Signature {
        self.strict_payload = true;
        self
    }

    /// Builder: mark the operator as flushing at end-of-stream.
    #[must_use]
    pub fn with_eos_flush(mut self) -> Signature {
        self.flushes_at_eos = true;
        self
    }

    /// Builder: consumed records also continue downstream.
    #[must_use]
    pub fn with_passthrough_of_matched(mut self) -> Signature {
        self.passes_matched = true;
        self
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth surfacing, does not gate execution.
    Warning,
    /// The chain is provably broken; pre-flight checks refuse to run it.
    Error,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The category of a [`Diagnostic`] (see the module docs for the
/// catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A record class produced upstream is guaranteed to fail at this
    /// stage.
    TypeMismatch,
    /// No class this stage consumes is ever produced upstream.
    DeadStage,
    /// Scopes opened but never closed, or closed but never opened.
    ScopeImbalance,
    /// The operator cannot be duplicated ([`Operator::clone_op`]
    /// returns `None`), so the chain cannot be sharded.
    ///
    /// [`Operator::clone_op`]: crate::operator::Operator::clone_op
    ShardUnsafe,
    /// The operator declares no [`Signature`]; the analyzer treats its
    /// output as unknown from this stage on.
    UnknownSignature,
}

impl DiagnosticKind {
    /// Stable diagnostic code (used by `river-lint` reports).
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticKind::TypeMismatch => "RL0001",
            DiagnosticKind::DeadStage => "RL0002",
            DiagnosticKind::ScopeImbalance => "RL0003",
            DiagnosticKind::ShardUnsafe => "RL0004",
            DiagnosticKind::UnknownSignature => "RL0005",
        }
    }
}

/// One finding of the chain analyzer, anchored to a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Diagnostic category.
    pub kind: DiagnosticKind,
    /// Zero-based stage index in the chain.
    pub stage: usize,
    /// Name of the operator at that stage.
    pub operator: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// rustc-style multi-line rendering (used by `river-lint`).
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> stage {}: operator `{}`",
            self.severity.label(),
            self.kind.code(),
            self.message,
            self.stage,
            self.operator,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] stage {} `{}`: {}",
            self.severity.label(),
            self.kind.code(),
            self.stage,
            self.operator,
            self.message
        )
    }
}

/// Options for [`Pipeline::check_with`](crate::pipeline::Pipeline::check_with).
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Abstract classes of the data records the source feeds into the
    /// chain. Defaults to `[RecordClass::ANY]` (completely unknown
    /// input), which makes the analysis maximally permissive — seed
    /// concrete classes (e.g. audio records) for full precision.
    pub input: Vec<RecordClass>,
    /// The `scope_type`s of scopes that may already be present in the
    /// input stream, or `None` when unknown. With a declared set, a
    /// stage closing scopes of an undeclared type (that no earlier
    /// stage opens) is an error.
    pub input_scope_types: Option<Vec<u16>>,
    /// `true` when checking on behalf of a sharded run:
    /// [`DiagnosticKind::ShardUnsafe`] findings become errors instead
    /// of warnings.
    pub sharded: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            input: vec![RecordClass::ANY],
            input_scope_types: None,
            sharded: false,
        }
    }
}

/// Walks the chain, propagating the abstract record-set through each
/// stage's declared signature. `probe_clone` controls whether each
/// operator's `clone_op` is exercised to detect shard-unsafe stages
/// (skipped on the streaming pre-flight path, where shardability is
/// irrelevant and probing would clone operator state on every run).
pub(crate) fn analyze_ops(
    ops: &[Box<dyn Operator>],
    opts: &CheckOptions,
    probe_clone: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut classes: BTreeSet<RecordClass> = opts.input.iter().copied().collect();
    // Scope bookkeeping: the stack of net-opened scopes (scope_type,
    // opener stage, opener name), the set of scope types known to be
    // present in the stream at this point, and whether that set is
    // exhaustive (it stops being exhaustive after an unknown-signature
    // or repairing stage).
    let mut open_stack: Vec<(u16, usize, String)> = Vec::new();
    let mut known_types: BTreeSet<u16> = opts.input_scope_types.iter().flatten().copied().collect();
    let mut scope_known = opts.input_scope_types.is_some();

    for (stage, op) in ops.iter().enumerate() {
        if probe_clone && op.clone_op().is_none() {
            diags.push(Diagnostic {
                severity: if opts.sharded {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                kind: DiagnosticKind::ShardUnsafe,
                stage,
                operator: op.name().to_string(),
                message: format!(
                    "operator `{}` does not support duplication (clone_op returned None); \
                     chains containing it cannot be sharded",
                    op.name()
                ),
            });
        }

        let Some(sig) = op.signature() else {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                kind: DiagnosticKind::UnknownSignature,
                stage,
                operator: op.name().to_string(),
                message: format!(
                    "operator `{}` declares no signature; the analyzer cannot see \
                     through it (its output is treated as unknown)",
                    op.name()
                ),
            });
            // An undeclared operator may emit anything and do anything
            // to scopes: reset to the unknown state (sound: no false
            // positives downstream, at the price of missed detections).
            classes = [RecordClass::ANY].into_iter().collect();
            open_stack.clear();
            scope_known = false;
            continue;
        };

        // --- data-record transfer function ---------------------------
        let mut out: BTreeSet<RecordClass> = BTreeSet::new();
        let mut any_matched = false;
        for &class in &classes {
            let mut full_match = false;
            let mut payload_clash = false;
            for consume in &sig.consumes {
                if class.overlaps(consume) {
                    full_match = true;
                } else if fits(class.subtype, consume.subtype)
                    && !fits(class.payload, consume.payload)
                {
                    payload_clash = true;
                }
            }
            if full_match {
                any_matched = true;
                if sig.passes_matched {
                    out.insert(class);
                }
            }
            let fully_consumed = sig.consumes.iter().any(|c| class.within(c));
            if fully_consumed {
                continue;
            }
            if payload_clash && sig.strict_payload && !full_match {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    kind: DiagnosticKind::TypeMismatch,
                    stage,
                    operator: op.name().to_string(),
                    message: format!(
                        "operator `{}` requires a different payload kind for records \
                         of class {class} produced upstream (a guaranteed runtime error)",
                        op.name()
                    ),
                });
                continue;
            }
            match sig.unmatched {
                UnmatchedPolicy::Keep => {
                    out.insert(class);
                }
                UnmatchedPolicy::Drop => {}
                UnmatchedPolicy::Error => {
                    if !full_match && !payload_clash {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            kind: DiagnosticKind::TypeMismatch,
                            stage,
                            operator: op.name().to_string(),
                            message: format!(
                                "operator `{}` rejects data records of class {class} \
                                 produced upstream (a guaranteed runtime error)",
                                op.name()
                            ),
                        });
                    }
                }
            }
        }
        let fires = sig.consumes.is_empty() || any_matched;
        if fires {
            out.extend(sig.produces.iter().copied());
        }
        if !any_matched && !sig.consumes.is_empty() && !sig.consumes.contains(&RecordClass::ANY) {
            let wanted = sig
                .consumes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            diags.push(Diagnostic {
                severity: Severity::Error,
                kind: DiagnosticKind::DeadStage,
                stage,
                operator: op.name().to_string(),
                message: format!(
                    "operator `{}` consumes {wanted}, but no upstream stage produces \
                     any of these classes — the stage can never fire",
                    op.name()
                ),
            });
        }
        classes = out;

        // --- scope effect --------------------------------------------
        match sig.scope {
            ScopeEffect::Preserves => {}
            ScopeEffect::OpensBalanced { scope_type } => {
                known_types.insert(scope_type);
            }
            ScopeEffect::Opens { scope_type } => {
                open_stack.push((scope_type, stage, op.name().to_string()));
                known_types.insert(scope_type);
            }
            ScopeEffect::Closes { scope_type } => {
                if let Some(pos) = open_stack.iter().rposition(|(t, _, _)| *t == scope_type) {
                    open_stack.remove(pos);
                } else if scope_known && !known_types.contains(&scope_type) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        kind: DiagnosticKind::ScopeImbalance,
                        stage,
                        operator: op.name().to_string(),
                        message: format!(
                            "operator `{}` closes scopes of type {scope_type}, but no \
                             earlier stage opens them and the declared input contains \
                             no such scopes",
                            op.name()
                        ),
                    });
                }
            }
            ScopeEffect::Repairs => {
                // Everything upstream is normalized; restart tracking.
                open_stack.clear();
                scope_known = false;
            }
        }
    }

    for (scope_type, stage, operator) in open_stack {
        diags.push(Diagnostic {
            severity: Severity::Error,
            kind: DiagnosticKind::ScopeImbalance,
            stage,
            operator: operator.clone(),
            message: format!(
                "operator `{operator}` opens scopes of type {scope_type} that no later \
                 stage closes — the output stream is left unbalanced"
            ),
        });
    }

    diags.sort_by_key(|d| (d.stage, std::cmp::Reverse(d.severity)));
    diags
}

/// `true` when any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PipelineError;
    use crate::operator::Sink;
    use crate::ops::{Passthrough, ScopeRepair, ScopeSum};
    use crate::pipeline::Pipeline;
    use crate::record::Record;

    /// Test operator with a fully scripted signature.
    struct Scripted {
        name: &'static str,
        sig: Option<Signature>,
        cloneable: bool,
    }

    impl Operator for Scripted {
        fn name(&self) -> &str {
            self.name
        }
        fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
            out.push(record)
        }
        fn signature(&self) -> Option<Signature> {
            self.sig.clone()
        }
        fn clone_op(&self) -> Option<Box<dyn Operator>> {
            self.cloneable.then(|| {
                Box::new(Scripted {
                    name: self.name,
                    sig: self.sig.clone(),
                    cloneable: true,
                }) as Box<dyn Operator>
            })
        }
    }

    fn scripted(name: &'static str, sig: Signature) -> Scripted {
        Scripted {
            name,
            sig: Some(sig),
            cloneable: true,
        }
    }

    const A: RecordClass = RecordClass::of(1, PayloadKind::F64);
    const B: RecordClass = RecordClass::of(2, PayloadKind::F64);
    const C: RecordClass = RecordClass::of(3, PayloadKind::F64);

    #[test]
    fn clean_map_chain_has_no_diagnostics() {
        let mut p = Pipeline::new();
        p.add(scripted("a2b", Signature::map(A, B)));
        p.add(scripted("b2c", Signature::map(B, C)));
        let diags = p.check_with(&CheckOptions {
            input: vec![A],
            ..CheckOptions::default()
        });
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mis_ordered_chain_is_a_named_dead_stage() {
        // b2c placed before a2b: nothing upstream produces B.
        let mut p = Pipeline::new();
        p.add(scripted("b2c", Signature::map(B, C)));
        p.add(scripted("a2b", Signature::map(A, B)));
        let diags = p.check_with(&CheckOptions {
            input: vec![A],
            ..CheckOptions::default()
        });
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::DeadStage)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].operator, "b2c");
        assert_eq!(dead[0].stage, 0);
        assert_eq!(dead[0].severity, Severity::Error);
    }

    #[test]
    fn strict_payload_clash_is_a_type_mismatch() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "cplx",
            Signature::map(A, RecordClass::of(1, PayloadKind::Complex)),
        ));
        p.add(scripted(
            "strict",
            Signature::map(A, B).with_strict_payload(),
        ));
        let diags = p.check_with(&CheckOptions {
            input: vec![A],
            ..CheckOptions::default()
        });
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::TypeMismatch && d.operator == "strict"));
    }

    #[test]
    fn rejecting_stage_flags_unconsumed_classes() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "strict-a",
            Signature::map(A, A).with_unmatched(UnmatchedPolicy::Error),
        ));
        let diags = p.check_with(&CheckOptions {
            input: vec![A, B],
            ..CheckOptions::default()
        });
        let mismatches: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::TypeMismatch)
            .collect();
        assert_eq!(mismatches.len(), 1, "{diags:?}");
        assert_eq!(mismatches[0].operator, "strict-a");
    }

    #[test]
    fn unclosed_scope_is_an_imbalance_naming_the_opener() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "opener",
            Signature::passthrough().with_scope(ScopeEffect::Opens { scope_type: 9 }),
        ));
        let diags = p.check();
        let scope: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::ScopeImbalance)
            .collect();
        assert_eq!(scope.len(), 1);
        assert_eq!(scope[0].operator, "opener");
        assert_eq!(scope[0].severity, Severity::Error);
    }

    #[test]
    fn matched_open_close_pair_is_balanced() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "opener",
            Signature::passthrough().with_scope(ScopeEffect::Opens { scope_type: 9 }),
        ));
        p.add(scripted(
            "closer",
            Signature::passthrough().with_scope(ScopeEffect::Closes { scope_type: 9 }),
        ));
        assert!(p.check().is_empty());
    }

    #[test]
    fn close_of_undeclared_scope_type_is_flagged_only_with_known_input() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "closer",
            Signature::passthrough().with_scope(ScopeEffect::Closes { scope_type: 9 }),
        ));
        // Unknown input scopes: the close may be legitimate.
        assert!(p.check().is_empty());
        // Declared scope-free input: provably stray.
        let diags = p.check_with(&CheckOptions {
            input_scope_types: Some(vec![]),
            ..CheckOptions::default()
        });
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::ScopeImbalance && d.operator == "closer"));
    }

    #[test]
    fn repair_stage_resets_scope_tracking() {
        let mut p = Pipeline::new();
        p.add(scripted(
            "opener",
            Signature::passthrough().with_scope(ScopeEffect::Opens { scope_type: 9 }),
        ));
        p.add(ScopeRepair::new());
        assert!(
            p.check().is_empty(),
            "a repairing stage closes leftover scopes at EOS"
        );
    }

    #[test]
    fn non_cloneable_operator_warns_then_errors_when_sharded() {
        let mut p = Pipeline::new();
        p.add(Scripted {
            name: "opaque",
            sig: Some(Signature::passthrough()),
            cloneable: false,
        });
        let plain = p.check();
        assert!(plain
            .iter()
            .any(|d| d.kind == DiagnosticKind::ShardUnsafe && d.severity == Severity::Warning));
        let sharded = p.check_with(&CheckOptions {
            sharded: true,
            ..CheckOptions::default()
        });
        assert!(sharded.iter().any(|d| d.kind == DiagnosticKind::ShardUnsafe
            && d.severity == Severity::Error
            && d.operator == "opaque"));
    }

    #[test]
    fn unknown_signature_warns_and_resets_the_analysis() {
        let mut p = Pipeline::new();
        p.add(Scripted {
            name: "mystery",
            sig: None,
            cloneable: true,
        });
        // Downstream of the unknown stage anything may appear, so a
        // would-be dead stage is not flagged.
        p.add(scripted("b2c", Signature::map(B, C)));
        let diags = p.check_with(&CheckOptions {
            input: vec![A],
            ..CheckOptions::default()
        });
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagnosticKind::UnknownSignature
                    && d.severity == Severity::Warning)
        );
        assert!(!diags.iter().any(|d| d.kind == DiagnosticKind::DeadStage));
    }

    #[test]
    fn drop_policy_narrows_the_abstract_set() {
        // A dropping stage turns ANY input into its concrete produces,
        // enabling provable dead stages downstream.
        let mut p = Pipeline::new();
        p.add(scripted(
            "gate",
            Signature::map(A, A).with_unmatched(UnmatchedPolicy::Drop),
        ));
        p.add(scripted("b2c", Signature::map(B, C)));
        let diags = p.check(); // ANY input
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::DeadStage && d.operator == "b2c"));
    }

    #[test]
    fn builtin_ops_are_clean_under_any_input() {
        let mut p = Pipeline::new();
        p.add(Passthrough);
        p.add(ScopeSum::new(42));
        p.add(ScopeRepair::new());
        assert!(p.check().is_empty(), "{:?}", p.check());
    }

    #[test]
    fn diagnostic_rendering_is_rustc_style() {
        let d = Diagnostic {
            severity: Severity::Error,
            kind: DiagnosticKind::DeadStage,
            stage: 2,
            operator: "trigger".into(),
            message: "nothing produces scores".into(),
        };
        let r = d.render();
        assert!(r.starts_with("error[RL0002]: nothing produces scores"));
        assert!(r.contains("--> stage 2: operator `trigger`"));
        assert!(!d.to_string().is_empty());
    }
}
