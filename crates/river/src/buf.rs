//! Shared, sliceable sample buffers — the zero-copy payload backbone.
//!
//! Every `F64`/`Complex` payload in the record model is a [`SampleBuf`]:
//! an `(offset, len)` view over an immutable, reference-counted
//! `Arc<[f64]>` backing allocation. Cloning a record is then O(1)
//! whatever its payload size, re-windowing operators (`reslice`,
//! `cutout`, `cutter`) emit views into the allocation they received
//! instead of copying samples, and operators that genuinely rewrite
//! samples (`welchwindow`, `logscale`, `dft`) use copy-on-write
//! [`make_mut`](SampleBuf::make_mut): in place when the buffer is
//! uniquely owned, one honest copy when it is shared.
//!
//! See `DESIGN.md` §10 for the ownership and mutation rules.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable view over shared `f64` samples.
///
/// `SampleBuf` dereferences to `&[f64]`, so read paths treat it exactly
/// like a slice. Construction from owned data is `From<Vec<f64>>`
/// (one move of the samples into the shared allocation) or
/// `From<&[f64]>` (one copy); [`slice`](Self::slice) and `clone` never
/// copy samples.
///
/// # Example
///
/// ```
/// use dynamic_river::buf::SampleBuf;
///
/// let buf = SampleBuf::from(vec![0.0, 1.0, 2.0, 3.0]);
/// let view = buf.slice(1..3);
/// assert_eq!(&view[..], &[1.0, 2.0]);
/// assert!(SampleBuf::shares_backing(&buf, &view)); // no samples copied
/// ```
#[derive(Clone)]
pub struct SampleBuf {
    data: Arc<[f64]>,
    offset: usize,
    len: usize,
}

impl SampleBuf {
    /// An empty buffer (no backing allocation is shared with anything).
    pub fn new() -> Self {
        SampleBuf {
            data: Arc::from([] as [f64; 0]),
            offset: 0,
            len: 0,
        }
    }

    /// Number of samples in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of this view within its backing allocation.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The view's samples as a plain slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// The backing allocation (shared with every view sliced from it).
    /// Exposed so tests can assert zero-copy behavior via
    /// [`Arc::ptr_eq`].
    pub fn backing(&self) -> &Arc<[f64]> {
        &self.data
    }

    /// `true` when both views share one backing allocation (cloned or
    /// sliced from each other) — the zero-copy witness.
    pub fn shares_backing(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// `true` when other views currently share this buffer's backing
    /// allocation, i.e. [`make_mut`](Self::make_mut) would have to
    /// copy. An operator that overwrites *every* sample should build a
    /// fresh buffer instead of paying that copy of doomed data.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// O(1) sub-view of this view (indices relative to the view, like
    /// slice indexing). No samples are copied; the result shares the
    /// backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> SampleBuf {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for view of {} samples",
            self.len
        );
        SampleBuf {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// If `next` is the view immediately following `self` in the *same*
    /// backing allocation, returns the single contiguous view covering
    /// both — the zero-copy join used by `reslice` overlap windows and
    /// `cutter` record assembly. Returns `None` when the views come
    /// from different allocations or are not adjacent.
    #[must_use]
    pub fn merged_with(&self, next: &SampleBuf) -> Option<SampleBuf> {
        if !SampleBuf::shares_backing(self, next) || self.offset + self.len != next.offset {
            return None;
        }
        Some(SampleBuf {
            data: self.data.clone(),
            offset: self.offset,
            len: self.len + next.len,
        })
    }

    /// Copy-on-write mutable access to the view's samples.
    ///
    /// When the backing allocation is uniquely owned, this is in-place
    /// (no copy — other parts of the allocation outside the view are
    /// unobservable, since nothing else holds a reference). When the
    /// allocation is shared, the view's samples are first copied into a
    /// fresh allocation so no other view observes the mutation.
    pub fn make_mut(&mut self) -> &mut [f64] {
        if Arc::get_mut(&mut self.data).is_none() {
            self.data = Arc::from(self.as_slice());
            self.offset = 0;
        }
        let (offset, len) = (self.offset, self.len);
        &mut Arc::get_mut(&mut self.data).expect("uniquely owned")[offset..offset + len]
    }

    /// Copies the view's samples into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }

    /// Builds a canonical buffer by collecting an exact-size sample
    /// iterator **directly into the shared allocation** — the decode
    /// path's constructor: no intermediate `Vec<f64>` is built and then
    /// copied into the `Arc`, so wire decode pays exactly one pass over
    /// the samples.
    fn collect_exact(iter: impl ExactSizeIterator<Item = f64>) -> SampleBuf {
        let data: Arc<[f64]> = iter.collect();
        let len = data.len();
        SampleBuf {
            data,
            offset: 0,
            len,
        }
    }

    /// Decodes little-endian `f64` wire bytes into a canonical buffer
    /// (offset 0, view length == backing length) in a single pass.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of 8 — the codec
    /// validates wire lengths before constructing buffers.
    pub fn from_f64_le_bytes(bytes: &[u8]) -> SampleBuf {
        assert!(
            bytes.len().is_multiple_of(8),
            "f64 byte length {} not a multiple of 8",
            bytes.len()
        );
        Self::collect_exact(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        )
    }

    /// Decodes little-endian `f32` wire bytes (the compact v2 sample
    /// encoding), widening each sample to `f64`, in a single pass.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of 4.
    pub fn from_f32_le_bytes(bytes: &[u8]) -> SampleBuf {
        assert!(
            bytes.len().is_multiple_of(4),
            "f32 byte length {} not a multiple of 4",
            bytes.len()
        );
        Self::collect_exact(
            bytes
                .chunks_exact(4)
                .map(|c| f64::from(f32::from_le_bytes(c.try_into().expect("4-byte chunk")))),
        )
    }

    /// Decodes little-endian `i16` wire bytes quantized with a
    /// per-record `scale` factor (sample = quantized × scale — the v2
    /// `i16` encoding), in a single pass.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of 2.
    pub fn from_i16_scaled_le_bytes(scale: f64, bytes: &[u8]) -> SampleBuf {
        assert!(
            bytes.len().is_multiple_of(2),
            "i16 byte length {} not a multiple of 2",
            bytes.len()
        );
        Self::collect_exact(bytes.chunks_exact(2).map(move |c| {
            f64::from(i16::from_le_bytes(c.try_into().expect("2-byte chunk"))) * scale
        }))
    }

    /// Detaches the view from any larger backing allocation: after
    /// this, the buffer owns exactly its own samples.
    ///
    /// A view pins its *entire* backing allocation alive — a single
    /// 840-sample record sliced from a 30 s clip keeps the whole clip
    /// resident. Call `compact` before retaining a record long-term
    /// (archives, caches) to trade one copy for releasing the backing.
    /// No-op when the view already covers its whole allocation.
    pub fn compact(&mut self) {
        if self.len < self.data.len() {
            self.data = Arc::from(self.as_slice());
            self.offset = 0;
        }
    }
}

impl Default for SampleBuf {
    fn default() -> Self {
        SampleBuf::new()
    }
}

impl Deref for SampleBuf {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl AsRef<[f64]> for SampleBuf {
    fn as_ref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<Vec<f64>> for SampleBuf {
    fn from(v: Vec<f64>) -> Self {
        let len = v.len();
        SampleBuf {
            data: Arc::from(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[f64]> for SampleBuf {
    fn from(s: &[f64]) -> Self {
        SampleBuf {
            data: Arc::from(s),
            offset: 0,
            len: s.len(),
        }
    }
}

impl<const N: usize> From<[f64; N]> for SampleBuf {
    fn from(a: [f64; N]) -> Self {
        SampleBuf::from(&a[..])
    }
}

impl From<SampleBuf> for Vec<f64> {
    fn from(buf: SampleBuf) -> Vec<f64> {
        buf.to_vec()
    }
}

impl FromIterator<f64> for SampleBuf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        SampleBuf::from(iter.into_iter().collect::<Vec<f64>>())
    }
}

/// Content equality: two views are equal when their samples are equal,
/// whatever their offsets or backing allocations — a decoded canonical
/// buffer compares equal to the view it was encoded from.
impl PartialEq for SampleBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f64]> for SampleBuf {
    fn eq(&self, other: &[f64]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<f64>> for SampleBuf {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for SampleBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SampleBuf(@{}, ", self.offset)?;
        f.debug_list().entries(self.as_slice()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_zero_copy() {
        let a = SampleBuf::from(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert!(SampleBuf::shares_backing(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_shares_backing_and_respects_bounds() {
        let buf = SampleBuf::from(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let mid = buf.slice(1..4);
        assert_eq!(&mid[..], &[1.0, 2.0, 3.0]);
        assert_eq!(mid.offset(), 1);
        assert!(SampleBuf::shares_backing(&buf, &mid));
        // Nested slices compose offsets.
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], &[2.0, 3.0]);
        assert_eq!(inner.offset(), 2);
        assert_eq!(&buf.slice(..)[..], &buf[..]);
        assert!(buf.slice(5..5).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = SampleBuf::from(vec![0.0; 3]).slice(1..5);
    }

    #[test]
    fn merged_with_joins_adjacent_views_only() {
        let buf = SampleBuf::from(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let left = buf.slice(0..3);
        let right = buf.slice(3..6);
        let joined = left.merged_with(&right).expect("adjacent");
        assert_eq!(&joined[..], &buf[..]);
        assert!(SampleBuf::shares_backing(&joined, &buf));
        // Gap, overlap, wrong order, different backings: no join.
        assert!(buf.slice(0..2).merged_with(&buf.slice(3..6)).is_none());
        assert!(buf.slice(0..4).merged_with(&buf.slice(3..6)).is_none());
        assert!(right.merged_with(&left).is_none());
        let other = SampleBuf::from(vec![3.0, 4.0, 5.0]);
        assert!(left.merged_with(&other).is_none());
    }

    #[test]
    fn make_mut_is_in_place_when_unique() {
        let mut buf = SampleBuf::from(vec![1.0, 2.0, 3.0]);
        let before = Arc::as_ptr(buf.backing());
        buf.make_mut()[0] = 9.0;
        assert_eq!(Arc::as_ptr(buf.backing()), before, "unique: no copy");
        assert_eq!(&buf[..], &[9.0, 2.0, 3.0]);
    }

    #[test]
    fn make_mut_copies_when_shared() {
        let mut a = SampleBuf::from(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        a.make_mut()[0] = 9.0;
        assert!(!SampleBuf::shares_backing(&a, &b), "shared: copied");
        assert_eq!(&a[..], &[9.0, 2.0, 3.0]);
        assert_eq!(&b[..], &[1.0, 2.0, 3.0], "other view untouched");
    }

    #[test]
    fn make_mut_on_unique_slice_keeps_offset() {
        let mut view = SampleBuf::from(vec![0.0, 1.0, 2.0, 3.0]).slice(1..3);
        // The parent buffer is dropped; the view is the sole owner.
        view.make_mut().iter_mut().for_each(|x| *x += 10.0);
        assert_eq!(&view[..], &[11.0, 12.0]);
    }

    #[test]
    fn is_shared_tracks_backing_refcount() {
        let a = SampleBuf::from(vec![1.0, 2.0]);
        assert!(!a.is_shared());
        let b = a.clone();
        assert!(a.is_shared());
        assert!(b.is_shared());
        drop(b);
        assert!(!a.is_shared());
    }

    #[test]
    fn compact_releases_the_backing_allocation() {
        let clip = SampleBuf::from(vec![1.0; 1_000]);
        let mut view = clip.slice(10..20);
        assert_eq!(view.backing().len(), 1_000, "view pins the whole clip");
        view.compact();
        assert_eq!(view.backing().len(), 10, "compact owns just the view");
        assert_eq!(view.offset(), 0);
        assert_eq!(&view[..], &[1.0; 10]);
        assert!(!SampleBuf::shares_backing(&view, &clip));
        // Already-whole buffers are untouched.
        let mut whole = SampleBuf::from(vec![2.0; 4]);
        let before = Arc::as_ptr(whole.backing());
        whole.compact();
        assert_eq!(Arc::as_ptr(whole.backing()), before);
    }

    #[test]
    fn content_equality_ignores_offset() {
        let big = SampleBuf::from(vec![0.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(big.slice(1..3), big.slice(3..5));
        assert_eq!(big.slice(1..3), SampleBuf::from(vec![1.0, 2.0]));
        assert_eq!(big.slice(1..3), vec![1.0, 2.0]);
        assert_ne!(big.slice(0..2), big.slice(1..3));
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1.5, -2.5];
        let buf = SampleBuf::from(v.clone());
        assert_eq!(Vec::from(buf.slice(..)), v);
        assert_eq!(SampleBuf::from(&v[..]), buf);
        assert_eq!((0..3).map(|i| i as f64).collect::<SampleBuf>().len(), 3);
        assert_eq!(SampleBuf::from([7.0, 8.0]).as_ref(), &[7.0, 8.0]);
        assert!(SampleBuf::default().is_empty());
    }

    #[test]
    fn debug_shows_offset_and_samples() {
        let s = format!("{:?}", SampleBuf::from(vec![0.0, 1.0]).slice(1..2));
        assert!(s.contains("@1"), "{s}");
        assert!(s.contains("1.0"), "{s}");
    }
}
