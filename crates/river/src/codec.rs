//! Binary wire codec for records.
//!
//! Frames are length-prefixed and CRC-32 protected so `streamin` can
//! detect truncation and corruption (and respond by resynchronizing
//! scope state rather than propagating garbage):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RVDR"
//! 4       1     version (1)
//! 5       1     record kind tag
//! 6       2     subtype            (LE)
//! 8       4     scope depth        (LE)
//! 12      2     scope type         (LE)
//! 14      1     payload tag
//! 15      1     reserved (0)
//! 16      8     sequence number    (LE)
//! 24      4     payload length     (LE, bytes)
//! 28      n     payload
//! 28+n    4     CRC-32 (IEEE) over bytes [0, 28+n)
//! ```
//!
//! A special 4-byte end-of-stream sentinel `"RVEO"` marks *clean* stream
//! termination; its absence at EOF tells the reader the upstream died
//! unexpectedly.

use crate::error::PipelineError;
use crate::record::{Payload, Record, RecordKind};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"RVDR";
/// Clean end-of-stream sentinel.
pub const EOS_MAGIC: [u8; 4] = *b"RVEO";
/// Wire format version.
pub const VERSION: u8 = 1;
/// Maximum accepted payload length (64 MiB) — guards against corrupted
/// length fields allocating unbounded memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Computes the IEEE CRC-32 of `data` (table-driven, from scratch).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Build the table at first use; 256 entries.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, slot) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                }
                *slot = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn encode_payload(payload: &Payload, out: &mut BytesMut) {
    match payload {
        Payload::Empty => {}
        // Views serialize transparently: only the viewed samples are
        // framed, never the rest of the backing allocation, so a
        // non-zero-offset slice and an owned buffer with equal content
        // produce identical bytes.
        Payload::F64(v) | Payload::Complex(v) => {
            out.reserve(v.len() * 8);
            for &x in v.iter() {
                out.put_f64_le(x);
            }
        }
        Payload::Bytes(b) => out.extend_from_slice(b),
        Payload::Text(s) => out.extend_from_slice(s.as_bytes()),
        Payload::Pairs(pairs) => {
            out.put_u32_le(pairs.len() as u32);
            for (k, v) in pairs {
                out.put_u32_le(k.len() as u32);
                out.extend_from_slice(k.as_bytes());
                out.put_u32_le(v.len() as u32);
                out.extend_from_slice(v.as_bytes());
            }
        }
    }
}

fn decode_payload(tag: u8, bytes: &[u8]) -> Result<Payload, PipelineError> {
    let codec_err = |m: String| PipelineError::Codec(m);
    match tag {
        0 => {
            if !bytes.is_empty() {
                return Err(codec_err("empty payload with non-zero length".into()));
            }
            Ok(Payload::Empty)
        }
        1 | 2 => {
            if !bytes.len().is_multiple_of(8) {
                return Err(codec_err(format!(
                    "f64 payload length {} not a multiple of 8",
                    bytes.len()
                )));
            }
            // Complex payloads are interleaved [re, im, …] pairs; an odd
            // number of f64s cannot be produced by any in-process
            // constructor and must not enter through the wire.
            if tag == 2 && !bytes.len().is_multiple_of(16) {
                return Err(codec_err(format!(
                    "complex payload length {} is not a whole number of (re, im) pairs",
                    bytes.len()
                )));
            }
            // Decoding always yields a canonical owned buffer: offset 0,
            // view length == backing length.
            let v: Vec<f64> = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            Ok(if tag == 1 {
                Payload::f64(v)
            } else {
                Payload::complex(v)
            })
        }
        3 => Ok(Payload::Bytes(Bytes::copy_from_slice(bytes))),
        4 => String::from_utf8(bytes.to_vec())
            .map(Payload::Text)
            .map_err(|e| codec_err(format!("invalid utf-8 text payload: {e}"))),
        5 => {
            let mut pos = 0usize;
            let take_u32 = |pos: &mut usize| -> Result<u32, PipelineError> {
                if *pos + 4 > bytes.len() {
                    return Err(PipelineError::Codec("truncated pairs payload".into()));
                }
                let v = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes"));
                *pos += 4;
                Ok(v)
            };
            let take_str = |pos: &mut usize, len: usize| -> Result<String, PipelineError> {
                if *pos + len > bytes.len() {
                    return Err(PipelineError::Codec("truncated pairs payload".into()));
                }
                let s = String::from_utf8(bytes[*pos..*pos + len].to_vec())
                    .map_err(|e| PipelineError::Codec(format!("invalid utf-8 in pairs: {e}")))?;
                *pos += len;
                Ok(s)
            };
            let count = take_u32(&mut pos)? as usize;
            if count > bytes.len() {
                return Err(codec_err("pairs count exceeds payload".into()));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = take_u32(&mut pos)? as usize;
                let k = take_str(&mut pos, klen)?;
                let vlen = take_u32(&mut pos)? as usize;
                let v = take_str(&mut pos, vlen)?;
                pairs.push((k, v));
            }
            if pos != bytes.len() {
                return Err(codec_err("trailing bytes after pairs payload".into()));
            }
            Ok(Payload::Pairs(pairs))
        }
        t => Err(codec_err(format!("unknown payload tag {t}"))),
    }
}

/// Encodes one record as a complete wire frame.
///
/// # Example
///
/// ```
/// use dynamic_river::codec::{decode_frame, encode_frame};
/// use dynamic_river::record::{Payload, Record};
///
/// let rec = Record::data(1, Payload::f64(vec![1.0, -1.0])).with_seq(5);
/// let frame = encode_frame(&rec);
/// let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
/// assert_eq!(decoded, rec);
/// assert_eq!(used, frame.len());
/// ```
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let mut payload = BytesMut::new();
    encode_payload(&record.payload, &mut payload);
    let mut out = BytesMut::with_capacity(32 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.put_u8(VERSION);
    out.put_u8(record.kind.tag());
    out.put_u16_le(record.subtype);
    out.put_u32_le(record.scope_depth);
    out.put_u16_le(record.scope_type);
    out.put_u8(record.payload.tag());
    out.put_u8(0); // reserved
    out.put_u64_le(record.seq);
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out.to_vec()
}

/// The fixed frame header length (before payload).
pub const HEADER_LEN: usize = 28;

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or
/// `Ok(Some((record, bytes_consumed)))` on success.
///
/// # Errors
///
/// Returns [`PipelineError::Codec`] for bad magic, version, CRC, tags or
/// malformed payloads.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Record, usize)>, PipelineError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    if buf[..4] == EOS_MAGIC {
        return Err(PipelineError::Codec("end-of-stream sentinel".into()));
    }
    if buf[..4] != MAGIC {
        return Err(PipelineError::Codec(format!(
            "bad frame magic {:02x?}",
            &buf[..4]
        )));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let version = buf[4];
    if version != VERSION {
        return Err(PipelineError::Codec(format!(
            "unsupported version {version}"
        )));
    }
    let kind = RecordKind::from_tag(buf[5])
        .ok_or_else(|| PipelineError::Codec(format!("unknown record kind {}", buf[5])))?;
    let subtype = u16::from_le_bytes([buf[6], buf[7]]);
    let scope_depth = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let scope_type = u16::from_le_bytes([buf[12], buf[13]]);
    let payload_tag = buf[14];
    let seq = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes([buf[24], buf[25], buf[26], buf[27]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(PipelineError::Codec(format!(
            "payload length {payload_len} exceeds maximum {MAX_PAYLOAD}"
        )));
    }
    let total = HEADER_LEN + payload_len + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let body_end = HEADER_LEN + payload_len;
    let expected_crc = u32::from_le_bytes(buf[body_end..body_end + 4].try_into().expect("4"));
    let actual_crc = crc32(&buf[..body_end]);
    if expected_crc != actual_crc {
        return Err(PipelineError::Codec(format!(
            "crc mismatch: frame says {expected_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let payload = decode_payload(payload_tag, &buf[HEADER_LEN..body_end])?;
    Ok(Some((
        Record {
            kind,
            subtype,
            scope_depth,
            scope_type,
            seq,
            payload,
        },
        total,
    )))
}

/// Writes one framed record to a [`Write`] sink. A `&mut W` may be
/// passed.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_record<W: Write>(mut writer: W, record: &Record) -> Result<(), PipelineError> {
    writer.write_all(&encode_frame(record))?;
    Ok(())
}

/// Writes the clean end-of-stream sentinel.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_eos<W: Write>(mut writer: W) -> Result<(), PipelineError> {
    writer.write_all(&EOS_MAGIC)?;
    writer.flush()?;
    Ok(())
}

/// Outcome of reading one frame from a byte stream.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// A record was decoded.
    Record(Record),
    /// Clean end of stream (sentinel seen).
    CleanEnd,
    /// The stream ended without a sentinel — the upstream died.
    UncleanEnd,
}

/// Reads one frame from a [`Read`] source (blocking). A `&mut R` may be
/// passed.
///
/// # Errors
///
/// Returns [`PipelineError::Codec`] for corrupted frames and
/// [`PipelineError::Io`] for I/O failures other than clean EOF.
pub fn read_record<R: Read>(reader: R) -> Result<ReadOutcome, PipelineError> {
    read_record_counted(reader).map(|(outcome, _)| outcome)
}

/// Like [`read_record`], but also returns the number of wire bytes
/// consumed — the per-session traffic accounting used by the service
/// layer's session-tagged statistics ([`crate::serve::SessionReport`]).
///
/// A clean end-of-stream sentinel counts its 4 bytes; an unclean end
/// counts whatever partial prefix was drained before EOF.
///
/// # Errors
///
/// Same contract as [`read_record`].
pub fn read_record_counted<R: Read>(mut reader: R) -> Result<(ReadOutcome, u64), PipelineError> {
    let mut magic = [0u8; 4];
    match read_exact_or_eof(&mut reader, &mut magic)? {
        ReadFill::Eof => return Ok((ReadOutcome::UncleanEnd, 0)),
        ReadFill::Partial(n) => return Ok((ReadOutcome::UncleanEnd, n as u64)),
        ReadFill::Full => {}
    }
    if magic == EOS_MAGIC {
        return Ok((ReadOutcome::CleanEnd, 4));
    }
    if magic != MAGIC {
        return Err(PipelineError::Codec(format!(
            "bad frame magic {magic:02x?}"
        )));
    }
    let mut rest_header = [0u8; HEADER_LEN - 4];
    reader.read_exact(&mut rest_header).map_err(unclean)?;
    let mut frame = Vec::with_capacity(HEADER_LEN + 64);
    frame.extend_from_slice(&magic);
    frame.extend_from_slice(&rest_header);
    let payload_len = u32::from_le_bytes(frame[24..28].try_into().expect("4 bytes")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(PipelineError::Codec(format!(
            "payload length {payload_len} exceeds maximum {MAX_PAYLOAD}"
        )));
    }
    let mut body = vec![0u8; payload_len + 4];
    reader.read_exact(&mut body).map_err(unclean)?;
    frame.extend_from_slice(&body);
    match decode_frame(&frame)? {
        Some((record, used)) => Ok((ReadOutcome::Record(record), used as u64)),
        None => Err(PipelineError::Codec("incomplete frame after read".into())),
    }
}

fn unclean(e: io::Error) -> PipelineError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        PipelineError::Disconnected("stream truncated mid-frame".into())
    } else {
        PipelineError::Io(e)
    }
}

enum ReadFill {
    Full,
    Partial(usize),
    Eof,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadFill, PipelineError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadFill::Eof
                } else {
                    ReadFill::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PipelineError::Io(e)),
        }
    }
    Ok(ReadFill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::data(1, Payload::Empty),
            Record::data(2, Payload::f64(vec![1.5, -2.5, 0.0])).with_seq(99),
            Record::data(3, Payload::complex(vec![1.0, 2.0])),
            Record::data(4, Payload::Bytes(Bytes::from_static(b"hello"))),
            Record::data(5, Payload::Text("héllo wörld".into())),
            Record::open_scope(
                7,
                vec![
                    ("sample_rate".into(), "20160".into()),
                    ("site".into(), "kbs".into()),
                ],
            )
            .with_depth(1),
            Record::close_scope(7),
            Record::bad_close_scope(9).with_depth(3),
        ]
    }

    #[test]
    fn frame_round_trip_all_payloads() {
        for rec in samples() {
            let frame = encode_frame(&rec);
            let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn offset_view_encodes_like_owned_buffer() {
        // A non-zero-offset view frames byte-for-byte identically to an
        // owned buffer with the same content, and decodes back to a
        // canonical (offset 0) buffer equal to the view.
        use crate::buf::SampleBuf;
        let backing = SampleBuf::from((0..16).map(|i| i as f64).collect::<Vec<f64>>());
        let view = backing.slice(5..11);
        for make in [Payload::F64, Payload::Complex] {
            let viewed = Record::data(2, make(view.clone())).with_seq(3);
            let owned = Record::data(2, make(SampleBuf::from(view.to_vec()))).with_seq(3);
            let frame_view = encode_frame(&viewed);
            assert_eq!(frame_view, encode_frame(&owned));
            let (decoded, _) = decode_frame(&frame_view).unwrap().unwrap();
            assert_eq!(decoded, viewed);
            let buf = decoded
                .payload
                .as_f64_buf()
                .or_else(|| decoded.payload.as_complex_buf())
                .unwrap();
            assert_eq!(buf.offset(), 0, "decode yields a canonical buffer");
            assert_eq!(buf.backing().len(), buf.len());
        }
    }

    #[test]
    fn odd_complex_payload_rejected() {
        // Re-tag an F64 frame with 3 samples as Complex and fix the CRC:
        // 24 bytes is a valid f64 count but not a whole (re, im) pair
        // count, so decode must refuse it.
        let mut frame = encode_frame(&Record::data(1, Payload::f64(vec![1.0, 2.0, 3.0])));
        frame[14] = 2; // payload tag -> Complex
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("pairs")));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn partial_frames_request_more_bytes() {
        let frame = encode_frame(&samples()[1]);
        for cut in [0usize, 3, 10, HEADER_LEN, frame.len() - 1] {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut frame = encode_frame(&samples()[1]);
        let mid = HEADER_LEN + 4;
        frame[mid] ^= 0xFF;
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("crc")));
    }

    #[test]
    fn corrupted_header_detected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[5] = 250; // invalid kind; also breaks CRC
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[0] = b'X';
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("magic")));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[4] = 9;
        // Fix CRC so the version check is what fires.
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("version")));
    }

    #[test]
    fn oversized_payload_len_rejected_without_allocation() {
        let mut frame = encode_frame(&samples()[0]);
        frame[24..28].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("maximum")));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        for rec in samples() {
            write_record(&mut buf, &rec).unwrap();
        }
        write_eos(&mut buf).unwrap();

        let mut cursor = buf.as_slice();
        let mut decoded = Vec::new();
        loop {
            match read_record(&mut cursor).unwrap() {
                ReadOutcome::Record(r) => decoded.push(r),
                ReadOutcome::CleanEnd => break,
                ReadOutcome::UncleanEnd => panic!("unexpected unclean end"),
            }
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn counted_reads_account_for_every_wire_byte() {
        let mut buf = Vec::new();
        let mut expected = 0u64;
        for rec in samples() {
            let frame = encode_frame(&rec);
            expected += frame.len() as u64;
            buf.extend_from_slice(&frame);
        }
        write_eos(&mut buf).unwrap();
        let mut cursor = buf.as_slice();
        let mut counted = 0u64;
        loop {
            let (outcome, n) = read_record_counted(&mut cursor).unwrap();
            counted += n;
            match outcome {
                ReadOutcome::Record(_) => {}
                ReadOutcome::CleanEnd => break,
                ReadOutcome::UncleanEnd => panic!("unexpected unclean end"),
            }
        }
        // Every frame byte plus the 4-byte sentinel is accounted for.
        assert_eq!(counted, expected + 4);
    }

    #[test]
    fn missing_sentinel_reports_unclean_end() {
        let mut buf = Vec::new();
        write_record(&mut buf, &samples()[0]).unwrap();
        // No EOS sentinel.
        let mut cursor = buf.as_slice();
        assert!(matches!(
            read_record(&mut cursor).unwrap(),
            ReadOutcome::Record(_)
        ));
        assert_eq!(read_record(&mut cursor).unwrap(), ReadOutcome::UncleanEnd);
    }

    #[test]
    fn truncated_mid_frame_is_disconnect() {
        let mut buf = Vec::new();
        write_record(&mut buf, &samples()[1]).unwrap();
        buf.truncate(buf.len() - 6);
        let mut cursor = buf.as_slice();
        let err = read_record(&mut cursor).unwrap_err();
        assert!(matches!(err, PipelineError::Disconnected(_)));
    }

    #[test]
    fn pairs_payload_edge_cases() {
        // Empty pairs list round trips.
        let rec = Record {
            kind: RecordKind::Data,
            subtype: 0,
            scope_depth: 0,
            scope_type: 0,
            seq: 0,
            payload: Payload::Pairs(vec![]),
        };
        let frame = encode_frame(&rec);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(decoded.payload, Payload::Pairs(vec![]));
    }

    #[test]
    fn empty_payload_with_length_rejected() {
        // Build a frame claiming Empty (tag 0) but with payload bytes.
        let mut frame = encode_frame(&Record::data(0, Payload::Text("ab".into())));
        frame[14] = 0; // payload tag -> Empty
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        let len = frame.len();
        frame[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_frame(&frame).is_err());
    }
}
