//! Binary wire codec for records.
//!
//! Frames are length-prefixed and CRC-32 protected so `streamin` can
//! detect truncation and corruption (and respond by resynchronizing
//! scope state rather than propagating garbage):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RVDR"
//! 4       1     version (1)
//! 5       1     record kind tag
//! 6       2     subtype            (LE)
//! 8       4     scope depth        (LE)
//! 12      2     scope type         (LE)
//! 14      1     payload tag
//! 15      1     reserved (0)
//! 16      8     sequence number    (LE)
//! 24      4     payload length     (LE, bytes)
//! 28      n     payload
//! 28+n    4     CRC-32 (IEEE) over bytes [0, 28+n)
//! ```
//!
//! A special 4-byte end-of-stream sentinel `"RVEO"` marks *clean* stream
//! termination; its absence at EOF tells the reader the upstream died
//! unexpectedly.
//!
//! # Wire format v2
//!
//! The compact v2 frame replaces the fixed 28-byte header with
//! varint-encoded fields and a TLV (type-length-value) body, cutting the
//! per-record overhead and — with the `f32`/`i16` sample encodings —
//! roughly halving sample payload bytes:
//!
//! ```text
//! offset  size     field
//! 0       1        magic 0xB2
//! 1       1        record kind tag
//! 2       varint   subtype
//! ·       varint   scope depth
//! ·       varint   scope type
//! ·       varint   sequence number
//! ·       varint   body length (bytes)
//! ·       n        TLV body blocks
//! ·+n     4        CRC-32 (IEEE, LE) over bytes [0, ·+n)
//! ```
//!
//! Each body block is `varint type · varint length · value`. Unknown
//! block types are **skipped, not fatal** — a v2 reader stays compatible
//! with future extensions. At most one *payload* block (types 1–9) may
//! appear; a body with none decodes as [`Payload::Empty`].
//!
//! Both formats coexist on one stream: the [`Decoder`] distinguishes
//! them per frame by the first byte (`'R'` → v1 frame or sentinel,
//! `0xB2` → v2), so version negotiation is simply the sender's choice of
//! [`WireFormat`].
//!
//! The decoder is push-based and incremental — feed it byte chunks of
//! any size and frame boundaries are its problem, not the reader's:
//!
//! ```
//! use dynamic_river::codec::{encode_frame, write_eos, Decoder};
//! use dynamic_river::prelude::*;
//!
//! let rec = Record::data(7, Payload::f64(vec![0.5, -0.5])).with_seq(1);
//! let mut wire = encode_frame(&rec);
//! write_eos(&mut wire).unwrap();
//!
//! // Worst-case fragmentation: one byte per feed.
//! let mut decoder = Decoder::new();
//! let mut events = Vec::new();
//! for byte in &wire {
//!     decoder.feed(std::slice::from_ref(byte), &mut events).unwrap();
//! }
//! assert_eq!(events, vec![DecodeEvent::Record(rec), DecodeEvent::CleanEnd]);
//! assert!(decoder.is_done());
//! ```

// Library code in this module must surface failures as errors, never
// panics; unwraps are confined to the test module below.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::buf::SampleBuf;
use crate::error::PipelineError;
use crate::record::{Payload, Record, RecordKind};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"RVDR";
/// Clean end-of-stream sentinel.
pub const EOS_MAGIC: [u8; 4] = *b"RVEO";
/// Keepalive sentinel: a 4-byte no-op frame a quiet sensor emits so an
/// idle-timeout-enforcing server ([`crate::serve::PipelineServer`])
/// knows the connection is dormant, not dead. Decoders consume it
/// without producing a record; it is legal anywhere between frames.
pub const KEEPALIVE_MAGIC: [u8; 4] = *b"RVKA";
/// Wire format version.
pub const VERSION: u8 = 1;
/// Compact frame magic (first byte of every v2 frame). Distinct from
/// `b'R'` so both versions coexist on one stream.
pub const V2_MAGIC: u8 = 0xB2;
/// Compact wire format version.
pub const VERSION_V2: u8 = 2;
/// Maximum accepted payload length (64 MiB) — guards against corrupted
/// length fields allocating unbounded memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// How v2 frames encode `F64`/`Complex` sample payloads on the wire.
///
/// Chosen per stream by the sender; the receiver reads the block type,
/// so mixed encodings on one stream also decode fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleEncoding {
    /// Lossless 8-byte samples (bit-identical round trip).
    #[default]
    F64,
    /// 4-byte samples: ~half the payload at `f32` precision.
    F32,
    /// 2-byte quantized samples with a per-record `f64` scale factor;
    /// absolute error is bounded by `scale / 2 = max|x| / 65534`.
    /// Records whose samples cannot be represented (non-finite values,
    /// or a scale that underflows to zero) fall back to lossless f64
    /// blocks automatically.
    I16,
}

/// The frame format a sender emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Fixed-header v1 frames (the seed format; always lossless).
    #[default]
    V1,
    /// Compact varint/TLV v2 frames with the given sample encoding.
    V2(SampleEncoding),
}

impl WireFormat {
    /// The wire version byte this format produces.
    pub fn version(self) -> u8 {
        match self {
            WireFormat::V1 => VERSION,
            WireFormat::V2(_) => VERSION_V2,
        }
    }
}

/// Computes the IEEE CRC-32 of `data` (table-driven, from scratch).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Build the table at first use; 256 entries.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, slot) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                }
                *slot = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends a LEB128 unsigned varint (7 bits per byte, low bits first,
/// high bit = continuation).
fn put_uvarint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Byte-slice reader for varint/TLV parsing. All `take_*` methods return
/// `None` (not an error) when the slice runs out, so the same parser
/// serves both "is this frame complete yet?" scanning and full decoding.
struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn new(buf: &'a [u8]) -> ByteCursor<'a> {
        ByteCursor { buf, pos: 0 }
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take_u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn take_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads one LEB128 varint. `Ok(None)` means the slice ended
    /// mid-varint (more bytes needed); malformed varints (more than 10
    /// bytes, or overflowing u64) are codec errors.
    fn take_uvarint(&mut self) -> Result<Option<u64>, PipelineError> {
        let mut val = 0u64;
        let mut shift = 0u32;
        let mut used = 0usize;
        loop {
            let Some(&b) = self.buf.get(self.pos + used) else {
                return Ok(None);
            };
            let low = u64::from(b & 0x7F);
            if shift == 63 && low > 1 {
                return Err(PipelineError::Codec("varint overflows u64".into()));
            }
            val |= low << shift;
            used += 1;
            if b & 0x80 == 0 {
                self.pos += used;
                return Ok(Some(val));
            }
            shift += 7;
            if shift > 63 {
                return Err(PipelineError::Codec("varint longer than 10 bytes".into()));
            }
        }
    }
}

fn encode_payload(payload: &Payload, out: &mut BytesMut) {
    match payload {
        Payload::Empty => {}
        // Views serialize transparently: only the viewed samples are
        // framed, never the rest of the backing allocation, so a
        // non-zero-offset slice and an owned buffer with equal content
        // produce identical bytes.
        Payload::F64(v) | Payload::Complex(v) => {
            out.reserve(v.len() * 8);
            for &x in v.iter() {
                out.put_f64_le(x);
            }
        }
        Payload::Bytes(b) => out.extend_from_slice(b),
        Payload::Text(s) => out.extend_from_slice(s.as_bytes()),
        Payload::Pairs(pairs) => {
            out.put_u32_le(pairs.len() as u32);
            for (k, v) in pairs {
                out.put_u32_le(k.len() as u32);
                out.extend_from_slice(k.as_bytes());
                out.put_u32_le(v.len() as u32);
                out.extend_from_slice(v.as_bytes());
            }
        }
    }
}

fn decode_payload(tag: u8, bytes: &[u8]) -> Result<Payload, PipelineError> {
    let codec_err = |m: String| PipelineError::Codec(m);
    match tag {
        0 => {
            if !bytes.is_empty() {
                return Err(codec_err("empty payload with non-zero length".into()));
            }
            Ok(Payload::Empty)
        }
        1 | 2 => {
            if !bytes.len().is_multiple_of(8) {
                return Err(codec_err(format!(
                    "f64 payload length {} not a multiple of 8",
                    bytes.len()
                )));
            }
            // Complex payloads are interleaved [re, im, …] pairs; an odd
            // number of f64s cannot be produced by any in-process
            // constructor and must not enter through the wire.
            if tag == 2 && !bytes.len().is_multiple_of(16) {
                return Err(codec_err(format!(
                    "complex payload length {} is not a whole number of (re, im) pairs",
                    bytes.len()
                )));
            }
            // Decoding always yields a canonical owned buffer: offset 0,
            // view length == backing length, collected straight into the
            // shared allocation.
            let buf = SampleBuf::from_f64_le_bytes(bytes);
            Ok(if tag == 1 {
                Payload::F64(buf)
            } else {
                Payload::Complex(buf)
            })
        }
        3 => Ok(Payload::Bytes(Bytes::copy_from_slice(bytes))),
        4 => String::from_utf8(bytes.to_vec())
            .map(Payload::Text)
            .map_err(|e| codec_err(format!("invalid utf-8 text payload: {e}"))),
        5 => {
            let mut pos = 0usize;
            let take_u32 = |pos: &mut usize| -> Result<u32, PipelineError> {
                if *pos + 4 > bytes.len() {
                    return Err(PipelineError::Codec("truncated pairs payload".into()));
                }
                let v = le_u32_at(&bytes[*pos..]);
                *pos += 4;
                Ok(v)
            };
            let take_str = |pos: &mut usize, len: usize| -> Result<String, PipelineError> {
                if *pos + len > bytes.len() {
                    return Err(PipelineError::Codec("truncated pairs payload".into()));
                }
                let s = String::from_utf8(bytes[*pos..*pos + len].to_vec())
                    .map_err(|e| PipelineError::Codec(format!("invalid utf-8 in pairs: {e}")))?;
                *pos += len;
                Ok(s)
            };
            let count = take_u32(&mut pos)? as usize;
            if count > bytes.len() {
                return Err(codec_err("pairs count exceeds payload".into()));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = take_u32(&mut pos)? as usize;
                let k = take_str(&mut pos, klen)?;
                let vlen = take_u32(&mut pos)? as usize;
                let v = take_str(&mut pos, vlen)?;
                pairs.push((k, v));
            }
            if pos != bytes.len() {
                return Err(codec_err("trailing bytes after pairs payload".into()));
            }
            Ok(Payload::Pairs(pairs))
        }
        t => Err(codec_err(format!("unknown payload tag {t}"))),
    }
}

/// Encodes one record as a complete wire frame.
///
/// # Example
///
/// ```
/// use dynamic_river::codec::{decode_frame, encode_frame};
/// use dynamic_river::record::{Payload, Record};
///
/// let rec = Record::data(1, Payload::f64(vec![1.0, -1.0])).with_seq(5);
/// let frame = encode_frame(&rec);
/// let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
/// assert_eq!(decoded, rec);
/// assert_eq!(used, frame.len());
/// ```
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let mut payload = BytesMut::new();
    encode_payload(&record.payload, &mut payload);
    let mut out = BytesMut::with_capacity(32 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.put_u8(VERSION);
    out.put_u8(record.kind.tag());
    out.put_u16_le(record.subtype);
    out.put_u32_le(record.scope_depth);
    out.put_u16_le(record.scope_type);
    out.put_u8(record.payload.tag());
    out.put_u8(0); // reserved
    out.put_u64_le(record.seq);
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out.to_vec()
}

/// The fixed frame header length (before payload).
pub const HEADER_LEN: usize = 28;

// v2 TLV payload block types. 1–9 are payload blocks (at most one per
// frame); all other types are reserved for future extensions and are
// skipped by decoders.
const TLV_F64_AS_F64: u64 = 1;
const TLV_F64_AS_F32: u64 = 2;
const TLV_F64_AS_I16: u64 = 3;
const TLV_COMPLEX_AS_F64: u64 = 4;
const TLV_COMPLEX_AS_F32: u64 = 5;
const TLV_COMPLEX_AS_I16: u64 = 6;
const TLV_BYTES: u64 = 7;
const TLV_TEXT: u64 = 8;
const TLV_PAIRS: u64 = 9;

fn put_block(out: &mut BytesMut, ty: u64, value: &[u8]) {
    put_uvarint(out, ty);
    put_uvarint(out, value.len() as u64);
    out.extend_from_slice(value);
}

/// Emits one sample block, choosing among the lossless f64, compact f32
/// and quantized i16 representations. The i16 path falls back to f64
/// when quantization cannot bound the error: non-finite samples, or a
/// maximum magnitude so small that `max / 32767` underflows to zero.
fn put_sample_block(
    out: &mut BytesMut,
    samples: &[f64],
    enc: SampleEncoding,
    types: (u64, u64, u64),
) {
    let (t_f64, t_f32, t_i16) = types;
    match enc {
        SampleEncoding::F32 => {
            put_uvarint(out, t_f32);
            put_uvarint(out, (samples.len() * 4) as u64);
            out.reserve(samples.len() * 4);
            for &x in samples {
                out.put_f32_le(x as f32);
            }
            return;
        }
        SampleEncoding::I16 => {
            let max = samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            let scale = max / f64::from(i16::MAX);
            let representable =
                samples.iter().all(|x| x.is_finite()) && (max == 0.0 || scale > 0.0);
            if representable {
                put_uvarint(out, t_i16);
                put_uvarint(out, (8 + samples.len() * 2) as u64);
                out.put_f64_le(scale);
                out.reserve(samples.len() * 2);
                for &x in samples {
                    let q = if scale == 0.0 {
                        0.0
                    } else {
                        (x / scale).round()
                    };
                    out.put_i16_le(q.clamp(-32767.0, 32767.0) as i16);
                }
                return;
            }
        }
        SampleEncoding::F64 => {}
    }
    put_uvarint(out, t_f64);
    put_uvarint(out, (samples.len() * 8) as u64);
    out.reserve(samples.len() * 8);
    for &x in samples {
        out.put_f64_le(x);
    }
}

fn encode_body_v2(payload: &Payload, enc: SampleEncoding, out: &mut BytesMut) {
    match payload {
        // Empty is the *absence* of a payload block, not a block of its
        // own — an all-unknown (or empty) body decodes as Empty.
        Payload::Empty => {}
        Payload::F64(v) => put_sample_block(
            out,
            v.as_slice(),
            enc,
            (TLV_F64_AS_F64, TLV_F64_AS_F32, TLV_F64_AS_I16),
        ),
        Payload::Complex(v) => put_sample_block(
            out,
            v.as_slice(),
            enc,
            (TLV_COMPLEX_AS_F64, TLV_COMPLEX_AS_F32, TLV_COMPLEX_AS_I16),
        ),
        Payload::Bytes(b) => put_block(out, TLV_BYTES, b),
        Payload::Text(s) => put_block(out, TLV_TEXT, s.as_bytes()),
        Payload::Pairs(pairs) => {
            let mut tmp = BytesMut::new();
            put_uvarint(&mut tmp, pairs.len() as u64);
            for (k, v) in pairs {
                put_uvarint(&mut tmp, k.len() as u64);
                tmp.extend_from_slice(k.as_bytes());
                put_uvarint(&mut tmp, v.len() as u64);
                tmp.extend_from_slice(v.as_bytes());
            }
            put_block(out, TLV_PAIRS, &tmp);
        }
    }
}

/// Encodes one record as a compact v2 wire frame.
///
/// # Example
///
/// ```
/// use dynamic_river::codec::{decode_frame, encode_frame_v2, SampleEncoding};
/// use dynamic_river::record::{Payload, Record};
///
/// let rec = Record::data(1, Payload::f64(vec![1.0, -1.0])).with_seq(5);
/// let frame = encode_frame_v2(&rec, SampleEncoding::F64);
/// let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
/// assert_eq!(decoded, rec);
/// assert_eq!(used, frame.len());
/// ```
pub fn encode_frame_v2(record: &Record, enc: SampleEncoding) -> Vec<u8> {
    let mut body = BytesMut::new();
    encode_body_v2(&record.payload, enc, &mut body);
    let mut out = BytesMut::with_capacity(16 + body.len());
    out.put_u8(V2_MAGIC);
    out.put_u8(record.kind.tag());
    put_uvarint(&mut out, u64::from(record.subtype));
    put_uvarint(&mut out, u64::from(record.scope_depth));
    put_uvarint(&mut out, u64::from(record.scope_type));
    put_uvarint(&mut out, record.seq);
    put_uvarint(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out.to_vec()
}

/// Encodes one record in the given [`WireFormat`].
pub fn encode_frame_with(record: &Record, format: WireFormat) -> Vec<u8> {
    match format {
        WireFormat::V1 => encode_frame(record),
        WireFormat::V2(enc) => encode_frame_v2(record, enc),
    }
}

/// Writes one framed record in the given [`WireFormat`].
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_record_with<W: Write>(
    mut writer: W,
    record: &Record,
    format: WireFormat,
) -> Result<(), PipelineError> {
    writer.write_all(&encode_frame_with(record, format))?;
    Ok(())
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or
/// `Ok(Some((record, bytes_consumed)))` on success.
///
/// # Errors
///
/// Returns [`PipelineError::Codec`] for bad magic, version, CRC, tags or
/// malformed payloads.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Record, usize)>, PipelineError> {
    match scan(buf)? {
        Scan::Need(_) => Ok(None),
        Scan::Eos => Err(PipelineError::Codec("end-of-stream sentinel".into())),
        Scan::KeepAlive => Err(PipelineError::Codec("keepalive sentinel".into())),
        Scan::Frame { version, total } => {
            if buf.len() < total {
                return Ok(None);
            }
            let record = if version == VERSION {
                parse_frame_v1(&buf[..total])?
            } else {
                parse_frame_v2(&buf[..total])?
            };
            Ok(Some((record, total)))
        }
    }
}

/// What the front of a byte buffer holds — the single place frame
/// boundaries for both wire versions are computed. Everything layered on
/// top ([`decode_frame`], [`Decoder`], [`frame_len`], the counted read
/// path) consults this rather than re-indexing headers by hand.
enum Scan {
    /// More bytes are required: the buffer must grow to at least this
    /// total length before another scan can make progress.
    Need(usize),
    /// The clean end-of-stream sentinel (4 bytes).
    Eos,
    /// The keepalive sentinel (4 bytes): consumed, no record produced.
    KeepAlive,
    /// A frame header: the complete frame spans `total` bytes.
    Frame { version: u8, total: usize },
}

fn scan(buf: &[u8]) -> Result<Scan, PipelineError> {
    let Some(&first) = buf.first() else {
        return Ok(Scan::Need(1));
    };
    match first {
        b'R' => {
            if buf.len() < 4 {
                return Ok(Scan::Need(4));
            }
            if buf[..4] == EOS_MAGIC {
                return Ok(Scan::Eos);
            }
            if buf[..4] == KEEPALIVE_MAGIC {
                return Ok(Scan::KeepAlive);
            }
            if buf[..4] != MAGIC {
                return Err(PipelineError::Codec(format!(
                    "bad frame magic {:02x?}",
                    &buf[..4]
                )));
            }
            if buf.len() >= 5 && buf[4] != VERSION {
                return Err(PipelineError::Codec(format!(
                    "unsupported version {}",
                    buf[4]
                )));
            }
            if buf.len() < HEADER_LEN {
                return Ok(Scan::Need(HEADER_LEN));
            }
            let payload_len = u32::from_le_bytes([buf[24], buf[25], buf[26], buf[27]]) as usize;
            if payload_len > MAX_PAYLOAD {
                return Err(PipelineError::Codec(format!(
                    "payload length {payload_len} exceeds maximum {MAX_PAYLOAD}"
                )));
            }
            Ok(Scan::Frame {
                version: VERSION,
                total: HEADER_LEN + payload_len + 4,
            })
        }
        V2_MAGIC => {
            let mut cur = ByteCursor::new(&buf[1..]);
            if cur.take_u8().is_none() {
                return Ok(Scan::Need(buf.len() + 1));
            }
            // subtype, scope depth, scope type, seq.
            for _ in 0..4 {
                if cur.take_uvarint()?.is_none() {
                    return Ok(Scan::Need(buf.len() + 1));
                }
            }
            let Some(body_len) = cur.take_uvarint()? else {
                return Ok(Scan::Need(buf.len() + 1));
            };
            if body_len > MAX_PAYLOAD as u64 {
                return Err(PipelineError::Codec(format!(
                    "payload length {body_len} exceeds maximum {MAX_PAYLOAD}"
                )));
            }
            let header_end = 1 + cur.pos();
            Ok(Scan::Frame {
                version: VERSION_V2,
                total: header_end + body_len as usize + 4,
            })
        }
        b => Err(PipelineError::Codec(format!("bad frame magic [{b:02x}]"))),
    }
}

/// Returns the total length of the complete frame (or sentinel) at the
/// front of `buf`, or `Ok(None)` if more bytes are needed — the frame
/// boundary finder used by frame-aware fault injectors.
///
/// # Errors
///
/// Returns [`PipelineError::Codec`] for unrecognizable frame headers.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, PipelineError> {
    match scan(buf)? {
        Scan::Need(_) => Ok(None),
        Scan::Eos | Scan::KeepAlive => Ok(Some(4)),
        Scan::Frame { total, .. } => Ok((buf.len() >= total).then_some(total)),
    }
}

/// Little-endian `u32` from the first 4 bytes of `b` (caller has
/// already checked the length).
fn le_u32_at(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

/// Little-endian `u64` from the first 8 bytes of `b`.
fn le_u64_at(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Little-endian `f64` from the first 8 bytes of `b`.
fn le_f64_at(b: &[u8]) -> f64 {
    f64::from_bits(le_u64_at(b))
}

fn check_crc(frame: &[u8]) -> Result<(), PipelineError> {
    let body_end = frame.len() - 4;
    let expected = le_u32_at(&frame[body_end..]);
    let actual = crc32(&frame[..body_end]);
    if expected != actual {
        return Err(PipelineError::Codec(format!(
            "crc mismatch: frame says {expected:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(())
}

/// Parses one complete v1 frame (`frame.len()` == the scanned total).
fn parse_frame_v1(frame: &[u8]) -> Result<Record, PipelineError> {
    let kind = RecordKind::from_tag(frame[5])
        .ok_or_else(|| PipelineError::Codec(format!("unknown record kind {}", frame[5])))?;
    let subtype = u16::from_le_bytes([frame[6], frame[7]]);
    let scope_depth = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
    let scope_type = u16::from_le_bytes([frame[12], frame[13]]);
    let payload_tag = frame[14];
    let seq = le_u64_at(&frame[16..]);
    check_crc(frame)?;
    let payload = decode_payload(payload_tag, &frame[HEADER_LEN..frame.len() - 4])?;
    Ok(Record {
        kind,
        subtype,
        scope_depth,
        scope_type,
        seq,
        payload,
    })
}

/// Parses one complete v2 frame (`frame.len()` == the scanned total).
fn parse_frame_v2(frame: &[u8]) -> Result<Record, PipelineError> {
    check_crc(frame)?;
    let mut cur = ByteCursor::new(&frame[1..frame.len() - 4]);
    let kind_tag = cur
        .take_u8()
        .ok_or_else(|| PipelineError::Codec("truncated v2 header".into()))?;
    let kind = RecordKind::from_tag(kind_tag)
        .ok_or_else(|| PipelineError::Codec(format!("unknown record kind {kind_tag}")))?;
    let field = |v: Option<u64>| -> Result<u64, PipelineError> {
        v.ok_or_else(|| PipelineError::Codec("truncated v2 header".into()))
    };
    let subtype = u16::try_from(field(cur.take_uvarint()?)?)
        .map_err(|_| PipelineError::Codec("subtype out of range".into()))?;
    let scope_depth = u32::try_from(field(cur.take_uvarint()?)?)
        .map_err(|_| PipelineError::Codec("scope depth out of range".into()))?;
    let scope_type = u16::try_from(field(cur.take_uvarint()?)?)
        .map_err(|_| PipelineError::Codec("scope type out of range".into()))?;
    let seq = field(cur.take_uvarint()?)?;
    let _body_len = field(cur.take_uvarint()?);
    let body_start = 1 + cur.pos();
    let payload = decode_body_v2(&frame[body_start..frame.len() - 4])?;
    Ok(Record {
        kind,
        subtype,
        scope_depth,
        scope_type,
        seq,
        payload,
    })
}

fn decode_body_v2(body: &[u8]) -> Result<Payload, PipelineError> {
    let truncated = || PipelineError::Codec("truncated TLV block header".into());
    let mut cur = ByteCursor::new(body);
    let mut payload: Option<Payload> = None;
    while !cur.is_empty() {
        let ty = cur.take_uvarint()?.ok_or_else(truncated)?;
        let len = usize::try_from(cur.take_uvarint()?.ok_or_else(truncated)?)
            .map_err(|_| PipelineError::Codec("TLV block length overflows".into()))?;
        let value = cur
            .take_bytes(len)
            .ok_or_else(|| PipelineError::Codec("TLV block length exceeds body".into()))?;
        // Unknown block types are skipped, not fatal: forward
        // compatibility with future extensions.
        if let 1..=9 = ty {
            if payload.is_some() {
                return Err(PipelineError::Codec(
                    "duplicate payload block in frame body".into(),
                ));
            }
            payload = Some(decode_block(ty, value)?);
        }
    }
    Ok(payload.unwrap_or(Payload::Empty))
}

fn decode_block(ty: u64, value: &[u8]) -> Result<Payload, PipelineError> {
    let codec_err = |m: String| PipelineError::Codec(m);
    let complex = matches!(
        ty,
        TLV_COMPLEX_AS_F64 | TLV_COMPLEX_AS_F32 | TLV_COMPLEX_AS_I16
    );
    // Complex payloads are interleaved [re, im, …] pairs; an odd sample
    // count must not enter through the wire.
    let check_pairs = |samples: usize| -> Result<(), PipelineError> {
        if complex && !samples.is_multiple_of(2) {
            return Err(codec_err(format!(
                "complex payload of {samples} samples is not a whole number of (re, im) pairs"
            )));
        }
        Ok(())
    };
    let wrap = |buf: SampleBuf| {
        if complex {
            Payload::Complex(buf)
        } else {
            Payload::F64(buf)
        }
    };
    match ty {
        TLV_F64_AS_F64 | TLV_COMPLEX_AS_F64 => {
            if !value.len().is_multiple_of(8) {
                return Err(codec_err(format!(
                    "f64 payload length {} not a multiple of 8",
                    value.len()
                )));
            }
            check_pairs(value.len() / 8)?;
            Ok(wrap(SampleBuf::from_f64_le_bytes(value)))
        }
        TLV_F64_AS_F32 | TLV_COMPLEX_AS_F32 => {
            if !value.len().is_multiple_of(4) {
                return Err(codec_err(format!(
                    "f32 payload length {} not a multiple of 4",
                    value.len()
                )));
            }
            check_pairs(value.len() / 4)?;
            Ok(wrap(SampleBuf::from_f32_le_bytes(value)))
        }
        TLV_F64_AS_I16 | TLV_COMPLEX_AS_I16 => {
            if value.len() < 8 {
                return Err(codec_err(
                    "i16 sample block shorter than its scale header".into(),
                ));
            }
            let (scale_bytes, rest) = value.split_at(8);
            let scale = le_f64_at(scale_bytes);
            if !scale.is_finite() || scale < 0.0 {
                return Err(codec_err(format!("invalid i16 scale factor {scale}")));
            }
            if !rest.len().is_multiple_of(2) {
                return Err(codec_err(format!(
                    "i16 payload length {} not a multiple of 2",
                    rest.len()
                )));
            }
            check_pairs(rest.len() / 2)?;
            Ok(wrap(SampleBuf::from_i16_scaled_le_bytes(scale, rest)))
        }
        TLV_BYTES => Ok(Payload::Bytes(Bytes::copy_from_slice(value))),
        TLV_TEXT => String::from_utf8(value.to_vec())
            .map(Payload::Text)
            .map_err(|e| codec_err(format!("invalid utf-8 text payload: {e}"))),
        TLV_PAIRS => {
            let truncated = || PipelineError::Codec("truncated pairs payload".into());
            let mut cur = ByteCursor::new(value);
            let count = cur.take_uvarint()?.ok_or_else(truncated)?;
            if count > value.len() as u64 {
                return Err(codec_err("pairs count exceeds payload".into()));
            }
            let take_str = |cur: &mut ByteCursor<'_>| -> Result<String, PipelineError> {
                let len = usize::try_from(cur.take_uvarint()?.ok_or_else(truncated)?)
                    .map_err(|_| truncated())?;
                let bytes = cur.take_bytes(len).ok_or_else(truncated)?;
                String::from_utf8(bytes.to_vec())
                    .map_err(|e| PipelineError::Codec(format!("invalid utf-8 in pairs: {e}")))
            };
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let k = take_str(&mut cur)?;
                let v = take_str(&mut cur)?;
                pairs.push((k, v));
            }
            if !cur.is_empty() {
                return Err(codec_err("trailing bytes after pairs payload".into()));
            }
            Ok(Payload::Pairs(pairs))
        }
        _ => unreachable!("decode_block called only for known payload block types"),
    }
}

/// Writes one framed record to a [`Write`] sink. A `&mut W` may be
/// passed.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_record<W: Write>(mut writer: W, record: &Record) -> Result<(), PipelineError> {
    writer.write_all(&encode_frame(record))?;
    Ok(())
}

/// Writes the clean end-of-stream sentinel.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_eos<W: Write>(mut writer: W) -> Result<(), PipelineError> {
    writer.write_all(&EOS_MAGIC)?;
    writer.flush()?;
    Ok(())
}

/// Writes (and flushes) one keepalive sentinel — what a sensor with
/// nothing to say sends so a [`crate::serve::PipelineServer`] with an
/// idle timeout knows the connection is dormant, not dead.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on sink failure.
pub fn write_keepalive<W: Write>(mut writer: W) -> Result<(), PipelineError> {
    writer.write_all(&KEEPALIVE_MAGIC)?;
    writer.flush()?;
    Ok(())
}

/// Outcome of reading one frame from a byte stream.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// A record was decoded.
    Record(Record),
    /// Clean end of stream (sentinel seen).
    CleanEnd,
    /// The stream ended without a sentinel — the upstream died.
    UncleanEnd,
}

/// A decode event emitted by the incremental [`Decoder`].
#[derive(Debug, PartialEq)]
pub enum DecodeEvent {
    /// A complete frame decoded to a record.
    Record(Record),
    /// The clean end-of-stream sentinel was consumed.
    CleanEnd,
    /// A keepalive sentinel was consumed: the peer is alive but has
    /// nothing to say. Carries no record; session layers use it to
    /// reset idle timers ([`crate::serve::PipelineServer::set_idle_timeout`]).
    KeepAlive,
}

/// Push-based incremental frame decoder: feed it byte chunks of *any*
/// size (network reads, fuzzer fragments, whole streams) and it emits
/// complete records as they materialize, for both wire versions on the
/// same stream.
///
/// The decoder is a state machine over an internal buffer. After any
/// error it is *poisoned* — further calls keep failing — because a
/// byte stream is meaningless past an unrecognizable frame boundary;
/// recovery happens at the session layer, not by resynchronizing bytes.
///
/// # Example
///
/// ```
/// use dynamic_river::codec::{encode_frame, DecodeEvent, Decoder};
/// use dynamic_river::record::{Payload, Record};
///
/// let frame = encode_frame(&Record::data(1, Payload::f64(vec![1.0])));
/// let mut dec = Decoder::new();
/// // Feed the frame one byte at a time: the record pops out whole.
/// let mut events = Vec::new();
/// for b in &frame {
///     dec.feed(std::slice::from_ref(b), &mut events).unwrap();
/// }
/// assert!(matches!(events.as_slice(), [DecodeEvent::Record(_)]));
/// ```
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames; compacted on
    /// the next push so polling never memmoves per frame.
    start: usize,
    /// Clean end seen: any further bytes are a protocol error.
    done: bool,
    poisoned: bool,
    /// Version of the most recently decoded frame.
    version: Option<u8>,
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Bytes buffered but not yet consumed by a decoded frame — at EOF
    /// this is the partial-frame residue (it still counts as wire
    /// traffic for session accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The wire version of the most recently decoded frame, if any —
    /// how a receiver learns what the peer negotiated simply by
    /// decoding.
    pub fn wire_version(&self) -> Option<u8> {
        self.version
    }

    /// Whether the clean end-of-stream sentinel has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Exact additional bytes required before [`poll`](Decoder::poll)
    /// can make progress, or 0 when an event/error is already pending.
    /// Readers that must not over-read a shared stream (the counted
    /// read path) use this to size exact reads.
    pub fn needed(&self) -> usize {
        if self.done || self.poisoned {
            return 0;
        }
        let buf = self.pending();
        match scan(buf) {
            // Errors surface at the next poll; sentinels need nothing
            // more.
            Err(_) | Ok(Scan::Eos | Scan::KeepAlive) => 0,
            Ok(Scan::Need(n)) => n.saturating_sub(buf.len()).max(1),
            Ok(Scan::Frame { total, .. }) => total.saturating_sub(buf.len()),
        }
    }

    /// Appends bytes to the decode buffer without polling.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] when the decoder is poisoned or
    /// bytes arrive after the clean end-of-stream sentinel.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<(), PipelineError> {
        if self.poisoned {
            return Err(poisoned_err());
        }
        if self.done && !bytes.is_empty() {
            self.poisoned = true;
            return Err(PipelineError::Codec(
                "bytes after end-of-stream sentinel".into(),
            ));
        }
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Feeds a chunk and drains every event it completes into `out`
    /// (events decoded before an error are kept).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] for malformed bytes; the decoder
    /// is poisoned afterwards.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<DecodeEvent>) -> Result<(), PipelineError> {
        self.push_bytes(bytes)?;
        while let Some(ev) = self.poll()? {
            out.push(ev);
        }
        Ok(())
    }

    /// Attempts to decode one event from the buffered bytes; `Ok(None)`
    /// means more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] for malformed bytes; the decoder
    /// is poisoned afterwards.
    pub fn poll(&mut self) -> Result<Option<DecodeEvent>, PipelineError> {
        if self.poisoned {
            return Err(poisoned_err());
        }
        if self.done {
            // The CleanEnd event was already emitted; any residue is a
            // protocol error surfaced on this later poll so the clean
            // end itself is never swallowed.
            if self.buffered() > 0 {
                self.poisoned = true;
                return Err(PipelineError::Codec(
                    "bytes after end-of-stream sentinel".into(),
                ));
            }
            return Ok(None);
        }
        let buf = self.pending();
        let scanned = match scan(buf) {
            Ok(s) => s,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        match scanned {
            Scan::Need(_) => Ok(None),
            Scan::Eos => {
                self.start += 4;
                self.done = true;
                Ok(Some(DecodeEvent::CleanEnd))
            }
            Scan::KeepAlive => {
                self.start += 4;
                Ok(Some(DecodeEvent::KeepAlive))
            }
            Scan::Frame { version, total } => {
                if buf.len() < total {
                    return Ok(None);
                }
                let parsed = if version == VERSION {
                    parse_frame_v1(&buf[..total])
                } else {
                    parse_frame_v2(&buf[..total])
                };
                match parsed {
                    Ok(record) => {
                        self.start += total;
                        self.version = Some(version);
                        Ok(Some(DecodeEvent::Record(record)))
                    }
                    Err(e) => {
                        self.poisoned = true;
                        Err(e)
                    }
                }
            }
        }
    }

    /// Declares the byte stream over. Nothing buffered (or too few bytes
    /// to even tell a frame from the sentinel) is an *unclean* end the
    /// caller reports as such; a partial frame is a mid-frame
    /// disconnect.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Disconnected`] when the stream ends
    /// inside a frame.
    pub fn end_of_input(&self) -> Result<(), PipelineError> {
        if self.done || self.poisoned || self.buffered() == 0 {
            return Ok(());
        }
        // Fewer than 4 non-v2 bytes cannot be told apart from a partial
        // sentinel, so they report as a plain unclean end (matching v1
        // reader behavior); a v2 magic byte unambiguously starts a
        // frame.
        if self.pending()[0] != V2_MAGIC && self.buffered() < 4 {
            return Ok(());
        }
        Err(PipelineError::Disconnected(
            "stream truncated mid-frame".into(),
        ))
    }
}

fn poisoned_err() -> PipelineError {
    PipelineError::Codec("decoder poisoned by earlier error".into())
}

/// Reads one frame from a [`Read`] source (blocking). A `&mut R` may be
/// passed.
///
/// # Errors
///
/// Returns [`PipelineError::Codec`] for corrupted frames and
/// [`PipelineError::Io`] for I/O failures other than clean EOF.
pub fn read_record<R: Read>(reader: R) -> Result<ReadOutcome, PipelineError> {
    read_record_counted(reader).map(|(outcome, _)| outcome)
}

/// Like [`read_record`], but also returns the number of wire bytes
/// consumed — the per-session traffic accounting used by the service
/// layer's session-tagged statistics ([`crate::serve::SessionReport`]).
///
/// A clean end-of-stream sentinel counts its 4 bytes; an unclean end
/// counts whatever partial prefix was drained before EOF.
///
/// # Errors
///
/// Same contract as [`read_record`].
pub fn read_record_counted<R: Read>(mut reader: R) -> Result<(ReadOutcome, u64), PipelineError> {
    // One frame, one throwaway decoder: every byte it buffers was read
    // exactly for this frame (the `needed()` hints keep reads exact), so
    // the reader is never over-drained and the byte count is precise.
    let mut dec = Decoder::new();
    let mut counted = 0u64;
    loop {
        match dec.poll()? {
            Some(DecodeEvent::Record(record)) => return Ok((ReadOutcome::Record(record), counted)),
            Some(DecodeEvent::CleanEnd) => return Ok((ReadOutcome::CleanEnd, counted)),
            // Keepalives carry no record: keep reading for a real frame.
            Some(DecodeEvent::KeepAlive) | None => {}
        }
        let need = dec.needed();
        debug_assert!(need > 0, "poll returned None without requesting bytes");
        let mut chunk = vec![0u8; need];
        match read_exact_or_eof(&mut reader, &mut chunk)? {
            ReadFill::Full => {
                counted += need as u64;
                dec.push_bytes(&chunk)?;
            }
            ReadFill::Partial(n) => {
                counted += n as u64;
                dec.push_bytes(&chunk[..n])?;
                dec.end_of_input()?;
                return Ok((ReadOutcome::UncleanEnd, counted));
            }
            ReadFill::Eof => {
                dec.end_of_input()?;
                return Ok((ReadOutcome::UncleanEnd, counted));
            }
        }
    }
}

enum ReadFill {
    Full,
    Partial(usize),
    Eof,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadFill, PipelineError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadFill::Eof
                } else {
                    ReadFill::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(PipelineError::Io(e)),
        }
    }
    Ok(ReadFill::Full)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::data(1, Payload::Empty),
            Record::data(2, Payload::f64(vec![1.5, -2.5, 0.0])).with_seq(99),
            Record::data(3, Payload::complex(vec![1.0, 2.0])),
            Record::data(4, Payload::Bytes(Bytes::from_static(b"hello"))),
            Record::data(5, Payload::Text("héllo wörld".into())),
            Record::open_scope(
                7,
                vec![
                    ("sample_rate".into(), "20160".into()),
                    ("site".into(), "kbs".into()),
                ],
            )
            .with_depth(1),
            Record::close_scope(7),
            Record::bad_close_scope(9).with_depth(3),
        ]
    }

    #[test]
    fn frame_round_trip_all_payloads() {
        for rec in samples() {
            let frame = encode_frame(&rec);
            let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn offset_view_encodes_like_owned_buffer() {
        // A non-zero-offset view frames byte-for-byte identically to an
        // owned buffer with the same content, and decodes back to a
        // canonical (offset 0) buffer equal to the view.
        use crate::buf::SampleBuf;
        let backing = SampleBuf::from((0..16).map(|i| i as f64).collect::<Vec<f64>>());
        let view = backing.slice(5..11);
        for make in [Payload::F64, Payload::Complex] {
            let viewed = Record::data(2, make(view.clone())).with_seq(3);
            let owned = Record::data(2, make(SampleBuf::from(view.to_vec()))).with_seq(3);
            let frame_view = encode_frame(&viewed);
            assert_eq!(frame_view, encode_frame(&owned));
            let (decoded, _) = decode_frame(&frame_view).unwrap().unwrap();
            assert_eq!(decoded, viewed);
            let buf = decoded
                .payload
                .as_f64_buf()
                .or_else(|| decoded.payload.as_complex_buf())
                .unwrap();
            assert_eq!(buf.offset(), 0, "decode yields a canonical buffer");
            assert_eq!(buf.backing().len(), buf.len());
        }
    }

    #[test]
    fn odd_complex_payload_rejected() {
        // Re-tag an F64 frame with 3 samples as Complex and fix the CRC:
        // 24 bytes is a valid f64 count but not a whole (re, im) pair
        // count, so decode must refuse it.
        let mut frame = encode_frame(&Record::data(1, Payload::f64(vec![1.0, 2.0, 3.0])));
        frame[14] = 2; // payload tag -> Complex
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("pairs")));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn partial_frames_request_more_bytes() {
        let frame = encode_frame(&samples()[1]);
        for cut in [0usize, 3, 10, HEADER_LEN, frame.len() - 1] {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut frame = encode_frame(&samples()[1]);
        let mid = HEADER_LEN + 4;
        frame[mid] ^= 0xFF;
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("crc")));
    }

    #[test]
    fn corrupted_header_detected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[5] = 250; // invalid kind; also breaks CRC
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[0] = b'X';
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("magic")));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(&samples()[0]);
        frame[4] = 9;
        // Fix CRC so the version check is what fires.
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("version")));
    }

    #[test]
    fn oversized_payload_len_rejected_without_allocation() {
        let mut frame = encode_frame(&samples()[0]);
        frame[24..28].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("maximum")));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        for rec in samples() {
            write_record(&mut buf, &rec).unwrap();
        }
        write_eos(&mut buf).unwrap();

        let mut cursor = buf.as_slice();
        let mut decoded = Vec::new();
        loop {
            match read_record(&mut cursor).unwrap() {
                ReadOutcome::Record(r) => decoded.push(r),
                ReadOutcome::CleanEnd => break,
                ReadOutcome::UncleanEnd => panic!("unexpected unclean end"),
            }
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn counted_reads_account_for_every_wire_byte() {
        let mut buf = Vec::new();
        let mut expected = 0u64;
        for rec in samples() {
            let frame = encode_frame(&rec);
            expected += frame.len() as u64;
            buf.extend_from_slice(&frame);
        }
        write_eos(&mut buf).unwrap();
        let mut cursor = buf.as_slice();
        let mut counted = 0u64;
        loop {
            let (outcome, n) = read_record_counted(&mut cursor).unwrap();
            counted += n;
            match outcome {
                ReadOutcome::Record(_) => {}
                ReadOutcome::CleanEnd => break,
                ReadOutcome::UncleanEnd => panic!("unexpected unclean end"),
            }
        }
        // Every frame byte plus the 4-byte sentinel is accounted for.
        assert_eq!(counted, expected + 4);
    }

    #[test]
    fn missing_sentinel_reports_unclean_end() {
        let mut buf = Vec::new();
        write_record(&mut buf, &samples()[0]).unwrap();
        // No EOS sentinel.
        let mut cursor = buf.as_slice();
        assert!(matches!(
            read_record(&mut cursor).unwrap(),
            ReadOutcome::Record(_)
        ));
        assert_eq!(read_record(&mut cursor).unwrap(), ReadOutcome::UncleanEnd);
    }

    #[test]
    fn truncated_mid_frame_is_disconnect() {
        let mut buf = Vec::new();
        write_record(&mut buf, &samples()[1]).unwrap();
        buf.truncate(buf.len() - 6);
        let mut cursor = buf.as_slice();
        let err = read_record(&mut cursor).unwrap_err();
        assert!(matches!(err, PipelineError::Disconnected(_)));
    }

    #[test]
    fn pairs_payload_edge_cases() {
        // Empty pairs list round trips.
        let rec = Record {
            kind: RecordKind::Data,
            subtype: 0,
            scope_depth: 0,
            scope_type: 0,
            seq: 0,
            payload: Payload::Pairs(vec![]),
        };
        let frame = encode_frame(&rec);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(decoded.payload, Payload::Pairs(vec![]));
    }

    #[test]
    fn empty_payload_with_length_rejected() {
        // Build a frame claiming Empty (tag 0) but with payload bytes.
        let mut frame = encode_frame(&Record::data(0, Payload::Text("ab".into())));
        frame[14] = 0; // payload tag -> Empty
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        let len = frame.len();
        frame[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_frame(&frame).is_err());
    }

    // ---- wire format v2 ----------------------------------------------

    /// Rewrites the trailing CRC of a hand-mutated frame so the check
    /// under test (not the CRC) is what fires.
    fn fix_crc(frame: &mut [u8]) {
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn v2_lossless_round_trip_all_payloads() {
        for rec in samples() {
            for enc in [
                SampleEncoding::F64,
                SampleEncoding::F32,
                SampleEncoding::I16,
            ] {
                let frame = encode_frame_v2(&rec, enc);
                let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
                assert_eq!(used, frame.len(), "{enc:?}");
                if enc == SampleEncoding::F64
                    || !matches!(rec.payload, Payload::F64(_) | Payload::Complex(_))
                {
                    // Non-sample payloads are lossless under every encoding.
                    assert_eq!(decoded, rec, "{enc:?}");
                } else {
                    assert_eq!(decoded.kind, rec.kind);
                    assert_eq!(decoded.seq, rec.seq);
                }
            }
        }
    }

    #[test]
    fn v2_is_more_compact_than_v1() {
        // The acceptance target: an 840-sample data record (the paper's
        // record length) in f32 mode is at most half the v1 frame.
        let samples: Vec<f64> = (0..840).map(|i| (i as f64 * 0.01).sin()).collect();
        let rec = Record::data(2, Payload::f64(samples)).with_seq(1234);
        let v1 = encode_frame(&rec).len();
        let f32_len = encode_frame_v2(&rec, SampleEncoding::F32).len();
        let i16_len = encode_frame_v2(&rec, SampleEncoding::I16).len();
        assert!(f32_len * 2 <= v1, "f32 {f32_len} vs v1 {v1}");
        assert!(i16_len * 3 <= v1, "i16 {i16_len} vs v1 {v1}");
    }

    #[test]
    fn v2_i16_quantization_error_is_bounded() {
        let samples: Vec<f64> = (0..512).map(|i| (i as f64 * 0.37).sin() * 3.25).collect();
        let max = samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let bound = max / f64::from(i16::MAX) / 2.0 * (1.0 + 1e-9);
        let rec = Record::data(2, Payload::f64(samples.clone()));
        let frame = encode_frame_v2(&rec, SampleEncoding::I16);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        let buf = decoded.payload.as_f64_buf().unwrap();
        assert_eq!(buf.len(), samples.len());
        for (a, b) in samples.iter().zip(buf.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn v2_i16_nonrepresentable_samples_fall_back_to_lossless() {
        // Non-finite samples and subnormal magnitudes (scale underflows
        // to zero) cannot be quantized with a bounded error: the encoder
        // silently emits the lossless f64 block instead.
        for samples in [vec![1.0, f64::NAN, 3.0], vec![0.0, 4e-320]] {
            let rec = Record::data(2, Payload::f64(samples.clone()));
            let frame = encode_frame_v2(&rec, SampleEncoding::I16);
            let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
            let buf = decoded.payload.as_f64_buf().unwrap();
            for (a, b) in samples.iter().zip(buf.iter()) {
                assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
            }
        }
        // All-zero records stay on the i16 path (scale 0 ⇒ exact zeros).
        let rec = Record::data(2, Payload::f64(vec![0.0; 16]));
        let (decoded, _) = decode_frame(&encode_frame_v2(&rec, SampleEncoding::I16))
            .unwrap()
            .unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn v2_unknown_tlv_blocks_are_skipped() {
        // Splice an unknown block (type 200) ahead of the payload block:
        // a forward-compatible reader must decode the record unchanged.
        let rec = Record::data(5, Payload::Text("hi".into())).with_seq(7);
        let frame = encode_frame_v2(&rec, SampleEncoding::F64);
        // Rebuild the frame with the extra block prepended to the body.
        let mut body = BytesMut::new();
        put_uvarint(&mut body, 200);
        put_uvarint(&mut body, 3);
        body.extend_from_slice(b"xyz");
        encode_body_v2(&rec.payload, SampleEncoding::F64, &mut body);
        let mut out = BytesMut::new();
        out.put_u8(V2_MAGIC);
        out.put_u8(rec.kind.tag());
        put_uvarint(&mut out, u64::from(rec.subtype));
        put_uvarint(&mut out, u64::from(rec.scope_depth));
        put_uvarint(&mut out, u64::from(rec.scope_type));
        put_uvarint(&mut out, rec.seq);
        put_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        out.put_u32_le(crc);
        let spliced = out.to_vec();
        assert_ne!(spliced, frame);
        let (decoded, used) = decode_frame(&spliced).unwrap().unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(used, spliced.len());
    }

    #[test]
    fn v2_duplicate_payload_block_rejected() {
        let rec = Record::data(5, Payload::Text("hi".into()));
        let mut body = BytesMut::new();
        encode_body_v2(&rec.payload, SampleEncoding::F64, &mut body);
        encode_body_v2(&rec.payload, SampleEncoding::F64, &mut body);
        let mut out = BytesMut::new();
        out.put_u8(V2_MAGIC);
        out.put_u8(rec.kind.tag());
        for _ in 0..4 {
            put_uvarint(&mut out, 0);
        }
        put_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        out.put_u32_le(crc);
        let err = decode_frame(&out).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("duplicate")));
    }

    #[test]
    fn v2_i16_scale_is_validated_on_decode() {
        // Corrupt the 8-byte scale inside an i16 block, then repair the
        // CRC so the *scale check* (not the checksum) is what fires.
        let rec = Record::data(1, Payload::f64(vec![1.0, -0.5, 0.25]));
        let frame = encode_frame_v2(&rec, SampleEncoding::I16);
        let scale = 1.0 / f64::from(i16::MAX);
        let pos = frame
            .windows(8)
            .position(|w| w == scale.to_le_bytes())
            .expect("scale bytes present in i16 frame");
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut mutated = frame.clone();
            mutated[pos..pos + 8].copy_from_slice(&bad.to_le_bytes());
            fix_crc(&mut mutated);
            let err = decode_frame(&mutated).unwrap_err();
            assert!(
                matches!(&err, PipelineError::Codec(m) if m.contains("scale")),
                "scale {bad}: {err}"
            );
        }
    }

    #[test]
    fn v2_crc_corruption_detected() {
        let mut frame = encode_frame_v2(&samples()[1], SampleEncoding::F64);
        let mid = frame.len() / 2;
        frame[mid] ^= 0xFF;
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(_)));
    }

    #[test]
    fn v2_partial_frames_request_more_bytes() {
        let frame = encode_frame_v2(&samples()[1], SampleEncoding::F32);
        for cut in [0usize, 1, 2, 5, frame.len() - 1] {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn varint_round_trips_and_rejects_malformed() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut out = BytesMut::new();
            put_uvarint(&mut out, v);
            let mut cur = ByteCursor::new(&out);
            assert_eq!(cur.take_uvarint().unwrap(), Some(v));
            assert!(cur.is_empty());
        }
        // Incomplete: continuation bit set, no next byte.
        assert_eq!(ByteCursor::new(&[0x80]).take_uvarint().unwrap(), None);
        // Too long: 10 continuation bytes.
        assert!(ByteCursor::new(&[0x80; 11]).take_uvarint().is_err());
        // Overflow: 10th byte contributes more than u64's last bit.
        let mut overflow = [0xFFu8; 10];
        overflow[9] = 0x02;
        assert!(ByteCursor::new(&overflow).take_uvarint().is_err());
    }

    #[test]
    fn decoder_chunked_feed_yields_same_records() {
        let mut wire = Vec::new();
        for (i, rec) in samples().iter().enumerate() {
            // Mixed versions on one stream.
            let format = if i % 2 == 0 {
                WireFormat::V1
            } else {
                WireFormat::V2(SampleEncoding::F64)
            };
            wire.extend_from_slice(&encode_frame_with(rec, format));
        }
        write_eos(&mut wire).unwrap();

        for chunk in [1usize, 3, 7, wire.len()] {
            let mut dec = Decoder::new();
            let mut events = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece, &mut events).unwrap();
            }
            let records: Vec<&Record> = events
                .iter()
                .filter_map(|e| match e {
                    DecodeEvent::Record(r) => Some(r),
                    DecodeEvent::CleanEnd | DecodeEvent::KeepAlive => None,
                })
                .collect();
            assert_eq!(records.len(), samples().len(), "chunk {chunk}");
            assert!(events.last() == Some(&DecodeEvent::CleanEnd));
            assert_eq!(dec.wire_version(), Some(VERSION_V2));
            assert!(dec.is_done());
            for (got, want) in records.iter().zip(samples().iter()) {
                assert_eq!(*got, want);
            }
        }
    }

    #[test]
    fn decoder_end_of_input_mid_frame_is_disconnect() {
        let frame = encode_frame_v2(&samples()[1], SampleEncoding::F64);
        let mut dec = Decoder::new();
        let mut events = Vec::new();
        dec.feed(&frame[..frame.len() / 2], &mut events).unwrap();
        assert!(events.is_empty());
        assert!(matches!(
            dec.end_of_input().unwrap_err(),
            PipelineError::Disconnected(_)
        ));
        // An empty decoder, or a partial sentinel, ends uncleanly but
        // without a disconnect error.
        assert!(Decoder::new().end_of_input().is_ok());
        let mut dec = Decoder::new();
        dec.feed(b"RV", &mut events).unwrap();
        assert!(dec.end_of_input().is_ok());
    }

    #[test]
    fn decoder_rejects_bytes_after_sentinel_and_stays_poisoned() {
        let mut dec = Decoder::new();
        let mut events = Vec::new();
        let mut wire = Vec::new();
        write_eos(&mut wire).unwrap();
        wire.push(0x00);
        let err = dec.feed(&wire, &mut events).unwrap_err();
        assert!(matches!(err, PipelineError::Codec(m) if m.contains("sentinel")));
        // The clean end decoded before the stray byte is preserved.
        assert_eq!(events, vec![DecodeEvent::CleanEnd]);
        assert!(matches!(
            dec.feed(&[], &mut events).unwrap_err(),
            PipelineError::Codec(m) if m.contains("poisoned")
        ));
    }

    #[test]
    fn frame_len_reports_boundaries_for_both_versions() {
        let rec = &samples()[1];
        for format in [WireFormat::V1, WireFormat::V2(SampleEncoding::I16)] {
            let frame = encode_frame_with(rec, format);
            assert_eq!(frame_len(&frame).unwrap(), Some(frame.len()));
            assert_eq!(frame_len(&frame[..frame.len() - 1]).unwrap(), None);
            let mut extended = frame.clone();
            extended.extend_from_slice(b"tail");
            assert_eq!(frame_len(&extended).unwrap(), Some(frame.len()));
        }
        assert_eq!(frame_len(&EOS_MAGIC).unwrap(), Some(4));
        assert!(frame_len(&[0x00]).is_err());
    }

    #[test]
    fn counted_reads_handle_v2_frames() {
        let mut wire = Vec::new();
        let mut expected = 0u64;
        for rec in samples() {
            let frame = encode_frame_v2(&rec, SampleEncoding::F64);
            expected += frame.len() as u64;
            wire.extend_from_slice(&frame);
        }
        write_eos(&mut wire).unwrap();
        let mut cursor = wire.as_slice();
        let mut counted = 0u64;
        let mut records = 0usize;
        loop {
            let (outcome, n) = read_record_counted(&mut cursor).unwrap();
            counted += n;
            match outcome {
                ReadOutcome::Record(_) => records += 1,
                ReadOutcome::CleanEnd => break,
                ReadOutcome::UncleanEnd => panic!("unexpected unclean end"),
            }
        }
        assert_eq!(records, samples().len());
        assert_eq!(counted, expected + 4);
    }
}
