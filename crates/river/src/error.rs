//! Pipeline error type.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors surfaced by pipeline execution, the wire codec and network
/// operators.
#[derive(Debug)]
pub enum PipelineError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed or corrupted wire data (bad magic, CRC mismatch,
    /// unknown tags, truncation).
    Codec(String),
    /// An operator failed.
    Operator {
        /// Operator name.
        operator: String,
        /// Failure description.
        message: String,
    },
    /// A stage disconnected unexpectedly (channel closed, peer reset).
    Disconnected(String),
    /// Scope discipline violated beyond repair (close without open at
    /// the decoder boundary).
    ScopeViolation(String),
    /// The static chain analyzer found errors during a pre-flight
    /// check ([`Pipeline::check`](crate::pipeline::Pipeline::check));
    /// the chain was refused before any record flowed.
    Analysis(Vec<crate::analyze::Diagnostic>),
}

impl PipelineError {
    /// Convenience constructor for operator failures.
    pub fn operator(operator: impl Into<String>, message: impl Into<String>) -> Self {
        PipelineError::Operator {
            operator: operator.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
            PipelineError::Codec(m) => write!(f, "codec error: {m}"),
            PipelineError::Operator { operator, message } => {
                write!(f, "operator '{operator}' failed: {message}")
            }
            PipelineError::Disconnected(m) => write!(f, "disconnected: {m}"),
            PipelineError::ScopeViolation(m) => write!(f, "scope violation: {m}"),
            PipelineError::Analysis(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == crate::analyze::Severity::Error)
                    .count();
                write!(f, "chain analysis failed with {errors} error(s)")?;
                for d in diags
                    .iter()
                    .filter(|d| d.severity == crate::analyze::Severity::Error)
                {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<PipelineError> = vec![
            PipelineError::Codec("bad magic".into()),
            PipelineError::operator("dft", "bad input"),
            PipelineError::Disconnected("peer reset".into()),
            PipelineError::ScopeViolation("close without open".into()),
            PipelineError::Io(io::Error::other("x")),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_source_preserved() {
        let e = PipelineError::from(io::Error::new(io::ErrorKind::BrokenPipe, "pipe"));
        assert!(e.source().is_some());
    }
}
