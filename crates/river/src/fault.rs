//! Fault injection for resilience testing.
//!
//! The paper argues that "pipelines composed for data acquisition and
//! analysis of continuous sensor data streams must be able to
//! resynchronize and enable the continuation of meaningful data stream
//! processing in the face of pipeline recomposition and faults" (§5).
//! These operators let tests inject the faults those mechanisms must
//! absorb.

use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::{Record, RecordKind};

/// Fails the pipeline after passing `n` records — simulates an operator
/// crash mid-stream.
#[derive(Debug, Clone, Copy)]
pub struct FailAfter {
    remaining: u64,
}

impl FailAfter {
    /// Creates an operator that forwards `n` records then errors.
    pub fn new(n: u64) -> Self {
        FailAfter { remaining: n }
    }
}

impl Operator for FailAfter {
    fn name(&self) -> &'static str {
        "fail-after"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if self.remaining == 0 {
            return Err(PipelineError::operator(
                "fail-after",
                "injected fault: operator crashed",
            ));
        }
        self.remaining -= 1;
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Drops every `k`-th scope-closing record — simulates a buggy or
/// crashing producer that leaves scopes dangling. Downstream
/// `ScopeRepair` / `streamin` must synthesize `BadCloseScope` records.
#[derive(Debug, Clone, Copy)]
pub struct DropCloses {
    k: u64,
    seen_closes: u64,
}

impl DropCloses {
    /// Drops every `k`-th close (1-based: `k = 1` drops every close).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn every(k: u64) -> Self {
        assert!(k > 0, "k must be non-zero");
        DropCloses { k, seen_closes: 0 }
    }
}

impl Operator for DropCloses {
    fn name(&self) -> &'static str {
        "drop-closes"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind.closes_scope() {
            self.seen_closes += 1;
            if self.seen_closes.is_multiple_of(self.k) {
                return Ok(()); // dropped
            }
        }
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Truncates the stream after `n` records (swallows the rest without
/// erroring) — simulates an upstream that silently stops, leaving open
/// scopes for the repair machinery.
#[derive(Debug, Clone, Copy)]
pub struct TruncateAfter {
    remaining: u64,
}

impl TruncateAfter {
    /// Creates an operator that forwards only the first `n` records.
    pub fn new(n: u64) -> Self {
        TruncateAfter { remaining: n }
    }
}

impl Operator for TruncateAfter {
    fn name(&self) -> &'static str {
        "truncate-after"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if self.remaining == 0 {
            return Ok(());
        }
        self.remaining -= 1;
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Corrupts the subtype of every `k`-th data record — used to verify
/// that consumers validate rather than trust headers.
#[derive(Debug, Clone, Copy)]
pub struct CorruptSubtype {
    k: u64,
    seen: u64,
}

impl CorruptSubtype {
    /// Corrupts every `k`-th data record (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn every(k: u64) -> Self {
        assert!(k > 0, "k must be non-zero");
        CorruptSubtype { k, seen: 0 }
    }
}

impl Operator for CorruptSubtype {
    fn name(&self) -> &'static str {
        "corrupt-subtype"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data {
            self.seen += 1;
            if self.seen.is_multiple_of(self.k) {
                record.subtype = u16::MAX;
            }
        }
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// One wire-level mutation a [`WireMangler`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mangle {
    /// Flip one bit somewhere in one frame.
    FlipBit,
    /// Drop the tail of the stream from inside a frame.
    Truncate,
    /// Insert garbage bytes between two frames.
    InsertGarbage,
    /// Duplicate a whole frame in place.
    DuplicateFrame,
    /// Remove a whole frame.
    DeleteFrame,
}

/// Byte-level corruption injector that understands *frame boundaries*
/// for both wire versions (via [`crate::codec::frame_len`]), so tests
/// and the fuzz harness can aim mutations precisely: inside a frame
/// (checksum territory), between frames (magic/sync territory), or at
/// whole-frame granularity (duplicate/delete). Deterministic: the same
/// seed always produces the same mangled bytes.
#[derive(Debug, Clone)]
pub struct WireMangler {
    state: u64,
}

impl WireMangler {
    /// Creates a mangler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        WireMangler {
            // xorshift64 has one fixed point at 0; nudge it off.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// Next pseudo-random u64 (xorshift64 — no external RNG needed).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish index in `0..n` (`n` must be non-zero).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Splits a wire byte stream at frame boundaries. Trailing bytes
    /// that do not form a complete frame (or are unparseable) are
    /// returned as a final undersized chunk.
    pub fn frames(wire: &[u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let mut rest = wire;
        while !rest.is_empty() {
            if let Ok(Some(n)) = crate::codec::frame_len(rest) {
                frames.push(rest[..n].to_vec());
                rest = &rest[n..];
            } else {
                frames.push(rest.to_vec());
                break;
            }
        }
        frames
    }

    /// Applies one mutation to a copy of `wire`, returning the mangled
    /// bytes. Empty input is returned unchanged.
    pub fn mangle(&mut self, wire: &[u8], how: Mangle) -> Vec<u8> {
        if wire.is_empty() {
            return Vec::new();
        }
        match how {
            Mangle::FlipBit => {
                let mut out = wire.to_vec();
                let at = self.index(out.len());
                out[at] ^= 1 << self.index(8);
                out
            }
            Mangle::Truncate => wire[..self.index(wire.len())].to_vec(),
            Mangle::InsertGarbage => {
                let frames = Self::frames(wire);
                let at = self.index(frames.len() + 1);
                let mut out = Vec::with_capacity(wire.len() + 8);
                for (i, f) in frames.iter().enumerate() {
                    if i == at {
                        let garbage = self.next_u64().to_le_bytes();
                        out.extend_from_slice(&garbage);
                    }
                    out.extend_from_slice(f);
                }
                if at == frames.len() {
                    out.extend_from_slice(&self.next_u64().to_le_bytes());
                }
                out
            }
            Mangle::DuplicateFrame => {
                let frames = Self::frames(wire);
                let at = self.index(frames.len());
                let mut out = Vec::with_capacity(wire.len() + frames[at].len());
                for (i, f) in frames.iter().enumerate() {
                    out.extend_from_slice(f);
                    if i == at {
                        out.extend_from_slice(f);
                    }
                }
                out
            }
            Mangle::DeleteFrame => {
                let frames = Self::frames(wire);
                let at = self.index(frames.len());
                let mut out = Vec::with_capacity(wire.len());
                for (i, f) in frames.iter().enumerate() {
                    if i != at {
                        out.extend_from_slice(f);
                    }
                }
                out
            }
        }
    }

    /// Picks one of the mutation kinds pseudo-randomly.
    pub fn pick(&mut self) -> Mangle {
        match self.next_u64() % 5 {
            0 => Mangle::FlipBit,
            1 => Mangle::Truncate,
            2 => Mangle::InsertGarbage,
            3 => Mangle::DuplicateFrame,
            _ => Mangle::DeleteFrame,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScopeRepair;
    use crate::pipeline::Pipeline;
    use crate::record::Payload;
    use crate::scope::validate_scopes;

    fn stream() -> Vec<Record> {
        let mut v = Vec::new();
        for s in 0..3 {
            v.push(Record::open_scope(1, vec![]));
            for i in 0..4 {
                v.push(Record::data(1, Payload::f64(vec![i as f64])).with_seq(s * 10 + i));
            }
            v.push(Record::close_scope(1));
        }
        v
    }

    #[test]
    fn fail_after_aborts() {
        let mut p = Pipeline::new();
        p.add(FailAfter::new(5));
        let err = p.run(stream()).unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn fail_after_passes_when_stream_shorter() {
        let mut p = Pipeline::new();
        p.add(FailAfter::new(100));
        assert_eq!(p.run(stream()).unwrap().len(), 18);
    }

    #[test]
    fn drop_closes_then_repair_resynchronizes() {
        let mut p = Pipeline::new();
        p.add(DropCloses::every(2)); // drops closes 2, (4), ...
        p.add(ScopeRepair::new());
        let out = p.run(stream()).unwrap();
        // Repair must leave the stream balanced.
        validate_scopes(&out).unwrap();
        // And some BadCloseScope records must exist.
        assert!(out.iter().any(|r| r.kind == RecordKind::BadCloseScope));
    }

    #[test]
    fn truncate_then_repair() {
        let mut p = Pipeline::new();
        p.add(TruncateAfter::new(8)); // cuts inside the second scope
        p.add(ScopeRepair::new());
        let out = p.run(stream()).unwrap();
        validate_scopes(&out).unwrap();
        let bad = out
            .iter()
            .filter(|r| r.kind == RecordKind::BadCloseScope)
            .count();
        assert_eq!(bad, 1);
    }

    #[test]
    fn corrupt_subtype_marks_records() {
        let mut p = Pipeline::new();
        p.add(CorruptSubtype::every(3));
        let out = p.run(stream()).unwrap();
        let corrupted = out.iter().filter(|r| r.subtype == u16::MAX).count();
        assert_eq!(corrupted, 4); // 12 data records / 3
    }

    #[test]
    #[should_panic(expected = "k must be non-zero")]
    fn rejects_zero_k() {
        DropCloses::every(0);
    }

    fn wire() -> Vec<u8> {
        use crate::codec::{write_eos, write_record_with, SampleEncoding, WireFormat};
        let mut buf = Vec::new();
        for (i, r) in stream().iter().enumerate() {
            let fmt = if i % 2 == 0 {
                WireFormat::V1
            } else {
                WireFormat::V2(SampleEncoding::F32)
            };
            write_record_with(&mut buf, r, fmt).unwrap();
        }
        write_eos(&mut buf).unwrap();
        buf
    }

    #[test]
    fn mangler_splits_mixed_version_wire_at_frame_boundaries() {
        let wire = wire();
        let frames = WireMangler::frames(&wire);
        // 18 records + the EOS sentinel.
        assert_eq!(frames.len(), 19);
        assert_eq!(frames.iter().map(Vec::len).sum::<usize>(), wire.len());
        assert_eq!(frames.last().unwrap().len(), 4);
    }

    #[test]
    fn mangler_is_deterministic_per_seed() {
        let wire = wire();
        for how in [
            Mangle::FlipBit,
            Mangle::Truncate,
            Mangle::InsertGarbage,
            Mangle::DuplicateFrame,
            Mangle::DeleteFrame,
        ] {
            let a = WireMangler::new(42).mangle(&wire, how);
            let b = WireMangler::new(42).mangle(&wire, how);
            assert_eq!(a, b, "{how:?}");
            let c = WireMangler::new(43).mangle(&wire, how);
            assert!(a != c || how == Mangle::DeleteFrame || how == Mangle::DuplicateFrame);
        }
    }

    #[test]
    fn whole_frame_mutations_change_frame_counts() {
        let wire = wire();
        let baseline = WireMangler::frames(&wire).len();
        let dup = WireMangler::new(7).mangle(&wire, Mangle::DuplicateFrame);
        assert_eq!(WireMangler::frames(&dup).len(), baseline + 1);
        let del = WireMangler::new(7).mangle(&wire, Mangle::DeleteFrame);
        assert_eq!(WireMangler::frames(&del).len(), baseline - 1);
    }
}
