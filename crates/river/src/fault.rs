//! Fault injection for resilience testing.
//!
//! The paper argues that "pipelines composed for data acquisition and
//! analysis of continuous sensor data streams must be able to
//! resynchronize and enable the continuation of meaningful data stream
//! processing in the face of pipeline recomposition and faults" (§5).
//! These operators let tests inject the faults those mechanisms must
//! absorb.

use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::{Record, RecordKind};

/// Fails the pipeline after passing `n` records — simulates an operator
/// crash mid-stream.
#[derive(Debug, Clone, Copy)]
pub struct FailAfter {
    remaining: u64,
}

impl FailAfter {
    /// Creates an operator that forwards `n` records then errors.
    pub fn new(n: u64) -> Self {
        FailAfter { remaining: n }
    }
}

impl Operator for FailAfter {
    fn name(&self) -> &str {
        "fail-after"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if self.remaining == 0 {
            return Err(PipelineError::operator(
                "fail-after",
                "injected fault: operator crashed",
            ));
        }
        self.remaining -= 1;
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Drops every `k`-th scope-closing record — simulates a buggy or
/// crashing producer that leaves scopes dangling. Downstream
/// `ScopeRepair` / `streamin` must synthesize `BadCloseScope` records.
#[derive(Debug, Clone, Copy)]
pub struct DropCloses {
    k: u64,
    seen_closes: u64,
}

impl DropCloses {
    /// Drops every `k`-th close (1-based: `k = 1` drops every close).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn every(k: u64) -> Self {
        assert!(k > 0, "k must be non-zero");
        DropCloses { k, seen_closes: 0 }
    }
}

impl Operator for DropCloses {
    fn name(&self) -> &str {
        "drop-closes"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind.closes_scope() {
            self.seen_closes += 1;
            if self.seen_closes.is_multiple_of(self.k) {
                return Ok(()); // dropped
            }
        }
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Truncates the stream after `n` records (swallows the rest without
/// erroring) — simulates an upstream that silently stops, leaving open
/// scopes for the repair machinery.
#[derive(Debug, Clone, Copy)]
pub struct TruncateAfter {
    remaining: u64,
}

impl TruncateAfter {
    /// Creates an operator that forwards only the first `n` records.
    pub fn new(n: u64) -> Self {
        TruncateAfter { remaining: n }
    }
}

impl Operator for TruncateAfter {
    fn name(&self) -> &str {
        "truncate-after"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if self.remaining == 0 {
            return Ok(());
        }
        self.remaining -= 1;
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

/// Corrupts the subtype of every `k`-th data record — used to verify
/// that consumers validate rather than trust headers.
#[derive(Debug, Clone, Copy)]
pub struct CorruptSubtype {
    k: u64,
    seen: u64,
}

impl CorruptSubtype {
    /// Corrupts every `k`-th data record (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn every(k: u64) -> Self {
        assert!(k > 0, "k must be non-zero");
        CorruptSubtype { k, seen: 0 }
    }
}

impl Operator for CorruptSubtype {
    fn name(&self) -> &str {
        "corrupt-subtype"
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data {
            self.seen += 1;
            if self.seen.is_multiple_of(self.k) {
                record.subtype = u16::MAX;
            }
        }
        out.push(record)
    }

    /// Clones carry the current countdown/counter — note that in a
    /// sharded run each worker's clone counts its own shard's records.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScopeRepair;
    use crate::pipeline::Pipeline;
    use crate::record::Payload;
    use crate::scope::validate_scopes;

    fn stream() -> Vec<Record> {
        let mut v = Vec::new();
        for s in 0..3 {
            v.push(Record::open_scope(1, vec![]));
            for i in 0..4 {
                v.push(Record::data(1, Payload::f64(vec![i as f64])).with_seq(s * 10 + i));
            }
            v.push(Record::close_scope(1));
        }
        v
    }

    #[test]
    fn fail_after_aborts() {
        let mut p = Pipeline::new();
        p.add(FailAfter::new(5));
        let err = p.run(stream()).unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn fail_after_passes_when_stream_shorter() {
        let mut p = Pipeline::new();
        p.add(FailAfter::new(100));
        assert_eq!(p.run(stream()).unwrap().len(), 18);
    }

    #[test]
    fn drop_closes_then_repair_resynchronizes() {
        let mut p = Pipeline::new();
        p.add(DropCloses::every(2)); // drops closes 2, (4), ...
        p.add(ScopeRepair::new());
        let out = p.run(stream()).unwrap();
        // Repair must leave the stream balanced.
        validate_scopes(&out).unwrap();
        // And some BadCloseScope records must exist.
        assert!(out.iter().any(|r| r.kind == RecordKind::BadCloseScope));
    }

    #[test]
    fn truncate_then_repair() {
        let mut p = Pipeline::new();
        p.add(TruncateAfter::new(8)); // cuts inside the second scope
        p.add(ScopeRepair::new());
        let out = p.run(stream()).unwrap();
        validate_scopes(&out).unwrap();
        let bad = out
            .iter()
            .filter(|r| r.kind == RecordKind::BadCloseScope)
            .count();
        assert_eq!(bad, 1);
    }

    #[test]
    fn corrupt_subtype_marks_records() {
        let mut p = Pipeline::new();
        p.add(CorruptSubtype::every(3));
        let out = p.run(stream()).unwrap();
        let corrupted = out.iter().filter(|r| r.subtype == u16::MAX).count();
        assert_eq!(corrupted, 4); // 12 data records / 3
    }

    #[test]
    #[should_panic(expected = "k must be non-zero")]
    fn rejects_zero_k() {
        DropCloses::every(0);
    }
}
