//! # dynamic-river — a recomposable distributed stream pipeline
//!
//! A from-scratch implementation of the *Dynamic River* prototype of
//! Kasten, McKinley & Gage (DEPSA/ICDCS 2007, §2): "a distributed stream
//! processing pipeline … defined as a sequential set of operations
//! composed between a data source and its final sink. Pipeline segments
//! are created by composing sequences of operators that produce a
//! partial result important to the overall pipeline application.
//! Segments can receive and emit records using the `streamin` and
//! `streamout` operators … enabling instantiation of segments and the
//! construction of a pipeline across networked hosts. Moreover,
//! pipelines can be recomposed dynamically by moving segments among
//! hosts."
//!
//! ## Key concepts
//!
//! - [`record::Record`] — the unit of flow. Records carry `subtype`,
//!   `scope` (nesting depth) and `scope_type` header fields. Sample
//!   payloads are [`buf::SampleBuf`] views over shared `Arc<[f64]>`
//!   buffers: cloning a record or slicing a window out of one is O(1)
//!   and copies no samples (see `DESIGN.md` §10).
//! - **Scopes** — "a sequence of records that share some contextual
//!   meaning, such as having been produced from the same acoustic clip."
//!   Every scope begins with an `OpenScope` record and ends with a
//!   `CloseScope` — or a `BadCloseScope` when an upstream failure forces
//!   closure before the intended point ([`scope::ScopeTracker`]).
//! - [`operator::Operator`] — the processing trait; [`pipeline`] runs
//!   operator chains as a fused streaming chain
//!   ([`pipeline::Pipeline::run_streaming`], constant memory over
//!   unbounded streams, per-stage counters), stage-by-stage in batch,
//!   with one thread per operator, or data-parallel across worker
//!   shards ([`pipeline::Pipeline::run_sharded`]).
//! - [`shard`] — the scope-sharded runtime: a splitter that partitions
//!   the stream at top-level scope boundaries, one cloned chain per
//!   worker over bounded queues, and a deterministic ordered merge
//!   whose output is byte-identical to the single-lane driver.
//! - [`source::Source`] — pull-based record producers feeding the
//!   streaming driver: iterators, fallible closures, and chunked
//!   sample sources.
//! - [`codec`] — the CRC-32-protected wire formats used by
//!   [`net::StreamOut`] / [`net::StreamIn`] across TCP: fixed-header v1
//!   frames plus the compact varint/TLV v2 frames
//!   ([`codec::WireFormat`]) with `f32`/`i16` sample encodings, decoded
//!   by a push-based incremental [`codec::Decoder`] that handles both
//!   versions on one stream (see `DESIGN.md` §13).
//! - [`serve`] — the event-driven service layer: a
//!   [`serve::PipelineServer`] multiplexes many concurrent `streamin`
//!   connections over a readiness loop (non-blocking sockets, one
//!   supervisor thread) and a small worker pool, runs each session
//!   through its own cloned operator chain, repairs each session's
//!   scopes independently, reaps idle sessions (keepalive-aware), and
//!   reports per-session plus aggregate [`StreamStats`] (see
//!   `DESIGN.md` §17).
//! - [`segment`] — named operator chains on in-process *hosts*, with a
//!   coordinator that relocates segments between hosts at scope
//!   boundaries ([`segment::RelocatablePipeline`]).
//! - [`analyze`] — static chain verification: operators declare
//!   [`Signature`]s, [`pipeline::Pipeline::check`] walks a chain
//!   propagating abstract record classes and reports typed
//!   [`Diagnostic`]s, and every runner pre-flights the same analysis so
//!   provably broken chains are refused before any record flows (see
//!   `DESIGN.md` §15).
//! - [`telemetry`] — runtime observability: lock-free per-stage
//!   latency histograms, a bounded structured event log, and mergeable
//!   [`telemetry::Snapshot`]s exposed by every runner behind a
//!   [`telemetry::TelemetryConfig`] (see `DESIGN.md` §16).
//! - [`fault`] — fault injection used by the resilience tests.
//!
//! ## Example: a scoped pipeline
//!
//! ```
//! use dynamic_river::prelude::*;
//!
//! // Scope a little stream, double every payload value, and count.
//! let records = vec![
//!     Record::open_scope(7, vec![]),
//!     Record::data(1, Payload::f64(vec![1.0, 2.0])),
//!     Record::close_scope(7),
//! ];
//! let mut pipeline = Pipeline::new();
//! pipeline.add(MapPayload::new("double", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 2.0);
//! }));
//! let out = pipeline.run(records).unwrap();
//! assert_eq!(out.len(), 3);
//! assert_eq!(out[1].payload.as_f64().unwrap(), &[2.0, 4.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod buf;
pub mod codec;
pub mod error;
pub mod fault;
pub mod net;
pub mod operator;
pub mod ops;
pub mod pipeline;
pub mod record;
pub mod scope;
pub mod segment;
pub mod serve;
pub mod shard;
pub mod source;
pub mod telemetry;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::analyze::{
        CheckOptions, Diagnostic, DiagnosticKind, PayloadKind, RecordClass, ScopeEffect, Severity,
        Signature, UnmatchedPolicy,
    };
    pub use crate::buf::SampleBuf;
    pub use crate::codec::{DecodeEvent, Decoder, SampleEncoding, WireFormat};
    pub use crate::error::PipelineError;
    pub use crate::operator::{CountingSink, FnSink, NullSink, Operator, SharedSink, Sink};
    pub use crate::ops::{
        FnOp, Inspect, MapPayload, Passthrough, RecordCounter, RecordFilter, ScopeSum,
    };
    pub use crate::pipeline::{Pipeline, StageStats, StreamStats};
    pub use crate::record::{Payload, Record, RecordKind};
    pub use crate::scope::{ScopeEvent, ScopeTracker};
    pub use crate::serve::{PipelineServer, ServerHandle, ServerReport, SessionReport};
    pub use crate::shard::ShardedPipeline;
    pub use crate::source::{ChainedSource, ChunkedF64Source, FnSource, Source};
    pub use crate::telemetry::{
        EventKind, EventSeverity, EventSink, Snapshot, StageTimer, Telemetry, TelemetryConfig,
        TelemetryEvent,
    };
}

pub use analyze::{Diagnostic, PayloadKind, RecordClass, ScopeEffect, Signature, UnmatchedPolicy};
pub use buf::SampleBuf;
pub use error::PipelineError;
pub use operator::{CountingSink, Operator, Sink};
pub use pipeline::{Pipeline, StageStats, StreamStats};
pub use record::{Payload, Record, RecordKind};
pub use scope::ScopeTracker;
pub use serve::{PipelineServer, ServerHandle, ServerReport, SessionReport};
pub use shard::ShardedPipeline;
pub use source::Source;
pub use telemetry::{Snapshot, Telemetry, TelemetryConfig};
