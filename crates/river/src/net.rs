//! Network stream operators: `streamout` and `streamin`.
//!
//! "Segments can receive and emit records using the `streamin` and
//! `streamout` operators, respectively, enabling instantiation of
//! segments and the construction of a pipeline across networked hosts"
//! (paper §2). Records travel as CRC-protected frames ([`crate::codec`]);
//! a clean shutdown ends with an end-of-stream sentinel, and "if an
//! upstream segment terminates unexpectedly and leaves one or more
//! scopes open, the `streamin` operator will generate `BadCloseScope`
//! records to close all open scopes."

use crate::codec::{write_eos, write_record_with, DecodeEvent, Decoder, WireFormat};
use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::Record;
use crate::scope::ScopeTracker;
use crate::source::Source;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// `streamout`: an operator that forwards every record over a byte sink
/// (typically a TCP connection) and emits the clean end-of-stream
/// sentinel when the pipeline finishes.
///
/// The sender picks the [`WireFormat`] — that *is* the version
/// negotiation: receivers detect the version per frame, so v1 peers
/// keep working and v2 senders get compact frames with no handshake
/// round trip.
pub struct StreamOut<W: Write + Send> {
    writer: BufWriter<W>,
    sent: u64,
    format: WireFormat,
}

impl<W: Write + Send> StreamOut<W> {
    /// Wraps a byte sink (emitting v1 frames, the default).
    pub fn new(writer: W) -> Self {
        StreamOut {
            writer: BufWriter::new(writer),
            sent: 0,
            format: WireFormat::V1,
        }
    }

    /// Selects the wire format for every subsequent record.
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }

    /// The wire format this sender emits.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Records sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Emits (and flushes) one keepalive sentinel — what a sensor with
    /// no clip in progress sends periodically so a server enforcing
    /// [`crate::serve::PipelineServer::set_idle_timeout`] keeps the
    /// dormant connection open.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] on write failure.
    pub fn keepalive(&mut self) -> Result<(), PipelineError> {
        crate::codec::write_keepalive(&mut self.writer)
    }
}

impl StreamOut<TcpStream> {
    /// Connects to a downstream `streamin` operator.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, PipelineError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::new(stream))
    }
}

impl<W: Write + Send> Operator for StreamOut<W> {
    fn name(&self) -> &'static str {
        "streamout"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_record_with(&mut self.writer, &record, self.format)?;
        self.sent += 1;
        // streamout is usually terminal, but passing records through lets
        // callers tee the stream locally as well.
        out.push(record)
    }

    fn on_eos(&mut self, _out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_eos(&mut self.writer)?;
        Ok(())
    }
}

/// How a [`StreamIn`] session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEnd {
    /// The upstream emitted the end-of-stream sentinel with all scopes
    /// closed.
    Clean,
    /// The upstream vanished (connection drop / truncation) or said
    /// goodbye mid-scope; open scopes were closed with `BadCloseScope`
    /// records.
    Unclean {
        /// Number of `BadCloseScope` records synthesized.
        repaired_scopes: u32,
    },
}

/// The byte→record half of `streamin` with the I/O factored out: a
/// push-based assembler that turns arbitrarily fragmented wire bytes
/// into a scope-consistent record sequence.
///
/// [`feed`](Self::feed) accepts whatever a (possibly non-blocking)
/// socket read produced; [`next_ready`](Self::next_ready) hands back
/// the records that have fully materialized so far. On top of the
/// incremental [`Decoder`] it layers exactly the session semantics
/// `streamin` promises:
///
/// - scope accounting ([`ScopeTracker`]), with stray closes dropped at
///   the network boundary rather than treated as fatal;
/// - `BadCloseScope` repair synthesis when the upstream dies mid-scope
///   (on EOF via [`finish`](Self::finish), administratively via
///   [`abort_repair`](Self::abort_repair));
/// - error *ordering*: a corrupt frame surfaces only after every
///   record decoded before it has been delivered, matching what a
///   frame-at-a-time blocking reader would have observed;
/// - keepalive sentinels consumed and counted, never delivered.
///
/// [`StreamIn`] wraps this with a blocking reader; the event-driven
/// service layer ([`crate::serve`]) drives it directly from readiness
/// callbacks, which is what makes thousands of mostly-idle sessions
/// per host affordable.
#[derive(Debug, Default)]
pub struct RecordAssembler {
    /// Incremental frame decoder: chunks go in, records come out. It
    /// buffers internally, so no `BufReader` wrapper is needed.
    decoder: Decoder,
    /// Decoded events not yet delivered to the caller.
    events: VecDeque<DecodeEvent>,
    /// A decode (or injected I/O) error held back until every record
    /// decoded *before* it has been delivered.
    pending_error: Option<PipelineError>,
    tracker: ScopeTracker,
    received: u64,
    wire_bytes: u64,
    keepalives: u64,
    /// Synthesized `BadCloseScope` repairs not yet handed out.
    repairs: VecDeque<Record>,
    /// EOF declared by the reader; repairs are synthesized once every
    /// decoded event before the EOF has been delivered.
    eof: bool,
    /// Set once the stream has ended (no more bytes are expected).
    done: Option<StreamEnd>,
}

impl RecordAssembler {
    /// A fresh assembler with no buffered bytes.
    pub fn new() -> Self {
        RecordAssembler::default()
    }

    /// The wire version of the most recently decoded frame, if any —
    /// what this peer's sender negotiated, learned passively from the
    /// bytes themselves.
    pub fn wire_version(&self) -> Option<u8> {
        self.decoder.wire_version()
    }

    /// Records received so far (synthesized repairs are not counted).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Wire bytes consumed so far (frames, sentinels and any partial
    /// trailing frame) — the session-traffic counter behind
    /// [`crate::serve::SessionReport::wire_bytes`].
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Keepalive sentinels consumed so far. The service layer samples
    /// this to tell a dormant-but-alive sensor from a dead one.
    pub fn keepalives(&self) -> u64 {
        self.keepalives
    }

    /// Decoded-but-undelivered events — the service layer's decode-ahead
    /// backlog gauge, used to stop reading a socket whose chain has
    /// fallen behind (backpressure moves into the peer's TCP window).
    pub fn backlog(&self) -> usize {
        self.events.len()
    }

    /// How the stream ended, once [`next_ready`](Self::next_ready) has
    /// drained to `Ok(None)` after [`finish`](Self::finish)/
    /// [`abort_repair`](Self::abort_repair). `None` means the stream is
    /// still live (an `Ok(None)` from `next_ready` then just means
    /// "feed me more bytes").
    pub fn end(&self) -> Option<StreamEnd> {
        self.done
    }

    /// Appends a chunk of wire bytes (any fragmentation). Decode errors
    /// are *not* raised here: they queue behind the records decoded
    /// before them and surface from [`next_ready`](Self::next_ready) in
    /// delivery order.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.wire_bytes += bytes.len() as u64;
        let mut decoded = Vec::new();
        let fed = self.decoder.feed(bytes, &mut decoded);
        self.events.extend(decoded);
        if let Err(e) = fed {
            // Keep the first error; a poisoned decoder repeats itself.
            self.pending_error.get_or_insert(e);
        }
    }

    /// Injects a read-side failure (socket error) into the delivery
    /// queue, behind the records already decoded — the non-blocking
    /// counterpart of a blocking read returning `Err`.
    pub fn fail(&mut self, error: PipelineError) {
        self.pending_error.get_or_insert(error);
    }

    /// Declares EOF: no more bytes will ever be fed. Repair synthesis
    /// waits until every already-decoded record has been delivered, so
    /// `BadCloseScope` records always close exactly the scopes the
    /// caller saw open.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Pulls the next ready record: decoded records first (in wire
    /// order), then any held-back error, then — once the stream has
    /// ended — synthesized `BadCloseScope` repairs, then `Ok(None)`.
    /// When `Ok(None)` is returned and [`end`](Self::end) is still
    /// `None`, the assembler simply needs more bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] on frame corruption and
    /// [`PipelineError::Io`] on injected read failures, after every
    /// record decoded before the fault has been delivered. After an
    /// error the wire is untrustworthy — callers that want to keep
    /// their downstream scope-consistent should invoke
    /// [`abort_repair`](Self::abort_repair).
    pub fn next_ready(&mut self) -> Result<Option<Record>, PipelineError> {
        loop {
            match self.events.pop_front() {
                Some(DecodeEvent::Record(record)) => {
                    // Scope accounting; violations at the network boundary
                    // are repaired (stray closes dropped), not fatal.
                    match self.tracker.observe(&record) {
                        Ok(_) => {
                            self.received += 1;
                            return Ok(Some(record));
                        }
                        Err(PipelineError::ScopeViolation(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Some(DecodeEvent::CleanEnd) => {
                    // A clean end with open scopes still repairs them: the
                    // upstream said goodbye mid-scope.
                    self.queue_repairs(true);
                    continue;
                }
                Some(DecodeEvent::KeepAlive) => {
                    self.keepalives += 1;
                    continue;
                }
                None => {}
            }
            if let Some(e) = self.pending_error.take() {
                return Err(e);
            }
            if let Some(repair) = self.repairs.pop_front() {
                return Ok(Some(repair));
            }
            if self.done.is_some() {
                return Ok(None);
            }
            if self.eof {
                // EOF with everything decoded delivered: classify the
                // residue (a partial trailing frame is a mid-frame
                // disconnect, not an error) and synthesize repairs.
                match self.decoder.end_of_input() {
                    Ok(()) | Err(PipelineError::Disconnected(_)) => self.queue_repairs(false),
                    Err(e) => return Err(e),
                }
                continue;
            }
            return Ok(None); // live stream: feed me more bytes
        }
    }

    /// Ends the session administratively after an error: hands back any
    /// queued-but-undelivered repairs plus `BadCloseScope` records for
    /// every still-open scope (innermost first, exactly what an unclean
    /// disconnect would have queued) and marks the stream
    /// [`StreamEnd::Unclean`]. An end already recorded (e.g. a
    /// disconnect whose repairs were mid-delivery) is preserved, so
    /// `repaired_scopes` keeps counting every repair synthesized for
    /// the session. The service layer calls this when a session's wire
    /// turns poisonous (CRC mismatch, bad magic) or its idle timeout
    /// expires, so that session's downstream state resynchronizes while
    /// its neighbors keep flowing.
    pub fn abort_repair(&mut self) -> Vec<Record> {
        // The wire is untrustworthy: decoded-but-undelivered events are
        // discarded (their scopes were never observed, so the delivered
        // prefix stays balanced without them).
        self.events.clear();
        self.pending_error = None;
        let mut repairs: Vec<Record> = self.repairs.drain(..).collect();
        repairs.extend(self.tracker.close_all_bad());
        if self.done.is_none() {
            self.done = Some(StreamEnd::Unclean {
                repaired_scopes: repairs.len() as u32,
            });
        }
        repairs
    }

    fn queue_repairs(&mut self, clean: bool) {
        let repairs = self.tracker.close_all_bad();
        let n = repairs.len() as u32;
        self.repairs.extend(repairs);
        self.done = Some(if clean && n == 0 {
            StreamEnd::Clean
        } else {
            StreamEnd::Unclean { repaired_scopes: n }
        });
    }
}

/// `streamin`: decodes records from a byte source, tracking scope state
/// and repairing it when the upstream dies.
///
/// This is a blocking [`Read`] loop around [`RecordAssembler`], which
/// holds all the decode/scope/repair semantics. Two consumption styles
/// are offered: the push-based [`pump`](Self::pump) (drain everything
/// into a [`Sink`]) and the pull-based
/// [`next_record`](Self::next_record), which is also exposed as a
/// [`Source`] so a connection can feed
/// [`Pipeline::run_streaming`](crate::pipeline::Pipeline::run_streaming)
/// directly. The event-driven service layer ([`crate::serve`]) skips
/// this wrapper and drives the assembler from socket readiness, one
/// shared poll loop for the whole session fleet.
pub struct StreamIn<R: Read> {
    reader: R,
    assembler: RecordAssembler,
}

impl<R: Read> StreamIn<R> {
    /// Wraps a byte source.
    pub fn new(reader: R) -> Self {
        StreamIn {
            reader,
            assembler: RecordAssembler::new(),
        }
    }

    /// The wire version of the most recently decoded frame, if any —
    /// what this peer's sender negotiated, learned passively from the
    /// bytes themselves.
    pub fn wire_version(&self) -> Option<u8> {
        self.assembler.wire_version()
    }

    /// Records received so far (synthesized repairs are not counted).
    pub fn received(&self) -> u64 {
        self.assembler.received()
    }

    /// Wire bytes consumed so far (frames, sentinels and any partial
    /// trailing frame) — the session-traffic counter behind
    /// [`crate::serve::SessionReport::wire_bytes`].
    pub fn wire_bytes(&self) -> u64 {
        self.assembler.wire_bytes()
    }

    /// Keepalive sentinels consumed so far (never delivered as records).
    pub fn keepalives(&self) -> u64 {
        self.assembler.keepalives()
    }

    /// How the stream ended, once [`next_record`](Self::next_record) has returned
    /// `Ok(None)` (or the session was [aborted](Self::abort_repair)).
    pub fn end(&self) -> Option<StreamEnd> {
        self.assembler.end()
    }

    /// Pulls the next record: real records first, then — after the
    /// upstream ends — any synthesized `BadCloseScope` repairs, then
    /// `Ok(None)`. Once `None` is returned, [`end`](Self::end) reports
    /// how the stream terminated. This is also the [`Source`]
    /// implementation, so a connection can feed the streaming driver
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] on frame corruption and
    /// [`PipelineError::Io`] on I/O failure; disconnects mid-frame are
    /// treated as unclean ends rather than errors. After an error the
    /// wire is untrustworthy — callers that want to keep their
    /// downstream scope-consistent should invoke
    /// [`abort_repair`](Self::abort_repair).
    pub fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        loop {
            match self.assembler.next_ready()? {
                Some(record) => return Ok(Some(record)),
                None => {
                    if self.assembler.end().is_some() {
                        return Ok(None);
                    }
                }
            }
            let mut chunk = [0u8; 8192];
            match self.reader.read(&mut chunk) {
                Ok(0) => self.assembler.finish(),
                Ok(n) => self.assembler.feed(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(PipelineError::Io(e)),
            }
        }
    }

    /// Ends the session administratively after an error — see
    /// [`RecordAssembler::abort_repair`]. No further reads happen.
    pub fn abort_repair(&mut self) -> Vec<Record> {
        self.assembler.abort_repair()
    }

    /// Pumps every record into `sink` until the stream ends, returning
    /// how it ended. On an unclean end, synthesized `BadCloseScope`
    /// records are pushed into the sink before returning, so downstream
    /// scope state resynchronizes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] on frame corruption and
    /// [`PipelineError::Io`] on I/O failure; disconnects mid-frame are
    /// treated as unclean ends rather than errors.
    pub fn pump(&mut self, sink: &mut dyn Sink) -> Result<StreamEnd, PipelineError> {
        while let Some(record) = self.next_record()? {
            sink.push(record)?;
        }
        Ok(self
            .assembler
            .end()
            .expect("next() returned None, so the stream ended"))
    }
}

/// A `streamin` connection is a pull-based record [`Source`]: repairs
/// are delivered in-stream after an unclean end, so the driver's sink
/// always sees a scope-consistent sequence.
impl<R: Read> Source for StreamIn<R> {
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        StreamIn::next_record(self)
    }
}

/// Serves exactly one upstream connection: accepts on `listener`,
/// pumps all records into `sink`, and reports how the session ended
/// together with the number of records received
/// ([`StreamIn::received`]).
///
/// # Errors
///
/// Propagates accept/read failures.
pub fn serve_once(
    listener: &TcpListener,
    sink: &mut dyn Sink,
) -> Result<(StreamEnd, u64), PipelineError> {
    let (stream, _peer) = listener.accept()?;
    stream.set_nodelay(true)?;
    let mut streamin = StreamIn::new(stream);
    let end = streamin.pump(sink)?;
    Ok((end, streamin.received()))
}

/// Sends a record batch (plus the sentinel) to `addr` over one framed
/// [`StreamOut`] connection, returning the number of records sent —
/// the convenience used by sources and tests.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on connection or write failure.
pub fn send_all<A: ToSocketAddrs>(addr: A, records: &[Record]) -> Result<u64, PipelineError> {
    send_all_with(addr, records, WireFormat::V1)
}

/// Like [`send_all`], but emitting frames in the given [`WireFormat`] —
/// how a sensor opts into the compact v2 wire.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on connection or write failure.
pub fn send_all_with<A: ToSocketAddrs>(
    addr: A,
    records: &[Record],
    format: WireFormat,
) -> Result<u64, PipelineError> {
    let mut out = StreamOut::connect(addr)?.with_format(format);
    let mut sink = crate::operator::NullSink;
    for r in records {
        out.on_record(r.clone(), &mut sink)?;
    }
    out.on_eos(&mut sink)?;
    Ok(out.sent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{write_record, SampleEncoding};
    use crate::record::{Payload, RecordKind};
    use std::net::TcpListener;
    use std::thread;

    fn scoped_records(n: usize) -> Vec<Record> {
        let mut v = vec![Record::open_scope(1, vec![("rate".into(), "20160".into())])];
        for i in 0..n {
            v.push(Record::data(1, Payload::f64(vec![i as f64])).with_seq(i as u64));
        }
        v.push(Record::close_scope(1));
        v
    }

    #[test]
    fn tcp_round_trip_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let records = scoped_records(50);
        let send = records.clone();
        let sender = thread::spawn(move || send_all(addr, &send).unwrap());
        let mut sink: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&listener, &mut sink).unwrap();
        let sent = sender.join().unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink, records);
        assert_eq!(sent as usize, records.len());
        assert_eq!(received as usize, records.len());
    }

    #[test]
    fn unclean_disconnect_synthesizes_bad_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = BufWriter::new(stream);
            write_record(&mut writer, &Record::open_scope(3, vec![])).unwrap();
            write_record(&mut writer, &Record::open_scope(4, vec![])).unwrap();
            write_record(&mut writer, &Record::data(1, Payload::f64(vec![1.0]))).unwrap();
            writer.flush().unwrap();
            // Drop without sentinel: simulated crash.
        });
        let mut sink: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&listener, &mut sink).unwrap();
        sender.join().unwrap();
        assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 2 });
        assert_eq!(received, 3); // synthesized repairs are not "received"
        assert_eq!(sink.len(), 5);
        assert_eq!(sink[3].kind, RecordKind::BadCloseScope);
        assert_eq!(sink[3].scope_type, 4); // innermost first
        assert_eq!(sink[4].scope_type, 3);
        crate::scope::validate_scopes(&sink).unwrap();
    }

    #[test]
    fn clean_end_with_open_scope_still_repairs() {
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::open_scope(9, vec![])).unwrap();
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        let end = si.pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 1 });
        crate::scope::validate_scopes(&sink).unwrap();
    }

    #[test]
    fn stray_close_dropped_at_boundary() {
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::close_scope(2)).unwrap();
        write_record(&mut buf, &Record::data(0, Payload::Empty)).unwrap();
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        let end = si.pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink.len(), 1);
        assert_eq!(si.received(), 1);
    }

    #[test]
    fn streamout_operator_counts_and_tees() {
        let mut buf = Vec::new();
        {
            let mut op = StreamOut::new(&mut buf);
            let mut tee: Vec<Record> = Vec::new();
            for r in scoped_records(3) {
                op.on_record(r, &mut tee).unwrap();
            }
            op.on_eos(&mut tee).unwrap();
            assert_eq!(op.sent(), 5);
            assert_eq!(tee.len(), 5);
        }
        // The bytes decode back to the same stream.
        let mut sink: Vec<Record> = Vec::new();
        let end = StreamIn::new(buf.as_slice()).pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink, scoped_records(3));
    }

    #[test]
    fn pull_api_delivers_repairs_in_stream() {
        // open, open, data, then death: next() yields the three real
        // records, then the two repairs, then None with an Unclean end.
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::open_scope(3, vec![])).unwrap();
        write_record(&mut buf, &Record::open_scope(4, vec![])).unwrap();
        write_record(&mut buf, &Record::data(1, Payload::f64(vec![1.0]))).unwrap();
        let expected_bytes = buf.len() as u64;
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.end(), None);
        let mut pulled = Vec::new();
        while let Some(r) = si.next_record().unwrap() {
            pulled.push(r);
        }
        assert_eq!(pulled.len(), 5);
        assert_eq!(pulled[3].kind, RecordKind::BadCloseScope);
        assert_eq!(pulled[4].kind, RecordKind::BadCloseScope);
        assert_eq!(si.end(), Some(StreamEnd::Unclean { repaired_scopes: 2 }));
        assert_eq!(si.received(), 3);
        assert_eq!(si.wire_bytes(), expected_bytes);
        crate::scope::validate_scopes(&pulled).unwrap();
        // Pulling past the end stays None.
        assert!(si.next_record().unwrap().is_none());
    }

    #[test]
    fn streamin_is_a_source_for_the_streaming_driver() {
        let mut buf = Vec::new();
        for r in scoped_records(4) {
            write_record(&mut buf, &r).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let mut p = crate::pipeline::Pipeline::new();
        let mut out: Vec<Record> = Vec::new();
        let stats = p
            .run_streaming(StreamIn::new(buf.as_slice()), &mut out)
            .unwrap();
        assert_eq!(out, scoped_records(4));
        assert_eq!(stats.source_records as usize, out.len());
    }

    #[test]
    fn abort_repair_closes_scopes_administratively() {
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::open_scope(5, vec![])).unwrap();
        write_record(&mut buf, &Record::open_scope(6, vec![])).unwrap();
        let mut si = StreamIn::new(buf.as_slice());
        si.next_record().unwrap();
        si.next_record().unwrap();
        let repairs = si.abort_repair();
        assert_eq!(repairs.len(), 2);
        assert_eq!(repairs[0].scope_type, 6); // innermost first
        assert_eq!(si.end(), Some(StreamEnd::Unclean { repaired_scopes: 2 }));
        // The stream is finished; no further reads.
        assert!(si.next_record().unwrap().is_none());
    }

    #[test]
    fn abort_repair_preserves_queued_repairs_and_recorded_end() {
        // A disconnect with two open scopes queues two repairs; aborting
        // after only one was delivered must hand back the other and keep
        // the recorded end, not reset the repair count to zero.
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::open_scope(3, vec![])).unwrap();
        write_record(&mut buf, &Record::open_scope(4, vec![])).unwrap();
        let mut si = StreamIn::new(buf.as_slice());
        si.next_record().unwrap();
        si.next_record().unwrap();
        let first = si.next_record().unwrap().unwrap(); // disconnect: repair for scope 4
        assert_eq!(first.kind, RecordKind::BadCloseScope);
        assert_eq!(first.scope_type, 4);
        assert_eq!(si.end(), Some(StreamEnd::Unclean { repaired_scopes: 2 }));
        let rest = si.abort_repair();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].scope_type, 3);
        assert_eq!(si.end(), Some(StreamEnd::Unclean { repaired_scopes: 2 }));
        assert!(si.next_record().unwrap().is_none());
    }

    #[test]
    fn v2_stream_round_trips_and_reports_version() {
        let mut buf = Vec::new();
        {
            let mut op = StreamOut::new(&mut buf).with_format(WireFormat::V2(SampleEncoding::F64));
            let mut tee: Vec<Record> = Vec::new();
            for r in scoped_records(20) {
                op.on_record(r, &mut tee).unwrap();
            }
            op.on_eos(&mut tee).unwrap();
        }
        let expected_bytes = buf.len() as u64;
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.wire_version(), None);
        assert_eq!(si.pump(&mut sink).unwrap(), StreamEnd::Clean);
        assert_eq!(sink, scoped_records(20));
        assert_eq!(si.wire_version(), Some(crate::codec::VERSION_V2));
        assert_eq!(si.wire_bytes(), expected_bytes);
    }

    #[test]
    fn mixed_version_frames_on_one_stream() {
        // A v1 sender and a v2 sender sharing one byte stream (e.g. a
        // proxy splice) decode seamlessly: versions are per frame.
        let records = scoped_records(6);
        let mut buf = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let format = if i % 2 == 0 {
                WireFormat::V1
            } else {
                WireFormat::V2(SampleEncoding::F64)
            };
            write_record_with(&mut buf, r, format).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.pump(&mut sink).unwrap(), StreamEnd::Clean);
        assert_eq!(sink, records);
    }

    #[test]
    fn v2_unclean_disconnect_synthesizes_bad_closes() {
        let fmt = WireFormat::V2(SampleEncoding::F32);
        let mut buf = Vec::new();
        write_record_with(&mut buf, &Record::open_scope(3, vec![]), fmt).unwrap();
        write_record_with(&mut buf, &Record::open_scope(4, vec![]), fmt).unwrap();
        write_record_with(&mut buf, &Record::data(1, Payload::f64(vec![1.0])), fmt).unwrap();
        // Truncate mid-frame: the sensor died while writing.
        let full = buf.len();
        buf.extend_from_slice(
            &crate::codec::encode_frame_with(&Record::data(1, Payload::f64(vec![2.0])), fmt)[..9],
        );
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        let end = si.pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 2 });
        assert_eq!(sink.len(), 5);
        assert_eq!(sink[3].kind, RecordKind::BadCloseScope);
        // The partial trailing frame still counts as wire traffic.
        assert_eq!(si.wire_bytes(), (full + 9) as u64);
        crate::scope::validate_scopes(&sink).unwrap();
    }

    #[test]
    fn records_before_a_corrupt_frame_are_delivered_first() {
        // Two good frames then a CRC-corrupted one, all fed from one
        // buffer: the good records come out before the error fires.
        let records = scoped_records(1);
        let mut buf = Vec::new();
        write_record(&mut buf, &records[0]).unwrap();
        write_record(&mut buf, &records[1]).unwrap();
        let mut bad =
            crate::codec::encode_frame_with(&records[2], WireFormat::V2(SampleEncoding::F64));
        // Flip a CRC byte: the frame length stays intact, so this is a
        // deterministic checksum failure rather than apparent truncation.
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        buf.extend_from_slice(&bad);
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.next_record().unwrap().unwrap(), records[0]);
        assert_eq!(si.next_record().unwrap().unwrap(), records[1]);
        let err = si.next_record().unwrap_err();
        assert!(matches!(err, PipelineError::Codec(_)));
        // The session layer's standard recovery still applies.
        let repairs = si.abort_repair();
        assert_eq!(repairs.len(), 1);
        assert_eq!(si.end(), Some(StreamEnd::Unclean { repaired_scopes: 1 }));
    }

    #[test]
    fn pump_large_stream() {
        let mut buf = Vec::new();
        let records = scoped_records(2_000);
        for r in &records {
            write_record(&mut buf, r).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.pump(&mut sink).unwrap(), StreamEnd::Clean);
        assert_eq!(sink.len(), records.len());
        assert_eq!(si.received() as usize, records.len());
    }
}
