//! Network stream operators: `streamout` and `streamin`.
//!
//! "Segments can receive and emit records using the `streamin` and
//! `streamout` operators, respectively, enabling instantiation of
//! segments and the construction of a pipeline across networked hosts"
//! (paper §2). Records travel as CRC-protected frames ([`crate::codec`]);
//! a clean shutdown ends with an end-of-stream sentinel, and "if an
//! upstream segment terminates unexpectedly and leaves one or more
//! scopes open, the `streamin` operator will generate `BadCloseScope`
//! records to close all open scopes."

use crate::codec::{read_record, write_eos, write_record, ReadOutcome};
use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::Record;
use crate::scope::ScopeTracker;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// `streamout`: an operator that forwards every record over a byte sink
/// (typically a TCP connection) and emits the clean end-of-stream
/// sentinel when the pipeline finishes.
pub struct StreamOut<W: Write + Send> {
    writer: BufWriter<W>,
    sent: u64,
}

impl<W: Write + Send> StreamOut<W> {
    /// Wraps a byte sink.
    pub fn new(writer: W) -> Self {
        StreamOut {
            writer: BufWriter::new(writer),
            sent: 0,
        }
    }

    /// Records sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl StreamOut<TcpStream> {
    /// Connects to a downstream `streamin` operator.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, PipelineError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::new(stream))
    }
}

impl<W: Write + Send> Operator for StreamOut<W> {
    fn name(&self) -> &str {
        "streamout"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_record(&mut self.writer, &record)?;
        self.sent += 1;
        // streamout is usually terminal, but passing records through lets
        // callers tee the stream locally as well.
        out.push(record)
    }

    fn on_eos(&mut self, _out: &mut dyn Sink) -> Result<(), PipelineError> {
        write_eos(&mut self.writer)?;
        Ok(())
    }
}

/// How a [`StreamIn`] session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEnd {
    /// The upstream emitted the end-of-stream sentinel with all scopes
    /// closed.
    Clean,
    /// The upstream vanished (connection drop / truncation) or said
    /// goodbye mid-scope; open scopes were closed with `BadCloseScope`
    /// records.
    Unclean {
        /// Number of `BadCloseScope` records synthesized.
        repaired_scopes: u32,
    },
}

/// `streamin`: decodes records from a byte source, tracking scope state
/// and repairing it when the upstream dies.
pub struct StreamIn<R: Read> {
    reader: BufReader<R>,
    tracker: ScopeTracker,
    received: u64,
}

impl<R: Read> StreamIn<R> {
    /// Wraps a byte source.
    pub fn new(reader: R) -> Self {
        StreamIn {
            reader: BufReader::new(reader),
            tracker: ScopeTracker::new(),
            received: 0,
        }
    }

    /// Records received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Pumps every record into `sink` until the stream ends, returning
    /// how it ended. On an unclean end, synthesized `BadCloseScope`
    /// records are pushed into the sink before returning, so downstream
    /// scope state resynchronizes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Codec`] on frame corruption and
    /// [`PipelineError::Io`] on I/O failure; disconnects mid-frame are
    /// treated as unclean ends rather than errors.
    pub fn pump(&mut self, sink: &mut dyn Sink) -> Result<StreamEnd, PipelineError> {
        loop {
            match read_record(&mut self.reader) {
                Ok(ReadOutcome::Record(record)) => {
                    // Scope accounting; violations at the network boundary
                    // are repaired (stray closes dropped), not fatal.
                    match self.tracker.observe(&record) {
                        Ok(_) => {
                            self.received += 1;
                            sink.push(record)?;
                        }
                        Err(PipelineError::ScopeViolation(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Ok(ReadOutcome::CleanEnd) => {
                    // A clean end with open scopes still repairs them: the
                    // upstream said goodbye mid-scope.
                    let repairs = self.tracker.close_all_bad();
                    let n = repairs.len() as u32;
                    for r in repairs {
                        sink.push(r)?;
                    }
                    return Ok(if n == 0 {
                        StreamEnd::Clean
                    } else {
                        StreamEnd::Unclean { repaired_scopes: n }
                    });
                }
                Ok(ReadOutcome::UncleanEnd) | Err(PipelineError::Disconnected(_)) => {
                    let repairs = self.tracker.close_all_bad();
                    let n = repairs.len() as u32;
                    for r in repairs {
                        sink.push(r)?;
                    }
                    return Ok(StreamEnd::Unclean { repaired_scopes: n });
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serves exactly one upstream connection: accepts on `listener`,
/// pumps all records into `sink`, and reports how the session ended
/// together with the number of records received
/// ([`StreamIn::received`]).
///
/// # Errors
///
/// Propagates accept/read failures.
pub fn serve_once(
    listener: &TcpListener,
    sink: &mut dyn Sink,
) -> Result<(StreamEnd, u64), PipelineError> {
    let (stream, _peer) = listener.accept()?;
    stream.set_nodelay(true)?;
    let mut streamin = StreamIn::new(stream);
    let end = streamin.pump(sink)?;
    Ok((end, streamin.received()))
}

/// Sends a record batch (plus the sentinel) to `addr` over one framed
/// [`StreamOut`] connection, returning the number of records sent —
/// the convenience used by sources and tests.
///
/// # Errors
///
/// Returns [`PipelineError::Io`] on connection or write failure.
pub fn send_all<A: ToSocketAddrs>(addr: A, records: &[Record]) -> Result<u64, PipelineError> {
    let mut out = StreamOut::connect(addr)?;
    let mut sink = crate::operator::NullSink;
    for r in records {
        out.on_record(r.clone(), &mut sink)?;
    }
    out.on_eos(&mut sink)?;
    Ok(out.sent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Payload, RecordKind};
    use std::net::TcpListener;
    use std::thread;

    fn scoped_records(n: usize) -> Vec<Record> {
        let mut v = vec![Record::open_scope(1, vec![("rate".into(), "20160".into())])];
        for i in 0..n {
            v.push(Record::data(1, Payload::f64(vec![i as f64])).with_seq(i as u64));
        }
        v.push(Record::close_scope(1));
        v
    }

    #[test]
    fn tcp_round_trip_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let records = scoped_records(50);
        let send = records.clone();
        let sender = thread::spawn(move || send_all(addr, &send).unwrap());
        let mut sink: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&listener, &mut sink).unwrap();
        let sent = sender.join().unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink, records);
        assert_eq!(sent as usize, records.len());
        assert_eq!(received as usize, records.len());
    }

    #[test]
    fn unclean_disconnect_synthesizes_bad_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = BufWriter::new(stream);
            write_record(&mut writer, &Record::open_scope(3, vec![])).unwrap();
            write_record(&mut writer, &Record::open_scope(4, vec![])).unwrap();
            write_record(&mut writer, &Record::data(1, Payload::f64(vec![1.0]))).unwrap();
            writer.flush().unwrap();
            // Drop without sentinel: simulated crash.
        });
        let mut sink: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&listener, &mut sink).unwrap();
        sender.join().unwrap();
        assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 2 });
        assert_eq!(received, 3); // synthesized repairs are not "received"
        assert_eq!(sink.len(), 5);
        assert_eq!(sink[3].kind, RecordKind::BadCloseScope);
        assert_eq!(sink[3].scope_type, 4); // innermost first
        assert_eq!(sink[4].scope_type, 3);
        crate::scope::validate_scopes(&sink).unwrap();
    }

    #[test]
    fn clean_end_with_open_scope_still_repairs() {
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::open_scope(9, vec![])).unwrap();
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        let end = si.pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 1 });
        crate::scope::validate_scopes(&sink).unwrap();
    }

    #[test]
    fn stray_close_dropped_at_boundary() {
        let mut buf = Vec::new();
        write_record(&mut buf, &Record::close_scope(2)).unwrap();
        write_record(&mut buf, &Record::data(0, Payload::Empty)).unwrap();
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        let end = si.pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink.len(), 1);
        assert_eq!(si.received(), 1);
    }

    #[test]
    fn streamout_operator_counts_and_tees() {
        let mut buf = Vec::new();
        {
            let mut op = StreamOut::new(&mut buf);
            let mut tee: Vec<Record> = Vec::new();
            for r in scoped_records(3) {
                op.on_record(r, &mut tee).unwrap();
            }
            op.on_eos(&mut tee).unwrap();
            assert_eq!(op.sent(), 5);
            assert_eq!(tee.len(), 5);
        }
        // The bytes decode back to the same stream.
        let mut sink: Vec<Record> = Vec::new();
        let end = StreamIn::new(buf.as_slice()).pump(&mut sink).unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(sink, scoped_records(3));
    }

    #[test]
    fn pump_large_stream() {
        let mut buf = Vec::new();
        let records = scoped_records(2_000);
        for r in &records {
            write_record(&mut buf, r).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(buf.as_slice());
        assert_eq!(si.pump(&mut sink).unwrap(), StreamEnd::Clean);
        assert_eq!(sink.len(), records.len());
        assert_eq!(si.received() as usize, records.len());
    }
}
