//! The operator abstraction.
//!
//! A Dynamic River pipeline is "a sequential set of operations composed
//! between a data source and its final sink" (paper §2). Each operation
//! implements [`Operator`]: it consumes records one at a time and emits
//! zero or more records into a [`Sink`]. Operators are `Send` so the
//! threaded runner can move each one onto its own thread.

use crate::error::PipelineError;
use crate::record::Record;

/// Destination for operator output.
pub trait Sink {
    /// Accepts one record.
    ///
    /// # Errors
    ///
    /// Implementations report downstream failure (e.g. a closed channel
    /// or broken connection).
    fn push(&mut self, record: Record) -> Result<(), PipelineError>;
}

impl Sink for Vec<Record> {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        Vec::push(self, record);
        Ok(())
    }
}

/// A sink that drops everything (useful as a pipeline terminator in
/// benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn push(&mut self, _record: Record) -> Result<(), PipelineError> {
        Ok(())
    }
}

/// A sink that counts records and payload bytes but stores nothing —
/// the natural terminator for unbounded streaming runs where the
/// output only needs accounting, not retention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Records received.
    pub records: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

impl Sink for CountingSink {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        self.records += 1;
        self.bytes += record.byte_len() as u64;
        Ok(())
    }
}

/// A sink that appends into a mutex-guarded vector shared across
/// threads — the natural collector for per-session output in the
/// multi-session service layer ([`crate::serve`]), where each session's
/// sink must be `Send` and the caller wants the records afterwards.
///
/// # Example
///
/// ```
/// use dynamic_river::operator::{SharedSink, Sink};
/// use dynamic_river::record::{Payload, Record};
///
/// let sink = SharedSink::new();
/// let mut handle = sink.clone();
/// handle.push(Record::data(0, Payload::Empty)).unwrap();
/// assert_eq!(sink.take().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedSink {
    records: std::sync::Arc<std::sync::Mutex<Vec<Record>>>,
}

impl SharedSink {
    /// Creates an empty shared collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything collected so far.
    ///
    /// # Panics
    ///
    /// Panics if a pushing thread panicked while holding the lock.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut self.records.lock().expect("sink lock poisoned"))
    }

    /// Number of records collected so far.
    ///
    /// # Panics
    ///
    /// Panics if a pushing thread panicked while holding the lock.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink lock poisoned").len()
    }

    /// `true` when nothing has been collected.
    ///
    /// # Panics
    ///
    /// Panics if a pushing thread panicked while holding the lock.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for SharedSink {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        self.records
            .lock()
            .map_err(|_| PipelineError::Disconnected("shared sink lock poisoned".into()))?
            .push(record);
        Ok(())
    }
}

/// A sink adapter that invokes a closure per record.
pub struct FnSink<F>(pub F);

impl<F> Sink for FnSink<F>
where
    F: FnMut(Record) -> Result<(), PipelineError>,
{
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        (self.0)(record)
    }
}

/// A record-stream processing operator.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
///
/// /// Emits every record twice.
/// struct Duplicate;
///
/// impl Operator for Duplicate {
///     fn name(&self) -> &str {
///         "duplicate"
///     }
///     fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
///         out.push(record.clone())?;
///         out.push(record)
///     }
/// }
///
/// let mut p = Pipeline::new();
/// p.add(Duplicate);
/// let out = p.run(vec![Record::data(0, Payload::Empty)]).unwrap();
/// assert_eq!(out.len(), 2);
/// ```
pub trait Operator: Send {
    /// Human-readable operator name (used in error reports and the
    /// Figure 5 pipeline printout).
    fn name(&self) -> &str;

    /// Processes one record, emitting any number of output records.
    ///
    /// # Errors
    ///
    /// Operator-specific failures abort the pipeline run.
    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError>;

    /// Called once after the final record; operators flush buffered
    /// state here (e.g. `cutter` closing a dangling ensemble).
    ///
    /// # Errors
    ///
    /// Same contract as [`on_record`](Self::on_record).
    fn on_eos(&mut self, _out: &mut dyn Sink) -> Result<(), PipelineError> {
        Ok(())
    }

    /// Returns a boxed duplicate of this operator carrying its current
    /// state — the hook the sharded runtime uses to instantiate one
    /// chain per worker
    /// ([`Pipeline::clone_chain`](crate::pipeline::Pipeline::clone_chain)).
    ///
    /// Returns `None` (the default) for operators that cannot be
    /// duplicated — anything bound to an exclusive resource such as a
    /// socket or file handle. Chains containing such operators cannot
    /// be sharded.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        None
    }

    /// The operator's declared [`Signature`](crate::analyze::Signature)
    /// — its abstract transfer function over record classes, scope
    /// effect and flush behavior — used by the static chain analyzer
    /// ([`Pipeline::check`](crate::pipeline::Pipeline::check)).
    ///
    /// Returns `None` (the default) for operators without a
    /// declaration; the analyzer reports an `UnknownSignature`
    /// **warning** (never an error) and treats the operator's output as
    /// unknown from that stage on.
    fn signature(&self) -> Option<crate::analyze::Signature> {
        None
    }

    /// Hands the operator a telemetry
    /// [`EventSink`](crate::telemetry::EventSink) to report domain
    /// events through (trigger fires, cutter runs, …).
    ///
    /// Runners call this once before records flow, and only when event
    /// tracing is enabled
    /// ([`TelemetryConfig::Full`](crate::telemetry::TelemetryConfig));
    /// the default implementation ignores the sink. Operators that emit
    /// events store a clone of it.
    fn attach_events(&mut self, _events: &crate::telemetry::EventSink) {}
}

impl Operator for Box<dyn Operator> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        self.as_mut().on_record(record, out)
    }

    fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        self.as_mut().on_eos(out)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        self.as_ref().clone_op()
    }

    fn signature(&self) -> Option<crate::analyze::Signature> {
        self.as_ref().signature()
    }

    fn attach_events(&mut self, events: &crate::telemetry::EventSink) {
        self.as_mut().attach_events(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;

    struct Echo;
    impl Operator for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
            out.push(record)
        }
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink: Vec<Record> = Vec::new();
        let mut op = Echo;
        op.on_record(Record::data(1, Payload::Empty), &mut sink)
            .unwrap();
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn null_sink_discards() {
        let mut op = Echo;
        let mut sink = NullSink;
        op.on_record(Record::data(1, Payload::Empty), &mut sink)
            .unwrap();
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut count = 0usize;
        {
            let mut sink = FnSink(|_r| {
                count += 1;
                Ok(())
            });
            let mut op = Echo;
            op.on_record(Record::data(1, Payload::Empty), &mut sink)
                .unwrap();
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn boxed_operator_delegates() {
        let mut boxed: Box<dyn Operator> = Box::new(Echo);
        assert_eq!(boxed.name(), "echo");
        let mut sink: Vec<Record> = Vec::new();
        boxed
            .on_record(Record::data(1, Payload::Empty), &mut sink)
            .unwrap();
        boxed.on_eos(&mut sink).unwrap();
        assert_eq!(sink.len(), 1);
    }
}
