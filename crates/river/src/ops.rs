//! General-purpose operators: map, filter, inspect, count, scope repair.
//!
//! The acoustic operators of the paper (`saxanomaly`, `trigger`,
//! `cutter`, `dft`, …) live in the `ensemble-core` crate; these are the
//! domain-independent building blocks.

use crate::analyze::{PayloadKind, RecordClass, ScopeEffect, Signature};
use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::{Payload, Record, RecordKind};
use crate::scope::ScopeTracker;

/// Passes every record through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct Passthrough;

impl Operator for Passthrough {
    fn name(&self) -> &'static str {
        "passthrough"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(*self))
    }

    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough())
    }
}

/// Applies an in-place function to the `F64` payload of data records
/// (other records pass through untouched).
///
/// The closure receives the samples as `&mut [f64]` through the
/// payload's copy-on-write view ([`SampleBuf::make_mut`]): when the
/// record is the sole owner of its buffer the mutation is in place,
/// and when the buffer is shared with other records the view is copied
/// first so no sibling observes the change.
///
/// [`SampleBuf::make_mut`]: crate::buf::SampleBuf::make_mut
#[derive(Clone)]
pub struct MapPayload<F> {
    name: String,
    f: F,
}

impl<F> MapPayload<F>
where
    F: FnMut(&mut [f64]) + Send,
{
    /// Creates a payload mapper with a display name.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        MapPayload {
            name: name.into(),
            f,
        }
    }
}

impl<F> Operator for MapPayload<F>
where
    F: FnMut(&mut [f64]) + Send + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.kind == RecordKind::Data {
            if let Payload::F64(v) = &mut record.payload {
                (self.f)(v.make_mut());
            }
        }
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Class-level identity: payload values change, subtypes and
    /// payload kinds do not.
    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough())
    }
}

/// Keeps only records satisfying a predicate. Scope records always pass
/// (dropping them would corrupt scope discipline).
#[derive(Clone)]
pub struct RecordFilter<F> {
    name: String,
    predicate: F,
}

impl<F> RecordFilter<F>
where
    F: FnMut(&Record) -> bool + Send,
{
    /// Creates a filter with a display name.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        RecordFilter {
            name: name.into(),
            predicate,
        }
    }
}

impl<F> Operator for RecordFilter<F>
where
    F: FnMut(&Record) -> bool + Send + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if record.is_scope_marker() || (self.predicate)(&record) {
            out.push(record)?;
        }
        Ok(())
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// The filter's output is a subset of its input; the passthrough
    /// signature over-approximates it (sound for the analyzer).
    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough())
    }
}

/// Invokes a closure on every record (for logging/metrics) and passes
/// it through.
#[derive(Clone)]
pub struct Inspect<F> {
    name: String,
    f: F,
}

impl<F> Inspect<F>
where
    F: FnMut(&Record) + Send,
{
    /// Creates an inspector with a display name.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Inspect {
            name: name.into(),
            f,
        }
    }
}

impl<F> Operator for Inspect<F>
where
    F: FnMut(&Record) + Send + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        (self.f)(&record);
        out.push(record)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough())
    }
}

/// A fully general closure operator.
#[derive(Clone)]
pub struct FnOp<F> {
    name: String,
    f: F,
}

impl<F> FnOp<F>
where
    F: FnMut(Record, &mut dyn Sink) -> Result<(), PipelineError> + Send,
{
    /// Creates an operator from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnOp {
            name: name.into(),
            f,
        }
    }
}

impl<F> Operator for FnOp<F>
where
    F: FnMut(Record, &mut dyn Sink) -> Result<(), PipelineError> + Send + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        (self.f)(record, out)
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }
}

/// Counts records and payload bytes by kind; read the totals through the
/// shared handle. Used by the data-reduction experiment and Figure 5's
/// per-stage statistics.
#[derive(Debug, Default)]
pub struct RecordCounter {
    stats: std::sync::Arc<std::sync::Mutex<CounterStats>>,
}

/// Totals accumulated by a [`RecordCounter`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterStats {
    /// Data records seen.
    pub data_records: u64,
    /// Scope open records seen.
    pub opens: u64,
    /// Clean scope closes seen.
    pub closes: u64,
    /// Bad scope closes seen.
    pub bad_closes: u64,
    /// Total payload bytes across data records.
    pub payload_bytes: u64,
}

impl CounterStats {
    /// Total records of any kind.
    pub fn total_records(&self) -> u64 {
        self.data_records + self.opens + self.closes + self.bad_closes
    }
}

/// Shared handle for reading a [`RecordCounter`]'s totals after the
/// pipeline has run.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle {
    stats: std::sync::Arc<std::sync::Mutex<CounterStats>>,
}

impl CounterHandle {
    /// Snapshot of the totals.
    pub fn snapshot(&self) -> CounterStats {
        *self.stats.lock().expect("counter lock poisoned")
    }
}

impl RecordCounter {
    /// Creates a counter and its read handle.
    pub fn new() -> (Self, CounterHandle) {
        let stats = std::sync::Arc::new(std::sync::Mutex::new(CounterStats::default()));
        (
            RecordCounter {
                stats: stats.clone(),
            },
            CounterHandle { stats },
        )
    }
}

impl Operator for RecordCounter {
    fn name(&self) -> &'static str {
        "counter"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        {
            let mut s = self.stats.lock().expect("counter lock poisoned");
            match record.kind {
                RecordKind::Data => {
                    s.data_records += 1;
                    s.payload_bytes += record.byte_len() as u64;
                }
                RecordKind::OpenScope => s.opens += 1,
                RecordKind::CloseScope => s.closes += 1,
                RecordKind::BadCloseScope => s.bad_closes += 1,
            }
        }
        out.push(record)
    }

    /// Sharded clones all feed the same shared totals, so the handle
    /// reports whole-run counts whatever the worker count.
    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(RecordCounter {
            stats: self.stats.clone(),
        }))
    }

    fn signature(&self) -> Option<Signature> {
        Some(Signature::passthrough())
    }
}

/// Per-scope aggregate summarizer: sums the `F64` payload values of
/// data records inside each **top-level** scope subtree and emits one
/// summary record (of the configured subtype, payload `[sum]`) just
/// before the subtree's closing record, then resets.
///
/// The operator is *scope-local* by construction — state resets at
/// every top-level scope boundary, records outside any scope and stray
/// closes are passed through untouched, and nothing is emitted at
/// end-of-stream — so it shards deterministically under
/// [`Pipeline::run_sharded`](crate::pipeline::Pipeline::run_sharded)
/// (it doubles as the reference scope-local stateful operator in the
/// sharded-equivalence property tests).
#[derive(Debug, Clone)]
pub struct ScopeSum {
    subtype: u16,
    depth: u32,
    sum: f64,
}

impl ScopeSum {
    /// Creates a summarizer emitting summary records of `subtype`.
    pub fn new(subtype: u16) -> Self {
        ScopeSum {
            subtype,
            depth: 0,
            sum: 0.0,
        }
    }
}

impl Operator for ScopeSum {
    fn name(&self) -> &'static str {
        "scope-sum"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match record.kind {
            RecordKind::OpenScope => {
                if self.depth == 0 {
                    self.sum = 0.0;
                }
                self.depth += 1;
                out.push(record)
            }
            k if k.closes_scope() => {
                // Only a close that really closes an open scope counts:
                // reacting to a stray close (or to data outside any
                // scope) would make the summary depend on records
                // beyond this top-level subtree — no longer scope-local.
                if self.depth > 0 {
                    self.depth -= 1;
                    if self.depth == 0 {
                        out.push(Record::data(self.subtype, Payload::f64(vec![self.sum])))?;
                    }
                }
                out.push(record)
            }
            _ => {
                if self.depth > 0 {
                    if let Some(v) = record.payload.as_f64() {
                        self.sum += v.iter().sum::<f64>();
                    }
                }
                out.push(record)
            }
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    /// Emission is scope-boundary-driven, not data-driven: an empty
    /// `consumes` set marks the summary class as always reachable, and
    /// every input record passes through unchanged.
    fn signature(&self) -> Option<Signature> {
        Some(Signature {
            consumes: Vec::new(),
            passes_matched: true,
            produces: vec![RecordClass::of(self.subtype, PayloadKind::F64)],
            unmatched: crate::analyze::UnmatchedPolicy::Keep,
            strict_payload: false,
            scope: ScopeEffect::Preserves,
            flushes_at_eos: false,
        })
    }
}

/// Repairs scope discipline: any scopes still open at end-of-stream are
/// closed with `BadCloseScope` records, and stray closes are dropped
/// (with their count available for inspection). Place after an
/// untrusted source.
#[derive(Debug, Clone, Default)]
pub struct ScopeRepair {
    tracker: ScopeTracker,
    dropped_closes: u64,
}

impl ScopeRepair {
    /// Creates a repair operator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unmatched close records dropped so far.
    pub fn dropped_closes(&self) -> u64 {
        self.dropped_closes
    }
}

impl Operator for ScopeRepair {
    fn name(&self) -> &'static str {
        "scope-repair"
    }

    fn on_record(&mut self, record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        match self.tracker.observe(&record) {
            Ok(_) => out.push(record),
            Err(PipelineError::ScopeViolation(_)) => {
                // Unmatched or mismatched close: drop rather than corrupt
                // downstream state.
                self.dropped_closes += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
        for repair in self.tracker.close_all_bad() {
            out.push(repair)?;
        }
        Ok(())
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(self.clone()))
    }

    fn signature(&self) -> Option<Signature> {
        Some(
            Signature::passthrough()
                .with_scope(ScopeEffect::Repairs)
                .with_eos_flush(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn scoped_stream() -> Vec<Record> {
        vec![
            Record::open_scope(1, vec![]),
            Record::data(1, Payload::f64(vec![1.0, 2.0])),
            Record::data(2, Payload::f64(vec![3.0])),
            Record::close_scope(1),
        ]
    }

    #[test]
    fn passthrough_identity() {
        let mut p = Pipeline::new();
        p.add(Passthrough);
        let input = scoped_stream();
        let out = p.run(input.clone()).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn map_payload_transforms_data_only() {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("negate", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x = -*x);
        }));
        let out = p.run(scoped_stream()).unwrap();
        assert_eq!(out[1].payload.as_f64().unwrap(), &[-1.0, -2.0]);
        assert_eq!(out[0].kind, RecordKind::OpenScope); // untouched
    }

    #[test]
    fn map_payload_copies_on_write_only_when_shared() {
        use crate::buf::SampleBuf;
        let shared = SampleBuf::from(vec![1.0, 2.0, 3.0]);
        let keep = shared.clone();
        let mut p = Pipeline::new();
        p.add(MapPayload::new("negate", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x = -*x);
        }));
        let out = p
            .run(vec![
                Record::data(0, Payload::F64(shared)),
                Record::data(1, Payload::f64(vec![5.0])),
            ])
            .unwrap();
        // The shared buffer was copied before mutation …
        assert_eq!(&keep[..], &[1.0, 2.0, 3.0]);
        assert_eq!(out[0].payload.as_f64().unwrap(), &[-1.0, -2.0, -3.0]);
        assert!(!SampleBuf::shares_backing(
            &keep,
            out[0].payload.as_f64_buf().unwrap()
        ));
        // … while the uniquely owned one was mutated in place.
        assert_eq!(out[1].payload.as_f64().unwrap(), &[-5.0]);
    }

    #[test]
    fn filter_preserves_scope_markers() {
        let mut p = Pipeline::new();
        p.add(RecordFilter::new("only-subtype-1", |r: &Record| {
            r.subtype == 1
        }));
        let out = p.run(scoped_stream()).unwrap();
        // Scope markers + one matching data record.
        assert_eq!(out.len(), 3);
        assert!(out.iter().any(|r| r.kind == RecordKind::OpenScope));
        assert!(out.iter().any(|r| r.kind == RecordKind::CloseScope));
        assert!(out
            .iter()
            .all(|r| r.kind != RecordKind::Data || r.subtype == 1));
    }

    #[test]
    fn counter_tallies_kinds_and_bytes() {
        let (counter, handle) = RecordCounter::new();
        let mut p = Pipeline::new();
        p.add(counter);
        p.run(scoped_stream()).unwrap();
        let s = handle.snapshot();
        assert_eq!(s.data_records, 2);
        assert_eq!(s.opens, 1);
        assert_eq!(s.closes, 1);
        assert_eq!(s.payload_bytes, 24);
        assert_eq!(s.total_records(), 4);
    }

    #[test]
    fn inspect_sees_every_record() {
        let seen = std::sync::Arc::new(std::sync::Mutex::new(0usize));
        let seen2 = seen.clone();
        let mut p = Pipeline::new();
        p.add(Inspect::new("count", move |_r| {
            *seen2.lock().expect("lock poisoned") += 1;
        }));
        p.run(scoped_stream()).unwrap();
        assert_eq!(*seen.lock().expect("lock poisoned"), 4);
    }

    #[test]
    fn scope_sum_summarizes_top_level_scopes_only() {
        let mut p = Pipeline::new();
        p.add(ScopeSum::new(999));
        let input = vec![
            Record::data(0, Payload::f64(vec![100.0])), // outside: ignored
            Record::close_scope(5),                     // stray: ignored
            Record::open_scope(1, vec![]),
            Record::data(0, Payload::f64(vec![1.0, 2.0])),
            Record::open_scope(2, vec![]), // nested: still the same sum
            Record::data(0, Payload::f64(vec![3.0])),
            Record::close_scope(2),
            Record::close_scope(1),
        ];
        let out = p.run(input).unwrap();
        let summaries: Vec<&Record> = out.iter().filter(|r| r.subtype == 999).collect();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].payload.as_f64().unwrap(), &[6.0]);
        // Emitted just before the top-level close.
        assert_eq!(out[out.len() - 2].subtype, 999);
        assert_eq!(out.last().unwrap().kind, RecordKind::CloseScope);
    }

    #[test]
    fn scope_repair_closes_dangling_scopes() {
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        // Stream dies with two scopes open.
        let input = vec![
            Record::open_scope(1, vec![]),
            Record::open_scope(2, vec![]),
            Record::data(0, Payload::Empty),
        ];
        let out = p.run(input).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[3].kind, RecordKind::BadCloseScope);
        assert_eq!(out[3].scope_type, 2); // innermost first
        assert_eq!(out[4].scope_type, 1);
        crate::scope::validate_scopes(&out).unwrap();
    }

    #[test]
    fn scope_repair_drops_stray_closes() {
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        let input = vec![
            Record::close_scope(5), // stray
            Record::open_scope(1, vec![]),
            Record::close_scope(1),
        ];
        let out = p.run(input).unwrap();
        assert_eq!(out.len(), 2);
        crate::scope::validate_scopes(&out).unwrap();
    }

    #[test]
    fn fn_op_emits_multiple() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("triple", |r: Record, out: &mut dyn Sink| {
            out.push(r.clone())?;
            out.push(r.clone())?;
            out.push(r)
        }));
        let out = p.run(vec![Record::data(0, Payload::Empty)]).unwrap();
        assert_eq!(out.len(), 3);
    }
}
