//! Pipeline composition and execution.
//!
//! Two runners are provided:
//!
//! - [`Pipeline::run`] — synchronous, single-threaded, stage-by-stage;
//!   deterministic and allocation-friendly, used by tests and the
//!   experiment harnesses.
//! - [`Pipeline::run_threaded`] — one OS thread per operator connected
//!   by bounded crossbeam channels, the execution model of the Dynamic
//!   River prototype ("the network operators enable record processing to
//!   be distributed across the processor and memory resources of many
//!   hosts" — within one host, across cores).

use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::Record;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread;

/// Default bounded-channel capacity between threaded stages.
const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// An ordered chain of operators.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
///
/// let mut p = Pipeline::new();
/// p.add(MapPayload::new("gain", |mut v: Vec<f64>| {
///     v.iter_mut().for_each(|x| *x *= 10.0);
///     v
/// }));
/// p.add(RecordFilter::new("nonempty", |r: &Record| r.byte_len() > 0));
/// assert_eq!(p.len(), 2);
/// let out = p.run(vec![Record::data(0, Payload::F64(vec![1.0]))]).unwrap();
/// assert_eq!(out[0].payload.as_f64().unwrap(), &[10.0]);
/// ```
#[derive(Default)]
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("operators", &self.names())
            .finish()
    }
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operator (builder style, non-consuming).
    pub fn add(&mut self, op: impl Operator + 'static) -> &mut Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Appends a boxed operator.
    pub fn add_boxed(&mut self, op: Box<dyn Operator>) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the pipeline has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator names in order — the Figure 5 block diagram as text.
    pub fn names(&self) -> Vec<&str> {
        self.ops.iter().map(|o| o.name()).collect()
    }

    /// Runs the pipeline synchronously over `input`, collecting the
    /// final stage's output.
    ///
    /// # Errors
    ///
    /// Returns the first operator error.
    pub fn run<I>(&mut self, input: I) -> Result<Vec<Record>, PipelineError>
    where
        I: IntoIterator<Item = Record>,
    {
        let mut records: Vec<Record> = input.into_iter().collect();
        for op in &mut self.ops {
            let mut next = Vec::with_capacity(records.len());
            for r in records {
                op.on_record(r, &mut next)?;
            }
            op.on_eos(&mut next)?;
            records = next;
        }
        Ok(records)
    }

    /// Runs the pipeline synchronously, discarding output but returning
    /// the record count that reached the sink.
    ///
    /// # Errors
    ///
    /// Returns the first operator error.
    pub fn run_count<I>(&mut self, input: I) -> Result<usize, PipelineError>
    where
        I: IntoIterator<Item = Record>,
    {
        Ok(self.run(input)?.len())
    }

    /// Runs the pipeline with one thread per operator, consuming the
    /// pipeline. Returns the final output records.
    ///
    /// Bounded channels apply backpressure between stages. If any stage
    /// fails, the failure propagates and the first error is returned.
    ///
    /// # Errors
    ///
    /// Returns the first operator error raised on any stage thread.
    pub fn run_threaded<I>(self, input: I) -> Result<Vec<Record>, PipelineError>
    where
        I: IntoIterator<Item = Record> + Send + 'static,
        I::IntoIter: Send,
    {
        let (handles, feed_tx, out_rx) = self.spawn_threaded(DEFAULT_CHANNEL_CAPACITY);

        // Feed input from this thread (bounded channel applies
        // backpressure).
        let feeder = thread::spawn(move || {
            for r in input {
                if feed_tx.send(r).is_err() {
                    // Downstream failed; stop feeding.
                    break;
                }
            }
            // Dropping feed_tx signals EOS.
        });

        let mut out = Vec::new();
        for r in out_rx {
            out.push(r);
        }
        feeder.join().expect("feeder thread panicked");

        let mut first_error = None;
        for h in handles {
            if let Err(e) = h.join().expect("stage thread panicked") {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Spawns the stage threads and returns `(handles, input sender,
    /// output receiver)`. Dropping the sender signals end-of-stream;
    /// stages flush (`on_eos`) and shut down in order.
    #[allow(clippy::type_complexity)]
    pub fn spawn_threaded(
        self,
        capacity: usize,
    ) -> (
        Vec<thread::JoinHandle<Result<(), PipelineError>>>,
        Sender<Record>,
        Receiver<Record>,
    ) {
        struct ChannelSink {
            tx: Sender<Record>,
        }
        impl Sink for ChannelSink {
            fn push(&mut self, record: Record) -> Result<(), PipelineError> {
                self.tx
                    .send(record)
                    .map_err(|_| PipelineError::Disconnected("downstream stage gone".into()))
            }
        }

        let (feed_tx, mut prev_rx) = bounded::<Record>(capacity);
        let mut handles = Vec::with_capacity(self.ops.len());
        for mut op in self.ops {
            let (tx, rx) = bounded::<Record>(capacity);
            let stage_rx = prev_rx;
            prev_rx = rx;
            handles.push(thread::spawn(move || -> Result<(), PipelineError> {
                let mut sink = ChannelSink { tx };
                for record in stage_rx {
                    op.on_record(record, &mut sink)?;
                }
                op.on_eos(&mut sink)?;
                Ok(())
            }));
        }
        (handles, feed_tx, prev_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FnOp, MapPayload, Passthrough, RecordFilter};
    use crate::record::{Payload, RecordKind};

    fn numbered(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::data(0, Payload::F64(vec![i as f64])).with_seq(i as u64))
            .collect()
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        let input = numbered(5);
        assert_eq!(p.run(input.clone()).unwrap(), input);
        assert!(p.is_empty());
    }

    #[test]
    fn stages_compose_in_order() {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("plus1", |mut v: Vec<f64>| {
            v.iter_mut().for_each(|x| *x += 1.0);
            v
        }));
        p.add(MapPayload::new("times2", |mut v: Vec<f64>| {
            v.iter_mut().for_each(|x| *x *= 2.0);
            v
        }));
        let out = p.run(numbered(3)).unwrap();
        // (x + 1) * 2
        assert_eq!(out[2].payload.as_f64().unwrap(), &[6.0]);
        assert_eq!(p.names(), vec!["plus1", "times2"]);
    }

    #[test]
    fn run_count_matches_run() {
        let mut p = Pipeline::new();
        p.add(RecordFilter::new("evens", |r: &Record| r.seq % 2 == 0));
        assert_eq!(p.run_count(numbered(10)).unwrap(), 5);
    }

    #[test]
    fn on_eos_flushes_in_stage_order() {
        struct Buffering {
            held: Vec<Record>,
        }
        impl Operator for Buffering {
            fn name(&self) -> &str {
                "buffering"
            }
            fn on_record(
                &mut self,
                record: Record,
                _out: &mut dyn Sink,
            ) -> Result<(), PipelineError> {
                self.held.push(record);
                Ok(())
            }
            fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
                for r in self.held.drain(..) {
                    out.push(r)?;
                }
                Ok(())
            }
        }
        let mut p = Pipeline::new();
        p.add(Buffering { held: Vec::new() });
        p.add(Passthrough);
        let out = p.run(numbered(4)).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn operator_error_aborts_run() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("explode", |r: Record, out: &mut dyn Sink| {
            if r.seq == 2 {
                Err(PipelineError::operator("explode", "boom"))
            } else {
                out.push(r)
            }
        }));
        let err = p.run(numbered(5)).unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn threaded_matches_sync() {
        let build = || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("plus1", |mut v: Vec<f64>| {
                v.iter_mut().for_each(|x| *x += 1.0);
                v
            }));
            p.add(RecordFilter::new("evens", |r: &Record| r.seq % 2 == 0));
            p.add(MapPayload::new("times3", |mut v: Vec<f64>| {
                v.iter_mut().for_each(|x| *x *= 3.0);
                v
            }));
            p
        };
        let sync_out = build().run(numbered(100)).unwrap();
        let threaded_out = build().run_threaded(numbered(100)).unwrap();
        assert_eq!(sync_out, threaded_out);
        assert_eq!(sync_out.len(), 50);
    }

    #[test]
    fn threaded_propagates_errors() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("explode", |r: Record, out: &mut dyn Sink| {
            if r.seq == 50 {
                Err(PipelineError::operator("explode", "boom"))
            } else {
                out.push(r)
            }
        }));
        let err = p.run_threaded(numbered(1000)).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Operator { .. } | PipelineError::Disconnected(_)
        ));
    }

    #[test]
    fn threaded_preserves_order() {
        let mut p = Pipeline::new();
        for i in 0..4 {
            p.add(MapPayload::new(format!("stage{i}"), |v| v));
        }
        let out = p.run_threaded(numbered(500)).unwrap();
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn threaded_scope_stream_survives() {
        let mut input = vec![Record::open_scope(1, vec![])];
        input.extend(numbered(20));
        input.push(Record::close_scope(1));
        let mut p = Pipeline::new();
        p.add(Passthrough);
        p.add(Passthrough);
        let out = p.run_threaded(input).unwrap();
        assert_eq!(out.len(), 22);
        assert_eq!(out[0].kind, RecordKind::OpenScope);
        assert_eq!(out[21].kind, RecordKind::CloseScope);
        crate::scope::validate_scopes(&out).unwrap();
    }
}
