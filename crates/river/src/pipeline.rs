//! Pipeline composition and execution.
//!
//! Three runners are provided:
//!
//! - [`Pipeline::run_streaming`] — the fused, push-based streaming
//!   driver: each record pulled from a [`Source`] flows depth-first
//!   through the whole operator chain into the final [`Sink`] before
//!   the next record is pulled. Peak buffering is bounded by
//!   operator-internal state (a cutter's open ensemble, a merger's
//!   group), never by stream length, so unbounded streams run in
//!   constant memory. Per-stage record/byte counters come back as
//!   [`StreamStats`].
//! - [`Pipeline::run`] / [`Pipeline::run_count`] — thin wrappers over
//!   the streaming driver that collect (or count) the final stage's
//!   output; [`Pipeline::run_batch`] keeps the old stage-barrier
//!   semantics as a reference implementation for differential tests.
//! - [`Pipeline::run_threaded`] — one OS thread per operator connected
//!   by bounded crossbeam channels, the execution model of the Dynamic
//!   River prototype ("the network operators enable record processing to
//!   be distributed across the processor and memory resources of many
//!   hosts" — within one host, across cores).

use crate::analyze::{CheckOptions, Diagnostic};
use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::record::{Record, RecordKind};
use crate::source::Source;
use crate::telemetry::{EventKind, EventSink, Snapshot, StageTimer, Telemetry, TelemetryConfig};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Nanoseconds since `started`, saturating at `u64::MAX`.
pub(crate) fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Emits `ScopeOpen`/`ScopeClose` for scope-boundary records (subject:
/// scope type). Called at the point source records enter a runner —
/// the streaming driver, the shard splitter, a server session — so
/// every runner produces the same scope-event multiset for the same
/// stream.
pub(crate) fn emit_scope_event(events: &EventSink, record: &Record) {
    match record.kind {
        RecordKind::OpenScope => events.emit(EventKind::ScopeOpen, u64::from(record.scope_type)),
        RecordKind::CloseScope | RecordKind::BadCloseScope => {
            events.emit(EventKind::ScopeClose, u64::from(record.scope_type));
        }
        RecordKind::Data => {}
    }
}

/// Default bounded-channel capacity between threaded stages.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// What [`Pipeline::spawn_threaded`] hands back: the per-stage thread
/// handles, the sender feeding the first stage (drop it to signal
/// end-of-stream), and the receiver draining the last stage.
pub type SpawnedStages = (
    Vec<thread::JoinHandle<Result<(), PipelineError>>>,
    Sender<Record>,
    Receiver<Record>,
);

/// Per-stage counters collected by the streaming driver.
///
/// `peak_burst` is the observability hook for memory accounting: in the
/// fused driver the only buffering is operator-internal, and whatever an
/// operator holds eventually leaves as a burst of pushes during a single
/// `on_record` or `on_eos` call. A `peak_burst` that stays constant as
/// the stream grows is therefore direct evidence that the stage's
/// buffering is bounded.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Operator name, as in [`Pipeline::names`].
    pub name: String,
    /// Records that entered the stage.
    pub records_in: u64,
    /// Payload bytes that entered the stage.
    pub bytes_in: u64,
    /// Records the stage emitted.
    pub records_out: u64,
    /// Payload bytes the stage emitted.
    pub bytes_out: u64,
    /// Most records emitted while processing one input record (or
    /// during the end-of-stream flush).
    pub peak_burst: u64,
    /// Records the stage consumed without emitting any output during
    /// the same `on_record` call — unmatched-policy drops, filtered
    /// records, and the like. A buffering stage (cutter, merger) also
    /// counts here while it absorbs input; its output reappears later
    /// as a burst, so read `records_dropped` together with
    /// `records_out`.
    pub records_dropped: u64,
    current_burst: u64,
    /// Latency accounting hook ([`StageTimer`]), `None` when telemetry
    /// is off. Excluded from equality: two stat sets that counted the
    /// same records are equal regardless of timing.
    pub(crate) timer: Option<Arc<StageTimer>>,
}

impl PartialEq for StageStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.records_in == other.records_in
            && self.bytes_in == other.bytes_in
            && self.records_out == other.records_out
            && self.bytes_out == other.bytes_out
            && self.peak_burst == other.peak_burst
            && self.records_dropped == other.records_dropped
    }
}

impl Eq for StageStats {}

impl StageStats {
    pub(crate) fn with_timer(name: &str, timer: Option<Arc<StageTimer>>) -> Self {
        StageStats {
            name: name.to_string(),
            records_in: 0,
            bytes_in: 0,
            records_out: 0,
            bytes_out: 0,
            peak_burst: 0,
            records_dropped: 0,
            current_burst: 0,
            timer,
        }
    }

    fn note_in(&mut self, record: &Record) {
        self.records_in += 1;
        self.bytes_in += record.byte_len() as u64;
        self.current_burst = 0;
    }

    fn note_out(&mut self, record: &Record) {
        self.records_out += 1;
        self.bytes_out += record.byte_len() as u64;
        self.current_burst += 1;
        self.peak_burst = self.peak_burst.max(self.current_burst);
    }

    fn begin_flush(&mut self) {
        self.current_burst = 0;
    }

    /// Folds another shard's counters for the same stage into this one:
    /// record/byte/drop totals add, `peak_burst` takes the maximum
    /// (each shard buffers independently, so the whole run's bound is
    /// the worst shard's bound).
    pub fn merge(&mut self, other: &StageStats) {
        debug_assert_eq!(self.name, other.name, "merging stats of different stages");
        self.records_in += other.records_in;
        self.bytes_in += other.bytes_in;
        self.records_out += other.records_out;
        self.bytes_out += other.bytes_out;
        self.peak_burst = self.peak_burst.max(other.peak_burst);
        self.records_dropped += other.records_dropped;
    }
}

/// Whole-run statistics returned by [`Pipeline::run_streaming`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// One entry per operator, in pipeline order.
    pub stages: Vec<StageStats>,
    /// Records pulled from the source.
    pub source_records: u64,
    /// Records that reached the final sink.
    pub sink_records: u64,
    /// Payload bytes that reached the final sink.
    pub sink_bytes: u64,
}

impl StreamStats {
    /// The largest `peak_burst` across all stages — the constant that
    /// bounds driver-visible buffering for the whole run.
    pub fn max_peak_burst(&self) -> u64 {
        self.stages.iter().map(|s| s.peak_burst).max().unwrap_or(0)
    }

    /// Total records consumed without output across all stages — the
    /// runtime counterpart of the analyzer's dead-stage diagnostics.
    pub fn total_dropped(&self) -> u64 {
        self.stages.iter().map(|s| s.records_dropped).sum()
    }

    /// Aggregates another shard's run statistics into this one: stage
    /// counters merge pairwise ([`StageStats::merge`]), source and sink
    /// totals add. Every source record flows through exactly one shard,
    /// so the merged totals equal what a single-lane run would report.
    ///
    /// An empty `self` (no stages yet) adopts `other`'s stage list, so
    /// a fold can start from `StreamStats::default()`.
    pub fn merge(&mut self, other: &StreamStats) {
        if self.stages.is_empty() {
            self.stages.clone_from(&other.stages);
        } else {
            debug_assert_eq!(self.stages.len(), other.stages.len());
            for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
                mine.merge(theirs);
            }
        }
        self.source_records += other.source_records;
        self.sink_records += other.sink_records;
        self.sink_bytes += other.sink_bytes;
    }
}

#[derive(Default)]
pub(crate) struct SinkTotals {
    pub(crate) records: u64,
    pub(crate) bytes: u64,
}

/// Pushes `record` into the first operator of `ops`, whose output feeds
/// the next, and so on down to `final_sink` — the fused depth-first
/// step of the streaming driver. Shared with the sharded runtime, whose
/// workers each drive a cloned chain through this same step.
pub(crate) fn feed_chain(
    ops: &mut [Box<dyn Operator>],
    stats: &mut [StageStats],
    record: Record,
    totals: &mut SinkTotals,
    final_sink: &mut dyn Sink,
) -> Result<(), PipelineError> {
    match ops.split_first_mut() {
        None => {
            totals.records += 1;
            totals.bytes += record.byte_len() as u64;
            final_sink.push(record)
        }
        Some((op, rest_ops)) => {
            let (st, rest_stats) = stats.split_first_mut().expect("stats parallel ops");
            st.note_in(&record);
            let timer = st.timer.clone();
            let result = if let Some(timer) = &timer {
                // Self-time: the whole `on_record` call minus the time
                // the recursive sink spent inside downstream stages.
                let mut child_ns = 0u64;
                let started = Instant::now();
                let result = {
                    let mut sink = ChainSink {
                        ops: rest_ops,
                        stats: rest_stats,
                        emitter: st,
                        totals,
                        final_sink,
                        child_ns: Some(&mut child_ns),
                    };
                    op.on_record(record, &mut sink)
                };
                timer.record(elapsed_ns(started).saturating_sub(child_ns));
                result
            } else {
                let mut sink = ChainSink {
                    ops: rest_ops,
                    stats: rest_stats,
                    emitter: st,
                    totals,
                    final_sink,
                    child_ns: None,
                };
                op.on_record(record, &mut sink)
            };
            if result.is_ok() && st.current_burst == 0 {
                st.records_dropped += 1;
                if let Some(timer) = &timer {
                    timer.note_drop();
                }
            }
            result
        }
    }
}

/// The sink handed to operator N: forwards each push into operator N+1
/// (recursively down the chain), crediting N's output counters.
struct ChainSink<'a> {
    ops: &'a mut [Box<dyn Operator>],
    stats: &'a mut [StageStats],
    emitter: &'a mut StageStats,
    totals: &'a mut SinkTotals,
    final_sink: &'a mut dyn Sink,
    /// When the emitting stage is being timed, accumulates the
    /// nanoseconds this sink spends inside downstream stages so the
    /// emitter can subtract them (self-time, not cumulative time).
    child_ns: Option<&'a mut u64>,
}

impl Sink for ChainSink<'_> {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        self.emitter.note_out(&record);
        if let Some(child_ns) = self.child_ns.as_deref_mut() {
            let started = Instant::now();
            let result = feed_chain(self.ops, self.stats, record, self.totals, self.final_sink);
            *child_ns += elapsed_ns(started);
            result
        } else {
            feed_chain(self.ops, self.stats, record, self.totals, self.final_sink)
        }
    }
}

/// End-of-stream flush: each stage's `on_eos` output cascades through
/// the remainder of the chain, upstream first, so a flushed record
/// still traverses every later operator. Shared by the streaming driver
/// and the sharded runtime's workers.
pub(crate) fn flush_chain(
    ops: &mut [Box<dyn Operator>],
    stats: &mut [StageStats],
    totals: &mut SinkTotals,
    final_sink: &mut dyn Sink,
) -> Result<(), PipelineError> {
    for i in 0..ops.len() {
        let (op, rest_ops) = ops[i..].split_first_mut().expect("index in range");
        let (st, rest_stats) = stats[i..].split_first_mut().expect("stats parallel ops");
        st.begin_flush();
        // The flushing stage's own `on_eos` cost is not timed (the
        // histogram is per-record); records it emits still flow through
        // `feed_chain`, so downstream stages are timed normally.
        let mut chain = ChainSink {
            ops: rest_ops,
            stats: rest_stats,
            emitter: st,
            totals,
            final_sink,
            child_ns: None,
        };
        op.on_eos(&mut chain)?;
    }
    Ok(())
}

/// An ordered chain of operators.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
///
/// let mut p = Pipeline::new();
/// p.add(MapPayload::new("gain", |v: &mut [f64]| {
///     v.iter_mut().for_each(|x| *x *= 10.0);
/// }));
/// p.add(RecordFilter::new("nonempty", |r: &Record| r.byte_len() > 0));
/// assert_eq!(p.len(), 2);
/// let out = p.run(vec![Record::data(0, Payload::f64(vec![1.0]))]).unwrap();
/// assert_eq!(out[0].payload.as_f64().unwrap(), &[10.0]);
/// ```
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
    channel_capacity: usize,
    telemetry: Telemetry,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            ops: Vec::new(),
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            telemetry: Telemetry::off(),
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("operators", &self.names())
            .field("channel_capacity", &self.channel_capacity)
            .field("telemetry", &self.telemetry.config())
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operator (builder style, non-consuming).
    pub fn add(&mut self, op: impl Operator + 'static) -> &mut Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Appends a boxed operator.
    pub fn add_boxed(&mut self, op: Box<dyn Operator>) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends every operator of `other`, in order — composes pipeline
    /// segments into longer chains without repeating their recipes.
    ///
    /// # Example
    ///
    /// ```
    /// use dynamic_river::prelude::*;
    ///
    /// let mut front = Pipeline::new();
    /// front.add(Passthrough);
    /// let mut back = Pipeline::new();
    /// back.add(RecordFilter::new("evens", |r: &Record| r.seq % 2 == 0));
    /// front.extend(back);
    /// assert_eq!(front.names(), vec!["passthrough", "evens"]);
    /// ```
    pub fn extend(&mut self, other: Pipeline) -> &mut Self {
        self.ops.extend(other.ops);
        self
    }

    /// Sets the bounded-channel capacity used between stages by
    /// [`run_threaded`](Self::run_threaded) and between the sharded
    /// runtime's splitter/workers/merge by
    /// [`run_sharded`](Self::run_sharded) (default
    /// [`DEFAULT_CHANNEL_CAPACITY`]). Capacity 0 is a rendezvous
    /// channel: every hop blocks until the downstream stage takes the
    /// record.
    ///
    /// Non-consuming, like [`add`](Self::add) and
    /// [`extend`](Self::extend) — all builder methods take `&mut self`
    /// and chain through the returned reference.
    pub fn set_channel_capacity(&mut self, capacity: usize) -> &mut Self {
        self.channel_capacity = capacity;
        self
    }

    /// The channel capacity [`run_threaded`](Self::run_threaded) will
    /// use.
    pub fn channel_capacity(&self) -> usize {
        self.channel_capacity
    }

    /// Enables telemetry at `config`, replacing any previous registry
    /// (non-consuming builder, like [`add`](Self::add)).
    ///
    /// With [`TelemetryConfig::Counters`] the runners populate lock-free
    /// per-stage latency histograms; [`TelemetryConfig::Full`] adds the
    /// structured event log. The default, [`TelemetryConfig::Off`],
    /// costs the hot path one `Option` branch per stage. Read results
    /// back with [`telemetry_snapshot`](Self::telemetry_snapshot).
    pub fn set_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        self.telemetry = Telemetry::new(config);
        self
    }

    /// Shares an existing [`Telemetry`] registry with this pipeline —
    /// several pipelines recording into one set of histograms and one
    /// event log.
    pub fn set_telemetry_handle(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// A clone of the pipeline's [`Telemetry`] handle. Useful before a
    /// consuming runner ([`run_threaded`](Self::run_threaded)): keep the
    /// handle, run, then call [`Telemetry::snapshot`] on it.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// A point-in-time [`Snapshot`] of the pipeline's telemetry: one
    /// latency histogram per stage plus the retained event log.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the pipeline has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator names in order — the Figure 5 block diagram as text.
    pub fn names(&self) -> Vec<&str> {
        self.ops
            .iter()
            .map(super::operator::Operator::name)
            .collect()
    }

    /// Duplicates the whole operator chain via each operator's
    /// [`Operator::clone_op`] hook, preserving the channel capacity —
    /// how the sharded runtime instantiates one chain per worker.
    ///
    /// # Errors
    ///
    /// Returns an [`PipelineError::Operator`] error naming the first
    /// operator that does not support duplication.
    pub fn clone_chain(&self) -> Result<Pipeline, PipelineError> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            ops.push(op.clone_op().ok_or_else(|| {
                PipelineError::operator(
                    op.name(),
                    "operator does not support duplication (clone_op returned None); \
                     chains containing it cannot be sharded",
                )
            })?);
        }
        Ok(Pipeline {
            ops,
            channel_capacity: self.channel_capacity,
            // Clones share the registry: every worker driving a cloned
            // chain records into the same per-stage histograms.
            telemetry: self.telemetry.clone(),
        })
    }

    /// Consumes the pipeline, yielding its operator chain — used by the
    /// sharded runtime to move each worker's chain onto its thread.
    pub(crate) fn into_ops(self) -> Vec<Box<dyn Operator>> {
        self.ops
    }

    /// Statically verifies the chain with default options (completely
    /// unknown input), returning every finding of the analyzer —
    /// subtype/payload mismatches, dead stages, scope imbalance,
    /// shard-unsafe operators (warnings here), and unknown-signature
    /// operators (always warnings). See [`crate::analyze`] for the
    /// diagnostic catalog and DESIGN.md §15 for the model.
    ///
    /// An empty result means the chain is provably free of the
    /// mistakes the analyzer can see; errors in the result mean the
    /// chain **will** misbehave at runtime and the streaming/sharded
    /// runners will refuse to start it.
    ///
    /// # Example
    ///
    /// ```
    /// use dynamic_river::prelude::*;
    ///
    /// let mut p = Pipeline::new();
    /// p.add(Passthrough);
    /// assert!(p.check().is_empty());
    /// ```
    pub fn check(&self) -> Vec<Diagnostic> {
        self.check_with(&CheckOptions::default())
    }

    /// Statically verifies the chain against explicit
    /// [`CheckOptions`]: seed the abstract input classes (e.g. "this
    /// chain receives audio records inside clip scopes") for tighter
    /// analysis than the unknown-input default, or set
    /// `sharded: true` to make non-cloneable operators errors.
    pub fn check_with(&self, opts: &CheckOptions) -> Vec<Diagnostic> {
        crate::analyze::analyze_ops(&self.ops, opts, true)
    }

    /// Pre-flight gate used by the runners: refuses chains whose
    /// analysis contains errors. `sharded` selects the sharded-run
    /// profile (clone-probing on, `ShardUnsafe` promoted to an error).
    pub(crate) fn preflight(&self, sharded: bool) -> Result<(), PipelineError> {
        let opts = CheckOptions {
            sharded,
            ..CheckOptions::default()
        };
        let diags = crate::analyze::analyze_ops(&self.ops, &opts, sharded);
        if crate::analyze::has_errors(&diags) {
            let errors: Vec<Diagnostic> = diags
                .into_iter()
                .filter(|d| d.severity == crate::analyze::Severity::Error)
                .collect();
            self.telemetry
                .event_sink(0)
                .emit(EventKind::AnalysisReject, errors.len() as u64);
            return Err(PipelineError::Analysis(errors));
        }
        Ok(())
    }

    /// Runs the pipeline as a fused streaming chain: every record
    /// pulled from `source` is pushed depth-first through all operators
    /// into `sink` before the next pull, then `on_eos` flushes cascade
    /// in stage order. Returns per-stage counters.
    ///
    /// Peak memory is the source's read-ahead plus each operator's
    /// internal state — independent of stream length, which is what
    /// lets unbounded monitoring streams flow through the Figure 5
    /// graph.
    ///
    /// The output seen by `sink` is record-for-record identical to
    /// [`run_batch`](Self::run_batch): each operator observes the same
    /// input sequence in the same order either way, only the
    /// interleaving across operators differs.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] when the pre-flight
    /// [`check`](Self::check) proves the chain broken (naming the
    /// offending operator), otherwise the first source or operator
    /// error.
    pub fn run_streaming(
        &mut self,
        mut source: impl Source,
        sink: &mut dyn Sink,
    ) -> Result<StreamStats, PipelineError> {
        self.preflight(false)?;
        let names: Vec<String> = self.ops.iter().map(|op| op.name().to_string()).collect();
        let timers = self.telemetry.stage_timers(&names);
        let mut stats: Vec<StageStats> = self
            .ops
            .iter()
            .zip(timers)
            .map(|(op, timer)| StageStats::with_timer(op.name(), timer))
            .collect();
        let events = self.telemetry.event_sink(0);
        if events.enabled() {
            for op in &mut self.ops {
                op.attach_events(&events);
            }
        }
        let mut totals = SinkTotals::default();
        let mut source_records = 0u64;
        while let Some(record) = source.next_record()? {
            source_records += 1;
            if events.enabled() {
                emit_scope_event(&events, &record);
            }
            feed_chain(&mut self.ops, &mut stats, record, &mut totals, sink)?;
        }
        flush_chain(&mut self.ops, &mut stats, &mut totals, sink)?;
        Ok(StreamStats {
            stages: stats,
            source_records,
            sink_records: totals.records,
            sink_bytes: totals.bytes,
        })
    }

    /// Runs the pipeline data-parallel across `workers` shards: the
    /// record stream is partitioned at top-level scope boundaries (one
    /// whole `OpenScope…CloseScope` subtree per unit), each worker
    /// thread drives a [`clone_chain`](Self::clone_chain)ed copy of the
    /// operator chain over its units, and a deterministic ordered merge
    /// recombines the outputs — byte-identical to
    /// [`run_streaming`](Self::run_streaming) for scope-local chains
    /// (see [`crate::shard`] for the exact contract).
    ///
    /// The pipeline itself is left untouched (workers run clones), so
    /// it can be reused afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] when the pre-flight
    /// [`check`](Self::check) fails — including a `ShardUnsafe`
    /// diagnostic naming any operator that does not support
    /// [`Operator::clone_op`] — otherwise the first source or operator
    /// error in stream order.
    pub fn run_sharded(
        &self,
        source: impl Source + Send,
        sink: &mut dyn Sink,
        workers: usize,
    ) -> Result<StreamStats, PipelineError> {
        crate::shard::ShardedPipeline::from_pipeline(self, workers)?.run(source, sink)
    }

    /// Runs the pipeline over `input`, collecting the final stage's
    /// output — a thin wrapper over [`run_streaming`](Self::run_streaming).
    ///
    /// # Errors
    ///
    /// Returns the first operator error.
    pub fn run<I>(&mut self, input: I) -> Result<Vec<Record>, PipelineError>
    where
        I: IntoIterator<Item = Record>,
    {
        let mut out = Vec::new();
        self.run_streaming(input.into_iter(), &mut out)?;
        Ok(out)
    }

    /// Runs the pipeline, discarding output but returning the record
    /// count that reached the sink. Streams through a counting sink —
    /// the full output vector is never materialized.
    ///
    /// # Errors
    ///
    /// Returns the first operator error.
    pub fn run_count<I>(&mut self, input: I) -> Result<usize, PipelineError>
    where
        I: IntoIterator<Item = Record>,
    {
        let stats = self.run_streaming(input.into_iter(), &mut crate::operator::NullSink)?;
        Ok(stats.sink_records as usize)
    }

    /// Runs the pipeline stage by stage with a barrier between stages:
    /// operator N processes the *entire* stream (including its `on_eos`
    /// flush) before operator N+1 sees a record, materializing the full
    /// intermediate vector at every hop.
    ///
    /// Memory scales with stream length × stage count, so this is only
    /// suitable for clip-sized inputs; it is kept as the reference
    /// semantics the fused driver is differentially tested against.
    ///
    /// # Errors
    ///
    /// Returns the first operator error.
    pub fn run_batch<I>(&mut self, input: I) -> Result<Vec<Record>, PipelineError>
    where
        I: IntoIterator<Item = Record>,
    {
        let mut records: Vec<Record> = input.into_iter().collect();
        for op in &mut self.ops {
            let mut next = Vec::with_capacity(records.len());
            for r in records {
                op.on_record(r, &mut next)?;
            }
            op.on_eos(&mut next)?;
            records = next;
        }
        Ok(records)
    }

    /// Runs the pipeline with one thread per operator, consuming the
    /// pipeline. Returns the final output records.
    ///
    /// Bounded channels (capacity
    /// [`channel_capacity`](Self::channel_capacity)) apply backpressure
    /// between stages. If any stage fails, the failure propagates and
    /// the first error is returned.
    ///
    /// # Errors
    ///
    /// Returns the first operator error raised on any stage thread.
    pub fn run_threaded<I>(self, input: I) -> Result<Vec<Record>, PipelineError>
    where
        I: IntoIterator<Item = Record> + Send + 'static,
        I::IntoIter: Send,
    {
        let capacity = self.channel_capacity;
        let (handles, feed_tx, out_rx) = self.spawn_threaded(capacity);

        // Feed input from this thread (bounded channel applies
        // backpressure).
        let feeder = thread::spawn(move || {
            for r in input {
                if feed_tx.send(r).is_err() {
                    // Downstream failed; stop feeding.
                    break;
                }
            }
            // Dropping feed_tx signals EOS.
        });

        let mut out = Vec::new();
        for r in out_rx {
            out.push(r);
        }
        feeder.join().expect("feeder thread panicked");

        let mut first_error = None;
        for h in handles {
            if let Err(e) = h.join().expect("stage thread panicked") {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Spawns the stage threads and returns `(handles, input sender,
    /// output receiver)`. Dropping the sender signals end-of-stream;
    /// stages flush (`on_eos`) and shut down in order.
    ///
    /// With telemetry enabled, each stage thread times `op.on_record`
    /// and subtracts time spent blocked sending downstream (stall time
    /// is backpressure, not stage cost); with event tracing on, a full
    /// downstream channel raises `StallEnter`/`StallExit` events
    /// (subject: stage index).
    pub fn spawn_threaded(self, capacity: usize) -> SpawnedStages {
        struct ChannelSink {
            tx: Sender<Record>,
            events: EventSink,
            stage: u64,
            /// ns spent blocked on a full downstream channel during the
            /// current `on_record` call; the stage thread subtracts it.
            wait_ns: u64,
            /// Timing or events on — take the `try_send` path.
            instrumented: bool,
        }
        impl Sink for ChannelSink {
            fn push(&mut self, record: Record) -> Result<(), PipelineError> {
                if !self.instrumented {
                    return self
                        .tx
                        .send(record)
                        .map_err(|_| PipelineError::Disconnected("downstream stage gone".into()));
                }
                match self.tx.try_send(record) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Disconnected(_)) => {
                        Err(PipelineError::Disconnected("downstream stage gone".into()))
                    }
                    Err(TrySendError::Full(record)) => {
                        self.events.emit(EventKind::StallEnter, self.stage);
                        let started = Instant::now();
                        let result = self.tx.send(record).map_err(|_| {
                            PipelineError::Disconnected("downstream stage gone".into())
                        });
                        self.wait_ns += elapsed_ns(started);
                        self.events.emit(EventKind::StallExit, self.stage);
                        result
                    }
                }
            }
        }

        let names: Vec<String> = self.ops.iter().map(|op| op.name().to_string()).collect();
        let timers = self.telemetry.stage_timers(&names);
        let chain_events = self.telemetry.event_sink(0);
        let (feed_tx, mut prev_rx) = bounded::<Record>(capacity);
        let mut handles = Vec::with_capacity(self.ops.len());
        for (stage, (mut op, timer)) in self.ops.into_iter().zip(timers).enumerate() {
            let (tx, rx) = bounded::<Record>(capacity);
            let stage_rx = prev_rx;
            prev_rx = rx;
            let events = chain_events.clone();
            if events.enabled() {
                op.attach_events(&events);
            }
            handles.push(thread::spawn(move || -> Result<(), PipelineError> {
                let instrumented = timer.is_some() || events.enabled();
                let mut sink = ChannelSink {
                    tx,
                    events,
                    stage: stage as u64,
                    wait_ns: 0,
                    instrumented,
                };
                for record in stage_rx {
                    if let Some(timer) = &timer {
                        sink.wait_ns = 0;
                        let started = Instant::now();
                        op.on_record(record, &mut sink)?;
                        timer.record(elapsed_ns(started).saturating_sub(sink.wait_ns));
                    } else {
                        op.on_record(record, &mut sink)?;
                    }
                }
                op.on_eos(&mut sink)?;
                Ok(())
            }));
        }
        (handles, feed_tx, prev_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CountingSink, NullSink};
    use crate::ops::{FnOp, MapPayload, Passthrough, RecordFilter};
    use crate::record::{Payload, RecordKind};
    use crate::source::FnSource;

    fn numbered(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::data(0, Payload::f64(vec![i as f64])).with_seq(i as u64))
            .collect()
    }

    /// Holds every record until end-of-stream, then replays them — the
    /// worst case for flush ordering.
    struct Buffering {
        held: Vec<Record>,
    }
    impl Operator for Buffering {
        fn name(&self) -> &'static str {
            "buffering"
        }
        fn on_record(&mut self, record: Record, _out: &mut dyn Sink) -> Result<(), PipelineError> {
            self.held.push(record);
            Ok(())
        }
        fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
            for r in self.held.drain(..) {
                out.push(r)?;
            }
            Ok(())
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        let input = numbered(5);
        assert_eq!(p.run(input.clone()).unwrap(), input);
        assert!(p.is_empty());
    }

    #[test]
    fn stages_compose_in_order() {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("plus1", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x += 1.0);
        }));
        p.add(MapPayload::new("times2", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x *= 2.0);
        }));
        let out = p.run(numbered(3)).unwrap();
        // (x + 1) * 2
        assert_eq!(out[2].payload.as_f64().unwrap(), &[6.0]);
        assert_eq!(p.names(), vec!["plus1", "times2"]);
    }

    #[test]
    fn extend_composes_segments() {
        let mut front = Pipeline::new();
        front.add(MapPayload::new("plus1", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x += 1.0);
        }));
        let mut back = Pipeline::new();
        back.add(MapPayload::new("times2", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x *= 2.0);
        }));
        back.add(Passthrough);
        front.extend(back);
        assert_eq!(front.names(), vec!["plus1", "times2", "passthrough"]);
        let out = front.run(numbered(2)).unwrap();
        assert_eq!(out[1].payload.as_f64().unwrap(), &[4.0]);
    }

    #[test]
    fn run_count_matches_run() {
        let mut p = Pipeline::new();
        p.add(RecordFilter::new("evens", |r: &Record| {
            r.seq.is_multiple_of(2)
        }));
        assert_eq!(p.run_count(numbered(10)).unwrap(), 5);
    }

    #[test]
    fn on_eos_flushes_in_stage_order() {
        let mut p = Pipeline::new();
        p.add(Buffering { held: Vec::new() });
        p.add(Passthrough);
        let out = p.run(numbered(4)).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn operator_error_aborts_run() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("explode", |r: Record, out: &mut dyn Sink| {
            if r.seq == 2 {
                Err(PipelineError::operator("explode", "boom"))
            } else {
                out.push(r)
            }
        }));
        let err = p.run(numbered(5)).unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn source_error_aborts_run() {
        let mut fed = 0;
        let src = FnSource(move || {
            fed += 1;
            if fed > 3 {
                Err(PipelineError::Disconnected("sensor feed died".into()))
            } else {
                Ok(Some(Record::data(0, Payload::Empty)))
            }
        });
        let mut p = Pipeline::new();
        p.add(Passthrough);
        let mut sink = CountingSink::default();
        let err = p.run_streaming(src, &mut sink).unwrap_err();
        assert!(matches!(err, PipelineError::Disconnected(_)));
        assert_eq!(sink.records, 3); // everything before the failure flowed
    }

    #[test]
    fn streaming_matches_batch_with_eos_buffering() {
        let build = || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("plus1", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x += 1.0);
            }));
            p.add(Buffering { held: Vec::new() });
            p.add(RecordFilter::new("evens", |r: &Record| {
                r.seq.is_multiple_of(2)
            }));
            p
        };
        let batch = build().run_batch(numbered(20)).unwrap();
        let mut streamed = Vec::new();
        build()
            .run_streaming(numbered(20).into_iter(), &mut streamed)
            .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn stream_stats_account_for_every_record() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("triple", |r: Record, out: &mut dyn Sink| {
            out.push(r.clone())?;
            out.push(r.clone())?;
            out.push(r)
        }));
        p.add(RecordFilter::new("evens", |r: &Record| {
            r.seq.is_multiple_of(2)
        }));
        let stats = p
            .run_streaming(numbered(10).into_iter(), &mut NullSink)
            .unwrap();
        assert_eq!(stats.source_records, 10);
        assert_eq!(stats.stages[0].name, "triple");
        assert_eq!(stats.stages[0].records_in, 10);
        assert_eq!(stats.stages[0].records_out, 30);
        assert_eq!(stats.stages[0].peak_burst, 3);
        assert_eq!(stats.stages[1].records_in, 30);
        assert_eq!(stats.stages[1].records_out, 15);
        assert_eq!(stats.stages[1].peak_burst, 1);
        assert_eq!(stats.sink_records, 15);
        assert_eq!(stats.max_peak_burst(), 3);
        // Each record payload is one f64.
        assert_eq!(stats.stages[0].bytes_in, 80);
        assert_eq!(stats.sink_bytes, 15 * 8);
    }

    #[test]
    fn eos_burst_is_counted() {
        let mut p = Pipeline::new();
        p.add(Buffering { held: Vec::new() });
        let stats = p
            .run_streaming(numbered(7).into_iter(), &mut NullSink)
            .unwrap();
        // All 7 records leave in one flush burst.
        assert_eq!(stats.stages[0].peak_burst, 7);
        assert_eq!(stats.sink_records, 7);
    }

    #[test]
    fn fused_driver_interleaves_streams_without_materializing() {
        // A pipeline whose sink observes that record N arrives before
        // record N+1 is even pulled from the source — depth-first flow.
        let pulled = std::cell::Cell::new(0u64);
        let mut arrived_at_pull = Vec::new();
        {
            let mut n = 0u64;
            let src = FnSource(|| {
                n += 1;
                pulled.set(n);
                Ok((n <= 5).then(|| Record::data(0, Payload::Empty).with_seq(n)))
            });
            let mut p = Pipeline::new();
            p.add(Passthrough);
            p.add(Passthrough);
            let mut sink = crate::operator::FnSink(|r: Record| {
                arrived_at_pull.push((r.seq, pulled.get()));
                Ok(())
            });
            p.run_streaming(src, &mut sink).unwrap();
        }
        // Record N reaches the sink while the source has only produced N.
        assert_eq!(
            arrived_at_pull,
            vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]
        );
    }

    #[test]
    fn default_channel_capacity_is_256() {
        assert_eq!(Pipeline::new().channel_capacity(), DEFAULT_CHANNEL_CAPACITY);
        assert_eq!(DEFAULT_CHANNEL_CAPACITY, 256);
    }

    #[test]
    fn channel_capacity_is_configurable() {
        // A rendezvous (capacity 0) and a tiny channel both produce the
        // same output as the default — capacity only shapes scheduling.
        for capacity in [0usize, 1, 4] {
            let mut p = Pipeline::new();
            p.set_channel_capacity(capacity);
            p.add(MapPayload::new("plus1", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x += 1.0);
            }));
            p.add(RecordFilter::new("evens", |r: &Record| {
                r.seq.is_multiple_of(2)
            }));
            assert_eq!(p.channel_capacity(), capacity);
            let out = p.run_threaded(numbered(50)).unwrap();
            assert_eq!(out.len(), 25);
            assert_eq!(out[0].payload.as_f64().unwrap(), &[1.0]);
        }
    }

    #[test]
    fn threaded_matches_sync() {
        let build = || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("plus1", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x += 1.0);
            }));
            p.add(RecordFilter::new("evens", |r: &Record| {
                r.seq.is_multiple_of(2)
            }));
            p.add(MapPayload::new("times3", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= 3.0);
            }));
            p
        };
        let sync_out = build().run(numbered(100)).unwrap();
        let threaded_out = build().run_threaded(numbered(100)).unwrap();
        assert_eq!(sync_out, threaded_out);
        assert_eq!(sync_out.len(), 50);
    }

    #[test]
    fn threaded_propagates_errors() {
        let mut p = Pipeline::new();
        p.add(FnOp::new("explode", |r: Record, out: &mut dyn Sink| {
            if r.seq == 50 {
                Err(PipelineError::operator("explode", "boom"))
            } else {
                out.push(r)
            }
        }));
        let err = p.run_threaded(numbered(1000)).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Operator { .. } | PipelineError::Disconnected(_)
        ));
    }

    #[test]
    fn threaded_preserves_order() {
        let mut p = Pipeline::new();
        for i in 0..4 {
            p.add(MapPayload::new(format!("stage{i}"), |_: &mut [f64]| {}));
        }
        let out = p.run_threaded(numbered(500)).unwrap();
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn threaded_scope_stream_survives() {
        let mut input = vec![Record::open_scope(1, vec![])];
        input.extend(numbered(20));
        input.push(Record::close_scope(1));
        let mut p = Pipeline::new();
        p.add(Passthrough);
        p.add(Passthrough);
        let out = p.run_threaded(input).unwrap();
        assert_eq!(out.len(), 22);
        assert_eq!(out[0].kind, RecordKind::OpenScope);
        assert_eq!(out[21].kind, RecordKind::CloseScope);
        crate::scope::validate_scopes(&out).unwrap();
    }
}
