//! The record model.
//!
//! "Dynamic River records can be grouped using `record subtype`, `scope`
//! and `scope type` header fields. … Within the data stream, each scope
//! begins with an `OpenScope` record and ends with a `CloseScope`
//! record. Optionally, `CloseScope` records can be replaced with
//! `BadCloseScope` records to enable scope closure while indicating that
//! the scope has not reached its intended point of closure. …
//! Optionally, `OpenScope` records may contain context information, such
//! as the sampling rate of an acoustic clip." (paper §2)

use crate::buf::SampleBuf;
use bytes::Bytes;
use std::fmt;

/// Structural kind of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// Ordinary payload-carrying record.
    Data,
    /// Opens a scope; `scope_type` identifies the scope's meaning.
    OpenScope,
    /// Closes the innermost open scope at its intended point.
    CloseScope,
    /// Closes the innermost open scope *before* its intended point —
    /// synthesized when an upstream segment terminates unexpectedly.
    BadCloseScope,
}

impl RecordKind {
    /// Stable wire tag for this kind.
    pub fn tag(self) -> u8 {
        match self {
            RecordKind::Data => 0,
            RecordKind::OpenScope => 1,
            RecordKind::CloseScope => 2,
            RecordKind::BadCloseScope => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(RecordKind::Data),
            1 => Some(RecordKind::OpenScope),
            2 => Some(RecordKind::CloseScope),
            3 => Some(RecordKind::BadCloseScope),
            _ => None,
        }
    }

    /// `true` for `CloseScope` and `BadCloseScope`.
    pub fn closes_scope(self) -> bool {
        matches!(self, RecordKind::CloseScope | RecordKind::BadCloseScope)
    }
}

/// Typed record payload.
///
/// Sample-carrying variants (`F64`, `Complex`) hold a [`SampleBuf`] —
/// an `Arc`-backed view — so cloning a record never copies samples and
/// re-windowing operators can emit O(1) sub-views of their input
/// (`reslice`, `cutout`, `cutter`). Construct them from owned data with
/// `Payload::F64(vec.into())` or the [`f64`](Self::f64) /
/// [`complex`](Self::complex) helpers; equality is by sample content,
/// not by allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Payload {
    /// No payload (scope records, markers).
    #[default]
    Empty,
    /// 64-bit float samples (audio, anomaly scores, spectra) as a
    /// shared, sliceable view.
    F64(SampleBuf),
    /// Interleaved complex values as `[re, im, re, im, …]` (the
    /// `float2cplx`/`dft` stages), also a shared view. By contract the
    /// length is a whole number of pairs: constructors do not enforce
    /// it, but the wire codec rejects odd counts on decode and the
    /// `dft` operator errors on them.
    Complex(SampleBuf),
    /// Raw bytes (encapsulated file content, opaque blobs).
    Bytes(Bytes),
    /// UTF-8 text.
    Text(String),
    /// Key/value context pairs (e.g. `sample_rate` on an `OpenScope`).
    Pairs(Vec<(String, String)>),
}

impl Payload {
    /// Builds an `F64` payload from anything convertible to a
    /// [`SampleBuf`] (`Vec<f64>`, `&[f64]`, an existing view).
    pub fn f64(samples: impl Into<SampleBuf>) -> Payload {
        Payload::F64(samples.into())
    }

    /// Builds a `Complex` payload (interleaved `[re, im, …]`) from
    /// anything convertible to a [`SampleBuf`].
    pub fn complex(interleaved: impl Into<SampleBuf>) -> Payload {
        Payload::Complex(interleaved.into())
    }

    /// Stable wire tag for the payload variant.
    pub fn tag(&self) -> u8 {
        match self {
            Payload::Empty => 0,
            Payload::F64(_) => 1,
            Payload::Complex(_) => 2,
            Payload::Bytes(_) => 3,
            Payload::Text(_) => 4,
            Payload::Pairs(_) => 5,
        }
    }

    /// Borrows the `F64` samples, if that is the variant.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Payload::F64(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Borrows the interleaved complex values, if that is the variant.
    pub fn as_complex(&self) -> Option<&[f64]> {
        match self {
            Payload::Complex(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Borrows the `F64` sample view, if that is the variant — for
    /// operators that slice or share the buffer rather than read it.
    pub fn as_f64_buf(&self) -> Option<&SampleBuf> {
        match self {
            Payload::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the `Complex` sample view, if that is the variant.
    pub fn as_complex_buf(&self) -> Option<&SampleBuf> {
        match self {
            Payload::Complex(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the text, if that is the variant.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Payload::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the pairs, if that is the variant.
    pub fn as_pairs(&self) -> Option<&[(String, String)]> {
        match self {
            Payload::Pairs(p) => Some(p),
            _ => None,
        }
    }

    /// Borrows the bytes, if that is the variant.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up a context value by key in a `Pairs` payload.
    pub fn context(&self, key: &str) -> Option<&str> {
        self.as_pairs()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Approximate in-memory payload size in bytes — used for the
    /// paper's data-reduction accounting.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) | Payload::Complex(v) => v.len() * 8,
            Payload::Bytes(b) => b.len(),
            Payload::Text(s) => s.len(),
            Payload::Pairs(p) => p.iter().map(|(k, v)| k.len() + v.len()).sum(),
        }
    }
}

/// A Dynamic River record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Structural kind.
    pub kind: RecordKind,
    /// Application-defined record subtype ("record subtype" header
    /// field) — e.g. audio vs anomaly-score vs trigger records.
    pub subtype: u16,
    /// Scope nesting depth ("scope" header field): "larger values
    /// indicate greater nesting while scope depth 0 indicates the
    /// outermost scope."
    pub scope_depth: u32,
    /// Application-defined scope type ("scope type" header field) — e.g.
    /// `scope_clip` vs `scope_ensemble`.
    pub scope_type: u16,
    /// Monotonic sequence number, assigned by sources; preserved by
    /// operators that transform payloads one-to-one.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

impl Record {
    /// Creates a data record with `subtype` and `payload` (scope fields
    /// zero; set by scope-aware pipelines).
    pub fn data(subtype: u16, payload: Payload) -> Self {
        Record {
            kind: RecordKind::Data,
            subtype,
            scope_depth: 0,
            scope_type: 0,
            seq: 0,
            payload,
        }
    }

    /// Creates an `OpenScope` record of the given scope type with
    /// optional context pairs.
    pub fn open_scope(scope_type: u16, context: Vec<(String, String)>) -> Self {
        Record {
            kind: RecordKind::OpenScope,
            subtype: 0,
            scope_depth: 0,
            scope_type,
            seq: 0,
            payload: if context.is_empty() {
                Payload::Empty
            } else {
                Payload::Pairs(context)
            },
        }
    }

    /// Creates a `CloseScope` record of the given scope type.
    pub fn close_scope(scope_type: u16) -> Self {
        Record {
            kind: RecordKind::CloseScope,
            subtype: 0,
            scope_depth: 0,
            scope_type,
            seq: 0,
            payload: Payload::Empty,
        }
    }

    /// Creates a `BadCloseScope` record of the given scope type.
    pub fn bad_close_scope(scope_type: u16) -> Self {
        Record {
            kind: RecordKind::BadCloseScope,
            subtype: 0,
            scope_depth: 0,
            scope_type,
            seq: 0,
            payload: Payload::Empty,
        }
    }

    /// Builder-style: sets the sequence number.
    #[must_use = "with_seq returns the modified record; it does not mutate in place"]
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Builder-style: sets the scope depth.
    #[must_use = "with_depth returns the modified record; it does not mutate in place"]
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.scope_depth = depth;
        self
    }

    /// Builder-style: sets the subtype.
    #[must_use = "with_subtype returns the modified record; it does not mutate in place"]
    pub fn with_subtype(mut self, subtype: u16) -> Self {
        self.subtype = subtype;
        self
    }

    /// `true` for scope-management records (open/close/bad-close).
    pub fn is_scope_marker(&self) -> bool {
        self.kind != RecordKind::Data
    }

    /// Payload size in bytes (excluding headers).
    pub fn byte_len(&self) -> usize {
        self.payload.byte_len()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RecordKind::Data => write!(
                f,
                "Data(subtype={}, scope_type={}, depth={}, seq={}, {} bytes)",
                self.subtype,
                self.scope_type,
                self.scope_depth,
                self.seq,
                self.byte_len()
            ),
            RecordKind::OpenScope => write!(
                f,
                "OpenScope(type={}, depth={})",
                self.scope_type, self.scope_depth
            ),
            RecordKind::CloseScope => write!(
                f,
                "CloseScope(type={}, depth={})",
                self.scope_type, self.scope_depth
            ),
            RecordKind::BadCloseScope => write!(
                f,
                "BadCloseScope(type={}, depth={})",
                self.scope_type, self.scope_depth
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_round_trip() {
        for kind in [
            RecordKind::Data,
            RecordKind::OpenScope,
            RecordKind::CloseScope,
            RecordKind::BadCloseScope,
        ] {
            assert_eq!(RecordKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(RecordKind::from_tag(200), None);
    }

    #[test]
    fn closes_scope_classification() {
        assert!(RecordKind::CloseScope.closes_scope());
        assert!(RecordKind::BadCloseScope.closes_scope());
        assert!(!RecordKind::Data.closes_scope());
        assert!(!RecordKind::OpenScope.closes_scope());
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(Payload::f64(vec![1.0]).as_f64(), Some(&[1.0][..]));
        assert_eq!(Payload::f64(vec![1.0]).as_text(), None);
        assert_eq!(
            Payload::complex(vec![1.0, 2.0]).as_complex(),
            Some(&[1.0, 2.0][..])
        );
        assert!(Payload::f64(vec![1.0]).as_f64_buf().is_some());
        assert!(Payload::f64(vec![1.0]).as_complex_buf().is_none());
        assert!(Payload::complex(vec![1.0, 0.0]).as_complex_buf().is_some());
        assert_eq!(Payload::Text("x".into()).as_text(), Some("x"));
        let pairs = Payload::Pairs(vec![("rate".into(), "20160".into())]);
        assert_eq!(pairs.context("rate"), Some("20160"));
        assert_eq!(pairs.context("missing"), None);
        assert_eq!(Payload::Empty.context("rate"), None);
    }

    #[test]
    fn byte_len_accounting() {
        assert_eq!(Payload::Empty.byte_len(), 0);
        assert_eq!(Payload::f64(vec![0.0; 10]).byte_len(), 80);
        assert_eq!(Payload::Text("abc".into()).byte_len(), 3);
        assert_eq!(Payload::Bytes(Bytes::from_static(b"abcd")).byte_len(), 4);
    }

    #[test]
    fn constructors_and_builders() {
        let r = Record::data(3, Payload::f64(vec![1.0]))
            .with_seq(9)
            .with_depth(2)
            .with_subtype(5);
        assert_eq!(r.subtype, 5);
        assert_eq!(r.seq, 9);
        assert_eq!(r.scope_depth, 2);
        assert!(!r.is_scope_marker());

        let open = Record::open_scope(7, vec![("k".into(), "v".into())]);
        assert!(open.is_scope_marker());
        assert_eq!(open.payload.context("k"), Some("v"));

        let open_no_ctx = Record::open_scope(7, vec![]);
        assert_eq!(open_no_ctx.payload, Payload::Empty);
    }

    #[test]
    fn display_nonempty() {
        for r in [
            Record::data(0, Payload::Empty),
            Record::open_scope(1, vec![]),
            Record::close_scope(1),
            Record::bad_close_scope(1),
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn data_display_includes_scope_type() {
        // Inside an ensemble scope, trace output must disambiguate which
        // scope type a data record belongs to.
        let r = Record::data(2, Payload::f64(vec![0.0; 4]))
            .with_depth(2)
            .with_subtype(3);
        let r = Record { scope_type: 9, ..r };
        let s = r.to_string();
        assert!(s.contains("scope_type=9"), "{s}");
        assert!(s.contains("subtype=3"), "{s}");
    }

    #[test]
    fn record_clone_shares_sample_backing() {
        // The acceptance criterion for the zero-copy payload redesign:
        // cloning an F64/Complex record copies no samples — the clone's
        // payload is a view into the same backing allocation.
        use crate::buf::SampleBuf;
        for payload in [
            Payload::f64((0..840).map(|i| i as f64).collect::<Vec<f64>>()),
            Payload::complex(vec![1.0; 1_680]),
        ] {
            let rec = Record::data(1, payload).with_seq(7);
            let cloned = rec.clone();
            let (a, b) = match (&rec.payload, &cloned.payload) {
                (Payload::F64(a), Payload::F64(b)) | (Payload::Complex(a), Payload::Complex(b)) => {
                    (a, b)
                }
                other => panic!("variant changed by clone: {other:?}"),
            };
            assert!(SampleBuf::shares_backing(a, b));
            assert_eq!(rec, cloned);
        }
    }
}
