//! Scope tracking and repair.
//!
//! "We define a data stream scope as a sequence of records that share
//! some contextual meaning … Scopes can be nested. The `scope` field
//! indicates the current scope nesting depth … For instance, if an
//! upstream segment terminates unexpectedly and leaves one or more
//! scopes open, the `streamin` operator will generate `BadCloseScope`
//! records to close all open scopes." (paper §2)

use crate::error::PipelineError;
use crate::record::{Record, RecordKind};

/// One open scope on the tracker's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenScopeInfo {
    /// Application scope type of the open scope.
    pub scope_type: u16,
    /// Depth at which it was opened (0 = outermost).
    pub depth: u32,
}

/// Event classification produced by [`ScopeTracker::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeEvent {
    /// A scope opened; the payload is its depth.
    Opened(u32),
    /// A scope closed cleanly; the payload is its depth.
    Closed(u32),
    /// A scope closed via `BadCloseScope`; the payload is its depth.
    BadClosed(u32),
    /// A data record passed at the current depth.
    Data(u32),
}

/// Streaming scope-state tracker.
///
/// Feeding every record through a tracker yields the current nesting
/// depth, validates the scope discipline, and — after an unexpected
/// end-of-stream — synthesizes the `BadCloseScope` records needed to
/// resynchronize downstream state.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
///
/// let mut t = ScopeTracker::new();
/// t.observe(&Record::open_scope(1, vec![])).unwrap();
/// assert_eq!(t.depth(), 1);
/// // Upstream dies here: repair closes the open scope.
/// let repairs = t.close_all_bad();
/// assert_eq!(repairs.len(), 1);
/// assert_eq!(repairs[0].kind, RecordKind::BadCloseScope);
/// assert_eq!(t.depth(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScopeTracker {
    stack: Vec<OpenScopeInfo>,
}

impl ScopeTracker {
    /// Creates a tracker with no open scopes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current nesting depth (number of open scopes).
    pub fn depth(&self) -> u32 {
        self.stack.len() as u32
    }

    /// The innermost open scope, if any.
    pub fn innermost(&self) -> Option<OpenScopeInfo> {
        self.stack.last().copied()
    }

    /// The open-scope stack, outermost first.
    pub fn open_scopes(&self) -> &[OpenScopeInfo] {
        &self.stack
    }

    /// `true` when no scopes are open (a safe cut point for segment
    /// relocation).
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }

    /// Observes one record, updating scope state.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::ScopeViolation`] for a close without a
    /// matching open, or a close whose scope type does not match the
    /// innermost open scope.
    pub fn observe(&mut self, record: &Record) -> Result<ScopeEvent, PipelineError> {
        match record.kind {
            RecordKind::OpenScope => {
                let depth = self.depth();
                self.stack.push(OpenScopeInfo {
                    scope_type: record.scope_type,
                    depth,
                });
                Ok(ScopeEvent::Opened(depth))
            }
            RecordKind::CloseScope | RecordKind::BadCloseScope => {
                let open = self.stack.pop().ok_or_else(|| {
                    PipelineError::ScopeViolation(format!(
                        "close of scope type {} with no open scope",
                        record.scope_type
                    ))
                })?;
                if open.scope_type != record.scope_type {
                    // Restore state before reporting: the stream is
                    // inconsistent but the tracker should stay usable.
                    self.stack.push(open);
                    return Err(PipelineError::ScopeViolation(format!(
                        "close of scope type {} but innermost open scope is type {}",
                        record.scope_type, open.scope_type
                    )));
                }
                if record.kind == RecordKind::BadCloseScope {
                    Ok(ScopeEvent::BadClosed(open.depth))
                } else {
                    Ok(ScopeEvent::Closed(open.depth))
                }
            }
            RecordKind::Data => Ok(ScopeEvent::Data(self.depth())),
        }
    }

    /// Stamps a record's `scope_depth` field from the tracker state and
    /// observes it: `OpenScope` records receive the depth of the scope
    /// they create; close records the depth of the scope they close;
    /// data records the current depth.
    ///
    /// # Errors
    ///
    /// Propagates [`ScopeTracker::observe`] violations.
    pub fn stamp(&mut self, mut record: Record) -> Result<Record, PipelineError> {
        let depth_before = self.depth();
        let event = self.observe(&record)?;
        record.scope_depth = match event {
            ScopeEvent::Opened(d) | ScopeEvent::Closed(d) | ScopeEvent::BadClosed(d) => d,
            ScopeEvent::Data(_) => depth_before,
        };
        Ok(record)
    }

    /// Synthesizes `BadCloseScope` records for every open scope,
    /// innermost first — what `streamin` emits when the upstream
    /// terminates unexpectedly. The tracker ends balanced.
    pub fn close_all_bad(&mut self) -> Vec<Record> {
        let mut repairs = Vec::with_capacity(self.stack.len());
        while let Some(open) = self.stack.pop() {
            repairs.push(Record::bad_close_scope(open.scope_type).with_depth(open.depth));
        }
        repairs
    }
}

/// Validates that a whole record sequence is scope-balanced and
/// well-nested; returns the number of scopes seen.
///
/// # Errors
///
/// Returns the first violation, or a violation for scopes left open at
/// the end of the sequence.
pub fn validate_scopes<'a, I>(records: I) -> Result<usize, PipelineError>
where
    I: IntoIterator<Item = &'a Record>,
{
    let mut tracker = ScopeTracker::new();
    let mut scopes = 0usize;
    for r in records {
        if let ScopeEvent::Opened(_) = tracker.observe(r)? {
            scopes += 1;
        }
    }
    if tracker.is_balanced() {
        Ok(scopes)
    } else {
        Err(PipelineError::ScopeViolation(format!(
            "{} scope(s) left open at end of stream",
            tracker.depth()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;

    #[test]
    fn nested_open_close() {
        let mut t = ScopeTracker::new();
        assert_eq!(
            t.observe(&Record::open_scope(1, vec![])).unwrap(),
            ScopeEvent::Opened(0)
        );
        assert_eq!(
            t.observe(&Record::open_scope(2, vec![])).unwrap(),
            ScopeEvent::Opened(1)
        );
        assert_eq!(t.depth(), 2);
        assert_eq!(t.innermost().unwrap().scope_type, 2);
        assert_eq!(
            t.observe(&Record::close_scope(2)).unwrap(),
            ScopeEvent::Closed(1)
        );
        assert_eq!(
            t.observe(&Record::close_scope(1)).unwrap(),
            ScopeEvent::Closed(0)
        );
        assert!(t.is_balanced());
    }

    #[test]
    fn data_reports_current_depth() {
        let mut t = ScopeTracker::new();
        t.observe(&Record::open_scope(1, vec![])).unwrap();
        let e = t
            .observe(&Record::data(0, Payload::f64(vec![0.0])))
            .unwrap();
        assert_eq!(e, ScopeEvent::Data(1));
    }

    #[test]
    fn close_without_open_is_violation() {
        let mut t = ScopeTracker::new();
        let err = t.observe(&Record::close_scope(1)).unwrap_err();
        assert!(matches!(err, PipelineError::ScopeViolation(_)));
    }

    #[test]
    fn mismatched_close_type_is_violation_and_preserves_state() {
        let mut t = ScopeTracker::new();
        t.observe(&Record::open_scope(1, vec![])).unwrap();
        let err = t.observe(&Record::close_scope(9)).unwrap_err();
        assert!(matches!(err, PipelineError::ScopeViolation(_)));
        // Scope still open; a correct close succeeds.
        assert_eq!(t.depth(), 1);
        t.observe(&Record::close_scope(1)).unwrap();
    }

    #[test]
    fn bad_close_accepted_like_close() {
        let mut t = ScopeTracker::new();
        t.observe(&Record::open_scope(3, vec![])).unwrap();
        let e = t.observe(&Record::bad_close_scope(3)).unwrap();
        assert_eq!(e, ScopeEvent::BadClosed(0));
        assert!(t.is_balanced());
    }

    #[test]
    fn close_all_bad_innermost_first() {
        let mut t = ScopeTracker::new();
        t.observe(&Record::open_scope(1, vec![])).unwrap();
        t.observe(&Record::open_scope(2, vec![])).unwrap();
        t.observe(&Record::open_scope(3, vec![])).unwrap();
        let repairs = t.close_all_bad();
        let types: Vec<u16> = repairs.iter().map(|r| r.scope_type).collect();
        assert_eq!(types, vec![3, 2, 1]);
        let depths: Vec<u32> = repairs.iter().map(|r| r.scope_depth).collect();
        assert_eq!(depths, vec![2, 1, 0]);
        assert!(t.is_balanced());
    }

    #[test]
    fn stamp_assigns_depths() {
        let mut t = ScopeTracker::new();
        let open = t.stamp(Record::open_scope(1, vec![])).unwrap();
        assert_eq!(open.scope_depth, 0);
        let inner_open = t.stamp(Record::open_scope(2, vec![])).unwrap();
        assert_eq!(inner_open.scope_depth, 1);
        let data = t.stamp(Record::data(0, Payload::Empty)).unwrap();
        assert_eq!(data.scope_depth, 2);
        let close = t.stamp(Record::close_scope(2)).unwrap();
        assert_eq!(close.scope_depth, 1);
    }

    #[test]
    fn validate_accepts_balanced_counts_scopes() {
        let records = vec![
            Record::open_scope(1, vec![]),
            Record::data(0, Payload::Empty),
            Record::open_scope(2, vec![]),
            Record::close_scope(2),
            Record::close_scope(1),
        ];
        assert_eq!(validate_scopes(&records).unwrap(), 2);
    }

    #[test]
    fn validate_rejects_unbalanced() {
        let records = vec![Record::open_scope(1, vec![])];
        assert!(validate_scopes(&records).is_err());
        let records = vec![Record::close_scope(1)];
        assert!(validate_scopes(&records).is_err());
    }
}
