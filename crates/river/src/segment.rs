//! Pipeline segments, hosts, and dynamic relocation.
//!
//! "Pipeline segments are created by composing sequences of operators
//! that produce a partial result important to the overall pipeline
//! application. … Moreover, pipelines can be recomposed dynamically by
//! moving segments among hosts" (paper §2). Relocation happens at
//! *scope boundaries* — the stream is cut only when no scopes are open,
//! so downstream state never sees a torn scope.
//!
//! Hosts are modeled as named executors (threads). A
//! [`RelocatablePipeline`] runs one segment instance at a time; a
//! relocation command makes the coordinator retire the current instance
//! at the next balanced point and start a fresh instance "on" the target
//! host. For cross-machine composition over TCP, see
//! [`run_network_segment`].

use crate::error::PipelineError;
use crate::net::{StreamEnd, StreamIn, StreamOut};
use crate::operator::{Operator, Sink};
use crate::pipeline::Pipeline;
use crate::record::Record;
use crate::scope::ScopeTracker;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::net::{TcpListener, ToSocketAddrs};
use std::thread::{self, JoinHandle};

/// A relocation of a running segment between hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Host the segment left.
    pub from: String,
    /// Host the segment moved to.
    pub to: String,
    /// Count of records the old instance had processed when it was
    /// retired.
    pub at_record: u64,
}

/// Final report of a relocatable segment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// All migrations, in order.
    pub migrations: Vec<Migration>,
    /// Total records forwarded through the segment.
    pub records_in: u64,
    /// Host that processed the final record.
    pub final_host: String,
}

/// Command accepted by a running [`RelocatablePipeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentCommand {
    /// Move the segment to the named host at the next scope boundary.
    Relocate {
        /// Target host name.
        to_host: String,
    },
}

struct Instance {
    feed_tx: Sender<Record>,
    drainer: JoinHandle<Result<(), PipelineError>>,
    stages: Vec<JoinHandle<Result<(), PipelineError>>>,
    host: String,
}

fn spawn_instance(pipeline: Pipeline, output: Sender<Record>, host: String) -> Instance {
    let capacity = pipeline.channel_capacity();
    let (stages, feed_tx, out_rx) = pipeline.spawn_threaded(capacity);
    // Continuous drainer: forwards the instance's output so bounded
    // channels never deadlock between relocations.
    let drainer = thread::spawn(move || -> Result<(), PipelineError> {
        for r in out_rx {
            output
                .send(r)
                .map_err(|_| PipelineError::Disconnected("segment output closed".into()))?;
        }
        Ok(())
    });
    Instance {
        feed_tx,
        drainer,
        stages,
        host,
    }
}

fn retire(instance: Instance) -> Result<u64, PipelineError> {
    let Instance {
        feed_tx,
        drainer,
        stages,
        ..
    } = instance;
    drop(feed_tx); // EOS to the instance
    let mut first_error = None;
    for h in stages {
        if let Err(e) = h.join().expect("stage thread panicked") {
            first_error.get_or_insert(e);
        }
    }
    if let Err(e) = drainer.join().expect("drainer thread panicked") {
        first_error.get_or_insert(e);
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(0),
    }
}

/// A running, relocatable segment.
///
/// # Example
///
/// ```
/// use crossbeam::channel::unbounded;
/// use dynamic_river::prelude::*;
/// use dynamic_river::segment::RelocatablePipeline;
///
/// let (in_tx, in_rx) = unbounded();
/// let (out_tx, out_rx) = unbounded();
/// let seg = RelocatablePipeline::spawn(
///     || {
///         let mut p = Pipeline::new();
///         p.add(Passthrough);
///         p
///     },
///     in_rx,
///     out_tx,
///     "host-a",
/// );
///
/// in_tx.send(Record::open_scope(1, vec![])).unwrap();
/// in_tx.send(Record::close_scope(1)).unwrap();
/// seg.relocate("host-b");
/// in_tx.send(Record::open_scope(1, vec![])).unwrap();
/// in_tx.send(Record::close_scope(1)).unwrap();
/// drop(in_tx);
///
/// let report = seg.join().unwrap();
/// assert_eq!(report.records_in, 4);
/// assert_eq!(report.final_host, "host-b");
/// assert_eq!(out_rx.iter().count(), 4);
/// ```
pub struct RelocatablePipeline {
    control_tx: Sender<SegmentCommand>,
    handle: JoinHandle<Result<SegmentReport, PipelineError>>,
}

impl RelocatablePipeline {
    /// Spawns the coordinator with an initial segment instance on
    /// `initial_host`. `factory` builds a fresh instance of the segment
    /// for each host it runs on.
    pub fn spawn<F>(
        factory: F,
        input: Receiver<Record>,
        output: Sender<Record>,
        initial_host: impl Into<String>,
    ) -> Self
    where
        F: Fn() -> Pipeline + Send + 'static,
    {
        let (control_tx, control_rx) = unbounded::<SegmentCommand>();
        let initial_host = initial_host.into();
        let handle = thread::spawn(move || -> Result<SegmentReport, PipelineError> {
            let mut tracker = ScopeTracker::new();
            let mut migrations = Vec::new();
            let mut records_in = 0u64;
            let mut pending: Option<String> = None;
            let mut current = spawn_instance(factory(), output.clone(), initial_host);

            for record in input {
                // Absorb any relocation commands.
                while let Ok(SegmentCommand::Relocate { to_host }) = control_rx.try_recv() {
                    pending = Some(to_host);
                }
                // Cut only at scope boundaries (nothing open).
                if let Some(to_host) = pending.take() {
                    if tracker.is_balanced() {
                        let from = current.host.clone();
                        retire(current)?;
                        migrations.push(Migration {
                            from,
                            to: to_host.clone(),
                            at_record: records_in,
                        });
                        current = spawn_instance(factory(), output.clone(), to_host);
                    } else {
                        // Not balanced yet: keep the command pending.
                        pending = Some(to_host);
                    }
                }
                // Tolerate scope noise in transit; the tracker only guides
                // cut points.
                let _ = tracker.observe(&record);
                records_in += 1;
                current
                    .feed_tx
                    .send(record)
                    .map_err(|_| PipelineError::Disconnected("segment instance gone".into()))?;
            }
            let final_host = current.host.clone();
            retire(current)?;
            Ok(SegmentReport {
                migrations,
                records_in,
                final_host,
            })
        });
        RelocatablePipeline { control_tx, handle }
    }

    /// Requests relocation to `host` at the next scope boundary.
    /// Returns `false` if the segment has already finished.
    pub fn relocate(&self, host: impl Into<String>) -> bool {
        self.control_tx
            .send(SegmentCommand::Relocate {
                to_host: host.into(),
            })
            .is_ok()
    }

    /// Waits for the segment to finish and returns its report.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error raised by any instance.
    pub fn join(self) -> Result<SegmentReport, PipelineError> {
        self.handle.join().expect("segment coordinator panicked")
    }
}

/// Runs a network-bounded segment: accepts one upstream connection on
/// `listener` (`streamin`), processes records through `pipeline`, and
/// forwards results to `downstream` (`streamout`). Returns how the
/// upstream session ended.
///
/// This is the building block for composing one logical pipeline across
/// several processes/hosts.
///
/// # Errors
///
/// Propagates connection and operator failures.
pub fn run_network_segment<A: ToSocketAddrs>(
    listener: &TcpListener,
    downstream: A,
    mut pipeline: Pipeline,
) -> Result<StreamEnd, PipelineError> {
    let (stream, _peer) = listener.accept()?;
    stream.set_nodelay(true)?;
    let mut streamin = StreamIn::new(stream);

    // Collect, process, forward. (Streaming via channels would also work;
    // batch keeps the failure semantics simple: the whole upstream session
    // is one unit.)
    let mut received: Vec<Record> = Vec::new();
    let end = streamin.pump(&mut received)?;
    let processed = pipeline.run(received)?;

    let mut out = StreamOut::connect(downstream)?;
    let mut devnull = crate::operator::NullSink;
    for r in processed {
        out.on_record(r, &mut devnull)?;
    }
    out.on_eos(&mut devnull)?;
    Ok(end)
}

/// A sink adapter so `StreamIn::pump` can feed a `Sender` directly.
#[derive(Debug, Clone)]
pub struct ChannelSink(pub Sender<Record>);

impl Sink for ChannelSink {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        self.0
            .send(record)
            .map_err(|_| PipelineError::Disconnected("channel sink closed".into()))
    }
}

/// Creates a bounded record channel (convenience re-export wrapper).
pub fn record_channel(capacity: usize) -> (Sender<Record>, Receiver<Record>) {
    bounded(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapPayload, Passthrough};
    use crate::record::{Payload, RecordKind};
    use crate::scope::validate_scopes;

    fn scope_burst(scope_type: u16, n: usize, base_seq: u64) -> Vec<Record> {
        let mut v = vec![Record::open_scope(scope_type, vec![])];
        for i in 0..n {
            v.push(Record::data(1, Payload::f64(vec![i as f64])).with_seq(base_seq + i as u64));
        }
        v.push(Record::close_scope(scope_type));
        v
    }

    #[test]
    fn relocation_preserves_all_records_and_scopes() {
        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let seg = RelocatablePipeline::spawn(
            || {
                let mut p = Pipeline::new();
                p.add(MapPayload::new("x2", |v: &mut [f64]| {
                    v.iter_mut().for_each(|x| *x *= 2.0);
                }));
                p
            },
            in_rx,
            out_tx,
            "host-a",
        );

        // First scope on host A.
        for r in scope_burst(1, 10, 0) {
            in_tx.send(r).unwrap();
        }
        seg.relocate("host-b");
        // Two more scopes; the move lands between them.
        for r in scope_burst(1, 10, 100) {
            in_tx.send(r).unwrap();
        }
        for r in scope_burst(1, 10, 200) {
            in_tx.send(r).unwrap();
        }
        drop(in_tx);

        let report = seg.join().unwrap();
        let out: Vec<Record> = out_rx.iter().collect();
        assert_eq!(out.len(), 36);
        validate_scopes(&out).unwrap();
        assert_eq!(report.records_in, 36);
        assert_eq!(report.migrations.len(), 1);
        assert_eq!(report.migrations[0].from, "host-a");
        assert_eq!(report.migrations[0].to, "host-b");
        assert_eq!(report.final_host, "host-b");
        // Payloads transformed by whichever host ran the record.
        let data: Vec<&Record> = out.iter().filter(|r| r.kind == RecordKind::Data).collect();
        assert_eq!(data[0].payload.as_f64().unwrap(), &[0.0]);
        assert_eq!(data[1].payload.as_f64().unwrap(), &[2.0]);
    }

    #[test]
    fn relocation_waits_for_scope_boundary() {
        // Rendezvous input channel: each send completes only when the
        // coordinator takes the record, making command interleaving
        // deterministic.
        let (in_tx, in_rx) = bounded(0);
        let (out_tx, out_rx) = unbounded();
        let seg = RelocatablePipeline::spawn(
            || {
                let mut p = Pipeline::new();
                p.add(Passthrough);
                p
            },
            in_rx,
            out_tx,
            "host-a",
        );

        // Open a scope, then request relocation mid-scope.
        in_tx.send(Record::open_scope(1, vec![])).unwrap();
        in_tx.send(Record::data(0, Payload::Empty)).unwrap();
        seg.relocate("host-b");
        // These records are still inside the scope; the move must not
        // happen before the close.
        in_tx.send(Record::data(0, Payload::Empty)).unwrap();
        in_tx.send(Record::close_scope(1)).unwrap();
        // Next scope should run on host-b.
        for r in scope_burst(1, 2, 10) {
            in_tx.send(r).unwrap();
        }
        drop(in_tx);

        let report = seg.join().unwrap();
        assert_eq!(report.migrations.len(), 1);
        // The migration happened at a record index *after* the first
        // scope completed (4 records: open, 2 data, close).
        assert!(report.migrations[0].at_record >= 4);
        let out: Vec<Record> = out_rx.iter().collect();
        validate_scopes(&out).unwrap();
    }

    #[test]
    fn multiple_relocations() {
        // Rendezvous input channel (see above): relocation commands land
        // between bursts instead of coalescing.
        let (in_tx, in_rx) = bounded(0);
        let (out_tx, out_rx) = unbounded();
        let seg = RelocatablePipeline::spawn(
            || {
                let mut p = Pipeline::new();
                p.add(Passthrough);
                p
            },
            in_rx,
            out_tx,
            "h0",
        );
        for hop in 1..=3 {
            for r in scope_burst(1, 5, hop * 10) {
                in_tx.send(r).unwrap();
            }
            seg.relocate(format!("h{hop}"));
        }
        for r in scope_burst(1, 5, 99) {
            in_tx.send(r).unwrap();
        }
        drop(in_tx);
        let report = seg.join().unwrap();
        assert_eq!(report.migrations.len(), 3);
        assert_eq!(report.final_host, "h3");
        assert_eq!(out_rx.iter().count(), 4 * 7);
    }

    #[test]
    fn no_relocation_runs_single_host() {
        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let seg = RelocatablePipeline::spawn(
            || {
                let mut p = Pipeline::new();
                p.add(Passthrough);
                p
            },
            in_rx,
            out_tx,
            "solo",
        );
        for r in scope_burst(2, 3, 0) {
            in_tx.send(r).unwrap();
        }
        drop(in_tx);
        let report = seg.join().unwrap();
        assert!(report.migrations.is_empty());
        assert_eq!(report.final_host, "solo");
        assert_eq!(out_rx.iter().count(), 5);
    }

    #[test]
    fn network_segment_processes_and_forwards() {
        use crate::net::send_all;
        use std::net::TcpListener;

        let seg_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let seg_addr = seg_listener.local_addr().unwrap();
        let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink_listener.local_addr().unwrap();

        // Final sink host.
        let sink_thread = thread::spawn(move || {
            let mut records: Vec<Record> = Vec::new();
            let (end, _received) = crate::net::serve_once(&sink_listener, &mut records).unwrap();
            (end, records)
        });

        // Segment host: doubles payloads.
        let segment_thread = thread::spawn(move || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("x2", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= 2.0);
            }));
            run_network_segment(&seg_listener, sink_addr, p).unwrap()
        });

        // Source host.
        let sent = send_all(seg_addr, &scope_burst(1, 4, 0)).unwrap();
        assert_eq!(sent, 6);

        let upstream_end = segment_thread.join().unwrap();
        assert_eq!(upstream_end, StreamEnd::Clean);
        let (end, records) = sink_thread.join().unwrap();
        assert_eq!(end, StreamEnd::Clean);
        assert_eq!(records.len(), 6);
        validate_scopes(&records).unwrap();
        assert_eq!(records[2].payload.as_f64().unwrap(), &[2.0]);
    }
}
