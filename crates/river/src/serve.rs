//! Multi-session pipeline service: many concurrent `streamin`
//! connections into one analysis host.
//!
//! The paper's pipelines are explicitly distributed — "segments can
//! receive and emit records using the `streamin` and `streamout`
//! operators … enabling instantiation of segments and the construction
//! of a pipeline across networked hosts" (§2) — and an archive-scale
//! deployment has many independent sensors pushing clip streams at one
//! analysis host concurrently. [`PipelineServer`] is that host's
//! service loop:
//!
//! 1. **Acceptor** — accepts connections only while a session slot is
//!    free ([`set_max_sessions`](PipelineServer::set_max_sessions)), so
//!    backpressure is applied *at accept time*: excess clients wait in
//!    the listener's backlog rather than being half-served.
//! 2. **Session workers** — a bounded pool of `max_sessions` threads.
//!    Each session decodes its own framed record stream
//!    ([`StreamIn`]), drives it through its *own clone* of the operator
//!    chain ([`Pipeline::clone_chain`], exactly the machinery the
//!    sharded runtime uses per worker), and pushes output into a
//!    per-session [`Sink`] produced by the caller's sink factory.
//! 3. **Repair isolation** — a session that dies mid-scope (abrupt
//!    disconnect, truncation) gets `BadCloseScope` repairs injected
//!    into *its* chain, exactly like single-connection `streamin`; a
//!    session whose wire turns poisonous (CRC mismatch, bad magic) is
//!    aborted with the same repair ([`StreamIn::abort_repair`]). Other
//!    live sessions never notice.
//! 4. **Shutdown** — [`ServerHandle::shutdown`] stops the acceptor,
//!    lets every in-flight session run to its natural end, and returns
//!    a [`ServerReport`]: one [`SessionReport`] per session (its
//!    [`StreamEnd`], record/byte counts and per-stage [`StreamStats`])
//!    plus the aggregate of all sessions via [`StreamStats::merge`].
//! 5. **Telemetry** — with [`PipelineServer::set_telemetry`] enabled,
//!    each session forks its own stage timers
//!    ([`crate::telemetry::Telemetry::fork_stages`]) and shares one
//!    event ring (lane = session id). Session summaries carry
//!    wall-clock duration, wire-idle time and a per-session
//!    [`crate::telemetry::Snapshot`]; the final report merges them, and
//!    [`ServerHandle::telemetry_snapshot`] reads the live event stream
//!    while the server runs.
//!
//! Sessions — not scope shards — are the unit of concurrency here: each
//! connection is an independent record stream with its own scope state
//! and its own operator state, so no splitter or ordered merge is
//! needed; the network already partitioned the work.
//!
//! # Example
//!
//! ```
//! use dynamic_river::operator::SharedSink;
//! use dynamic_river::net::send_all;
//! use dynamic_river::prelude::*;
//! use dynamic_river::serve::PipelineServer;
//! use std::net::TcpListener;
//!
//! let mut chain = Pipeline::new();
//! chain.add(MapPayload::new("gain", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 2.0);
//! }));
//! let mut server = PipelineServer::from_pipeline(&chain).unwrap();
//! server.set_max_sessions(2);
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let out = SharedSink::new();
//! let per_session = out.clone();
//! let handle = server
//!     .start(listener, move |_info| Box::new(per_session.clone()))
//!     .unwrap();
//!
//! let records = vec![
//!     Record::open_scope(1, vec![]),
//!     Record::data(0, Payload::f64(vec![21.0])),
//!     Record::close_scope(1),
//! ];
//! send_all(handle.local_addr(), &records).unwrap();
//!
//! handle.wait_for_completed(1);
//! let report = handle.shutdown().unwrap();
//! assert_eq!(report.sessions.len(), 1);
//! assert_eq!(report.clean_sessions(), 1);
//! assert_eq!(out.take()[1].payload.as_f64().unwrap(), &[42.0]);
//! ```

// Library code in this module must surface failures as errors, never
// panics; unwraps are confined to the test module below.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::PipelineError;
use crate::net::{StreamEnd, StreamIn};
use crate::operator::{Operator, Sink};
use crate::pipeline::{
    emit_scope_event, feed_chain, flush_chain, Pipeline, SinkTotals, StageStats, StreamStats,
};
use crate::telemetry::{EventKind, Snapshot, Telemetry, TelemetryConfig};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Completed-session counter shared between the worker pool and the
/// [`ServerHandle`], so callers can wait for a known client fleet to be
/// fully served before shutting down.
#[derive(Debug, Default)]
struct Progress {
    completed: Mutex<u64>,
    changed: Condvar,
}

impl Progress {
    fn bump(&self) {
        // A panicked session thread poisons nothing observable here:
        // the counter is a bare u64, so recover the guard and go on.
        let mut n = self
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *n += 1;
        self.changed.notify_all();
    }
}

/// Identity of one accepted session, handed to the sink factory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session number, assigned in accept order starting at 1.
    pub id: u64,
    /// Peer address of the connection.
    pub peer: String,
}

/// Everything one session reported when it finished — the
/// session-tagged counterpart of a single `streamin` run's
/// `(StreamEnd, received)` pair, extended with wire-byte accounting
/// ([`crate::codec::read_record_counted`]) and the session chain's
/// per-stage [`StreamStats`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session number (accept order, from 1).
    pub id: u64,
    /// Peer address of the connection.
    pub peer: String,
    /// How the session's stream ended.
    pub end: StreamEnd,
    /// Records received over the wire (synthesized repairs excluded).
    pub received: u64,
    /// Wire bytes consumed (frames, sentinel, partial trailing frame).
    pub wire_bytes: u64,
    /// Per-stage statistics of the session's cloned chain.
    pub stats: StreamStats,
    /// Wire format version the peer sent (`None` if no frame decoded) —
    /// negotiation is sender-driven, so this is how the server learns
    /// which format each session used.
    pub wire_version: Option<u8>,
    /// The codec/chain/sink error that ended the session, if any. Scope
    /// repair has already been applied when this is set.
    pub error: Option<String>,
    /// Wall-clock time from the session worker picking the job up to
    /// the report being written.
    pub duration: Duration,
    /// Portion of [`duration`](Self::duration) spent waiting on the
    /// wire for the next record — time the chain sat idle because the
    /// peer (or the network) had nothing ready.
    pub idle: Duration,
    /// The session's telemetry [`Snapshot`]: its own per-stage latency
    /// histograms (each session forks fresh timers,
    /// [`Telemetry::fork_stages`]) plus the events its lane (= session
    /// id) emitted. Empty when the server's telemetry is
    /// [`TelemetryConfig::Off`].
    pub telemetry: Snapshot,
}

impl SessionReport {
    /// `true` when the session ended with the clean sentinel, all
    /// scopes closed and no error.
    pub fn is_clean(&self) -> bool {
        self.end == StreamEnd::Clean && self.error.is_none()
    }
}

/// Final report of a server run: per-session reports plus their
/// aggregate.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// One report per accepted session, ascending session id.
    pub sessions: Vec<SessionReport>,
    /// All session statistics folded together ([`StreamStats::merge`]):
    /// record/byte totals add, `peak_burst` is the worst session's
    /// burst.
    pub aggregate: StreamStats,
    /// Set when the accept loop stopped early on a non-transient error
    /// (chain construction failure, fatal listener error). Completed
    /// sessions are still fully reported.
    pub accept_error: Option<String>,
    /// Merged telemetry across the whole run: every session's stage
    /// histograms folded bucket-wise ([`Snapshot::merge_stages`] — the
    /// sessions share one event ring, so events are taken once from the
    /// server's log rather than re-merged per session) plus the full
    /// interleaved event list.
    pub telemetry: Snapshot,
}

impl ServerReport {
    /// Sessions that ended cleanly ([`SessionReport::is_clean`]).
    pub fn clean_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_clean()).count()
    }

    /// Sessions that needed scope repair or ended in error.
    pub fn repaired_sessions(&self) -> usize {
        self.sessions.len() - self.clean_sessions()
    }
}

/// Boxed per-session output sink (must be `Send`: it moves onto the
/// session worker's thread).
pub type SessionSink = Box<dyn Sink + Send>;

/// One job handed from the acceptor to a session worker.
struct SessionJob {
    stream: TcpStream,
    info: SessionInfo,
    chain: Pipeline,
    sink: SessionSink,
    /// Per-session telemetry fork: shares the server's config and event
    /// ring, carries fresh stage timers so one session's latency never
    /// pollutes another's histogram.
    telemetry: Telemetry,
}

/// A multi-session pipeline server: accepts up to
/// [`max_sessions`](Self::set_max_sessions) concurrent `streamin`
/// connections and runs each through its own clone of an operator
/// chain. See the [module docs](self) for the full lifecycle.
pub struct PipelineServer {
    build: Box<dyn FnMut(u64) -> Result<Pipeline, PipelineError> + Send>,
    max_sessions: usize,
    telemetry: Telemetry,
}

impl std::fmt::Debug for PipelineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineServer")
            .field("max_sessions", &self.max_sessions)
            .finish_non_exhaustive()
    }
}

/// Default concurrent-session limit: the host's available parallelism.
fn default_max_sessions() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl PipelineServer {
    /// Builds a server whose sessions each run a
    /// [`clone_chain`](Pipeline::clone_chain)ed copy of `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] when the pre-flight
    /// [`Pipeline::check`] proves the chain broken, or an operator
    /// error naming the first operator that does not support
    /// duplication ([`crate::operator::Operator::clone_op`]) — both
    /// validated up front, not at first accept.
    pub fn from_pipeline(pipeline: &Pipeline) -> Result<Self, PipelineError> {
        pipeline.preflight(false)?;
        let prototype = pipeline.clone_chain()?;
        Ok(PipelineServer {
            // The prototype was validated cloneable above, so the
            // per-session clone can only fail if an operator's
            // `clone_op` is non-deterministic — propagated as this
            // session's build error rather than trusted away.
            build: Box::new(move |_session| prototype.clone_chain()),
            max_sessions: default_max_sessions(),
            // Inherit the pipeline's telemetry *config* but not its
            // registry: server sessions fork their own timers, and
            // sharing the source pipeline's histograms would mix any
            // pre-server runs into the server's report.
            telemetry: Telemetry::new(pipeline.telemetry().config()),
        })
    }

    /// Builds a server whose session chains come from a factory;
    /// `build(id)` is called once per accepted session — the route for
    /// chains whose operators do not implement `clone_op`. Each built
    /// chain is pre-flighted ([`Pipeline::check`]) before its session
    /// starts; analysis errors surface as the server's accept error.
    pub fn from_factory(mut build: impl FnMut(u64) -> Pipeline + Send + 'static) -> Self {
        PipelineServer {
            build: Box::new(move |id| {
                let chain = build(id);
                chain.preflight(false)?;
                Ok(chain)
            }),
            max_sessions: default_max_sessions(),
            telemetry: Telemetry::off(),
        }
    }

    /// Enables telemetry for the server: every session gets its own
    /// stage timers ([`Telemetry::fork_stages`]) and all sessions share
    /// one event ring, with each session's events tagged by its id as
    /// the lane. Read results per session from
    /// [`SessionReport::telemetry`], merged from
    /// [`ServerReport::telemetry`], or live from
    /// [`ServerHandle::telemetry_snapshot`].
    pub fn set_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        self.telemetry = Telemetry::new(config);
        self
    }

    /// The server's [`Telemetry`] registry handle (cheap clone).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Sets the concurrent-session limit (the worker-pool size). The
    /// acceptor only accepts while a session slot is free, so this is
    /// also the accept-time backpressure bound.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn set_max_sessions(&mut self, limit: usize) -> &mut Self {
        assert!(limit > 0, "max_sessions must be non-zero");
        self.max_sessions = limit;
        self
    }

    /// The concurrent-session limit in effect.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Starts serving on `listener`: spawns the session worker pool and
    /// the acceptor, then returns immediately with a [`ServerHandle`].
    /// `make_sink` is invoked once per accepted session (on the
    /// acceptor thread) to produce that session's output sink.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the listener's local address
    /// cannot be resolved.
    pub fn start<F>(
        self,
        listener: TcpListener,
        make_sink: F,
    ) -> Result<ServerHandle, PipelineError>
    where
        F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
    {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let progress = Arc::new(Progress::default());
        let worker_progress = Arc::clone(&progress);
        let max_sessions = self.max_sessions;
        let mut build = self.build;
        let telemetry = self.telemetry;
        let supervisor_telemetry = telemetry.clone();
        let supervisor = thread::Builder::new()
            .name("pipeline-server".into())
            .spawn(move || {
                supervise(
                    &listener,
                    &mut build,
                    make_sink,
                    max_sessions,
                    &flag,
                    &worker_progress,
                    &supervisor_telemetry,
                )
            })
            .map_err(PipelineError::Io)?;
        Ok(ServerHandle {
            addr,
            shutdown,
            progress,
            supervisor,
            telemetry,
        })
    }
}

/// Control handle for a running [`PipelineServer`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    progress: Arc<Progress>,
    supervisor: JoinHandle<Result<ServerReport, PipelineError>>,
    telemetry: Telemetry,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live telemetry [`Snapshot`] of the running server: the shared
    /// event ring (all sessions interleaved, lane = session id), read
    /// without stopping anything. Per-session stage histograms are
    /// forked per session and land in each [`SessionReport::telemetry`]
    /// (merged in [`ServerReport::telemetry`]) when the session ends.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Number of sessions fully served so far.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the counter.
    pub fn sessions_completed(&self) -> u64 {
        *self
            .progress
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until at least `n` sessions have been fully served —
    /// connection acceptance is asynchronous (a client may write its
    /// whole stream and exit while the connection still sits in the
    /// accept backlog), so a caller that knows its client fleet size
    /// waits here before [`shutdown`](Self::shutdown).
    ///
    pub fn wait_for_completed(&self, n: u64) {
        let mut completed = self
            .progress
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *completed < n {
            completed = self
                .progress
                .changed
                .wait(completed)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Gracefully shuts the server down: stops accepting new
    /// connections, lets every in-flight session drain to its natural
    /// end (each recording its own per-session [`StreamEnd`]), joins
    /// the worker pool and returns the final [`ServerReport`]. If the
    /// accept loop had already stopped on a fatal error, the completed
    /// sessions are still reported, with the cause in
    /// [`ServerReport::accept_error`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] only if the service threads could
    /// not be spawned.
    ///
    /// # Panics
    ///
    /// Panics if the server's supervisor thread panicked.
    pub fn shutdown(self) -> Result<ServerReport, PipelineError> {
        self.shutdown.store(true, Ordering::Release);
        // Wake a blocking accept() with a throwaway connection; if the
        // acceptor is waiting on a session slot instead, the next freed
        // slot re-checks the flag.
        let _ = TcpStream::connect(self.addr);
        match self.supervisor.join() {
            Ok(report) => report,
            // The supervisor only panics on a bug; re-raise it intact.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// The supervisor: spawns the worker pool, runs the accept loop with
/// slot-based backpressure, then drains and aggregates.
fn supervise<F>(
    listener: &TcpListener,
    build: &mut (dyn FnMut(u64) -> Result<Pipeline, PipelineError> + Send),
    mut make_sink: F,
    max_sessions: usize,
    shutdown: &AtomicBool,
    progress: &Arc<Progress>,
    telemetry: &Telemetry,
) -> Result<ServerReport, PipelineError>
where
    F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
{
    // Rendezvous job channel: a send only completes when an idle worker
    // is already waiting. `ready` counts idle workers — the acceptor
    // takes a token *before* accepting, so at most `max_sessions`
    // connections are ever in flight and the rest queue in the OS
    // backlog (accept-time backpressure).
    let (job_tx, job_rx) = bounded::<SessionJob>(0);
    let (ready_tx, ready_rx) = unbounded::<()>();
    let (report_tx, report_rx) = unbounded::<SessionReport>();
    let mut workers = Vec::with_capacity(max_sessions);
    for w in 0..max_sessions {
        let job_rx: Receiver<SessionJob> = job_rx.clone();
        let ready_tx: Sender<()> = ready_tx.clone();
        let report_tx: Sender<SessionReport> = report_tx.clone();
        let progress = Arc::clone(progress);
        let worker = thread::Builder::new()
            .name(format!("session-worker-{w}"))
            .spawn(move || loop {
                if ready_tx.send(()).is_err() {
                    return; // supervisor gone
                }
                match job_rx.recv() {
                    Ok(job) => {
                        // A panicking operator or user-supplied sink must
                        // not lose the session's slot in the report (or
                        // deadlock `wait_for_completed`): catch it and
                        // report the session as failed.
                        let fallback = SessionReport {
                            id: job.info.id,
                            peer: job.info.peer.clone(),
                            end: StreamEnd::Unclean { repaired_scopes: 0 },
                            received: 0,
                            wire_bytes: 0,
                            stats: StreamStats::default(),
                            wire_version: None,
                            error: None,
                            duration: Duration::ZERO,
                            idle: Duration::ZERO,
                            telemetry: Snapshot::default(),
                        };
                        let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_session(job)
                        }))
                        .unwrap_or_else(|panic| SessionReport {
                            error: Some(format!("session panicked: {}", panic_message(&panic))),
                            ..fallback
                        });
                        let delivered = report_tx.send(report).is_ok();
                        progress.bump();
                        if !delivered {
                            return;
                        }
                    }
                    Err(_) => return, // job channel closed: shutdown
                }
            })
            .map_err(PipelineError::Io)?;
        workers.push(worker);
    }
    drop(job_rx);
    drop(ready_tx);
    drop(report_tx);

    let mut accept_error: Option<String> = None;
    let mut next_id = 0u64;
    // `true` while the acceptor holds an idle-worker token it has not
    // yet spent on a dispatched session (a transiently failed accept
    // must not leak the slot, or a one-slot server would deadlock).
    let mut have_slot = false;
    loop {
        if !have_slot {
            // Wait for a free session slot first; recv fails only if
            // every worker died, which ends the run.
            if ready_rx.recv().is_err() {
                break;
            }
            have_slot = true;
        }
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if shutdown.load(Ordering::Acquire) {
                    // The shutdown wake-up connection (or a client that
                    // raced it): stop accepting.
                    break;
                }
                next_id += 1;
                let info = SessionInfo {
                    id: next_id,
                    peer: peer.to_string(),
                };
                let sink = make_sink(&info);
                match build(next_id) {
                    Ok(chain) => {
                        if job_tx
                            .send(SessionJob {
                                stream,
                                info,
                                chain,
                                sink,
                                telemetry: telemetry.fork_stages(),
                            })
                            .is_err()
                        {
                            break; // all workers gone
                        }
                        have_slot = false;
                    }
                    Err(e) => {
                        accept_error = Some(e.to_string());
                        break;
                    }
                }
            }
            // Per-connection failures (a backlogged client resetting
            // before it was accepted, an interrupted syscall) are the
            // client's problem, not the fleet's: keep serving.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                accept_error = Some(PipelineError::Io(e).to_string());
                break;
            }
        }
    }
    // Close the job channel: workers finish their in-flight session,
    // then exit. In-flight sessions drain to their natural end — even
    // when the acceptor died, completed sessions keep their reports.
    drop(job_tx);
    for worker in workers {
        let _ = worker.join();
    }
    let mut sessions: Vec<SessionReport> = report_rx.iter().collect();
    sessions.sort_by_key(|s| s.id);
    let mut aggregate = StreamStats::default();
    // Events come once from the shared ring (already interleaved across
    // sessions); only the per-session stage histograms need folding.
    let mut merged_telemetry = telemetry.snapshot();
    for s in &sessions {
        aggregate.merge(&s.stats);
        merged_telemetry.merge_stages(&s.telemetry);
    }
    Ok(ServerReport {
        sessions,
        aggregate,
        accept_error,
        telemetry: merged_telemetry,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Drives one session: decode → cloned chain → session sink, with the
/// same scope-repair semantics as single-connection `streamin` and the
/// same fused `feed_chain`/`flush_chain` step as the streaming driver
/// and the sharded runtime's workers.
fn run_session(job: SessionJob) -> SessionReport {
    let SessionJob {
        stream,
        info,
        chain,
        mut sink,
        telemetry,
    } = job;
    let _ = stream.set_nodelay(true);
    let started = Instant::now();
    let mut idle = Duration::ZERO;
    let mut ops = chain.into_ops();
    let names: Vec<String> = ops.iter().map(|op| op.name().to_string()).collect();
    let timers = telemetry.stage_timers(&names);
    let events = telemetry.event_sink(info.id);
    if events.enabled() {
        for op in &mut ops {
            op.attach_events(&events);
        }
    }
    events.emit(EventKind::SessionAccept, info.id);
    let mut stats: Vec<StageStats> = ops
        .iter()
        .zip(timers)
        .map(|(op, timer)| StageStats::with_timer(op.name(), timer))
        .collect();
    let mut totals = SinkTotals::default();
    let mut streamin = StreamIn::new(stream);
    let mut error: Option<String> = None;
    loop {
        // Time spent blocked on the wire is the session's idle time —
        // the chain is waiting for the peer, not working.
        let waited = Instant::now();
        let next = streamin.next_record();
        idle += waited.elapsed();
        match next {
            Ok(Some(record)) => {
                if events.enabled() {
                    emit_scope_event(&events, &record);
                }
                if let Err(e) = feed_chain(&mut ops, &mut stats, record, &mut totals, sink.as_mut())
                {
                    // The session's own chain or sink failed: the chain
                    // is no longer trustworthy, so end the session
                    // without pushing repairs through it.
                    error = Some(e.to_string());
                    streamin.abort_repair();
                    break;
                }
            }
            Ok(None) => {
                // Natural end (clean or disconnect-repaired): the
                // repairs already flowed through the chain via next();
                // flush operator state exactly like end-of-stream.
                if let Err(e) = flush_chain(&mut ops, &mut stats, &mut totals, sink.as_mut()) {
                    error = Some(e.to_string());
                }
                break;
            }
            Err(e) => {
                // Poisoned wire (CRC mismatch, bad magic, I/O failure):
                // repair this session's scopes through its chain and
                // flush, leaving the downstream scope-consistent.
                error = Some(e.to_string());
                for repair in streamin.abort_repair() {
                    if feed_chain(&mut ops, &mut stats, repair, &mut totals, sink.as_mut()).is_err()
                    {
                        break;
                    }
                }
                let _ = flush_chain(&mut ops, &mut stats, &mut totals, sink.as_mut());
                break;
            }
        }
    }
    let end = streamin
        .end()
        .unwrap_or(StreamEnd::Unclean { repaired_scopes: 0 });
    if error.is_some() {
        events.emit(EventKind::SessionError, info.id);
    } else {
        events.emit(EventKind::SessionDrain, streamin.received());
    }
    SessionReport {
        id: info.id,
        peer: info.peer,
        end,
        received: streamin.received(),
        wire_bytes: streamin.wire_bytes(),
        stats: StreamStats {
            stages: stats,
            source_records: streamin.received(),
            sink_records: totals.records,
            sink_bytes: totals.bytes,
        },
        wire_version: streamin.wire_version(),
        error,
        duration: started.elapsed(),
        idle,
        telemetry: telemetry.snapshot_for_lane(info.id),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::codec::{encode_frame, write_eos, write_record};
    use crate::net::send_all;
    use crate::operator::SharedSink;
    use crate::ops::{MapPayload, Passthrough};
    use crate::record::{Payload, Record, RecordKind};
    use std::io::Write;
    use std::sync::Mutex;

    fn scoped_records(tag: f64, n: usize) -> Vec<Record> {
        let mut v = vec![Record::open_scope(1, vec![])];
        for i in 0..n {
            v.push(Record::data(0, Payload::f64(vec![tag, i as f64])).with_seq(i as u64));
        }
        v.push(Record::close_scope(1));
        v
    }

    fn doubling_chain() -> Pipeline {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("double", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x *= 2.0);
        }));
        p
    }

    /// Per-session sink registry: (session id, its collected output).
    type SessionOutputs = Arc<Mutex<Vec<(u64, SharedSink)>>>;

    /// Starts a server whose per-session sinks land in a shared map of
    /// (session id → records).
    fn start_collecting(
        server: PipelineServer,
        listener: TcpListener,
    ) -> (ServerHandle, SessionOutputs) {
        let outputs: SessionOutputs = Arc::new(Mutex::new(Vec::new()));
        let registry = Arc::clone(&outputs);
        let handle = server
            .start(listener, move |info| {
                let sink = SharedSink::new();
                registry.lock().unwrap().push((info.id, sink.clone()));
                Box::new(sink)
            })
            .unwrap();
        (handle, outputs)
    }

    #[test]
    fn four_concurrent_sessions_each_match_single_lane() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let barrier = Arc::new(std::sync::Barrier::new(4));
        let clients: Vec<_> = (0..4u64)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let records = scoped_records(c as f64, 20 + c as usize);
                    // All four connect before any sends: genuinely
                    // concurrent sessions.
                    let mut out = crate::net::StreamOut::connect(addr).unwrap();
                    barrier.wait();
                    let mut devnull = crate::operator::NullSink;
                    for r in &records {
                        crate::operator::Operator::on_record(&mut out, r.clone(), &mut devnull)
                            .unwrap();
                    }
                    crate::operator::Operator::on_eos(&mut out, &mut devnull).unwrap();
                    records
                })
            })
            .collect();
        let sent: Vec<Vec<Record>> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        handle.wait_for_completed(4);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.clean_sessions(), 4);

        // Each session's output is byte-identical to running its input
        // through the single-lane streaming driver.
        let outputs = outputs.lock().unwrap();
        for (id, sink) in outputs.iter() {
            let got = sink.take();
            let matched = sent.iter().any(|records| {
                let mut expected = Vec::new();
                doubling_chain()
                    .run_streaming(records.clone().into_iter(), &mut expected)
                    .unwrap();
                expected == got
            });
            assert!(matched, "session {id} output matches no client's stream");
        }
        // Aggregate totals equal the sum of the per-session stats.
        let total_in: u64 = report.sessions.iter().map(|s| s.received).sum();
        assert_eq!(report.aggregate.source_records, total_in);
        assert_eq!(total_in as usize, sent.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn disconnect_repairs_one_session_without_disturbing_others() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(3);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        // One crashing client: opens a scope, sends data, vanishes.
        let crasher = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(9, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![5.0]))).unwrap();
            w.flush().unwrap();
            // Dropped without CloseScope or sentinel: simulated crash.
        });
        // Two healthy clients.
        let healthy: Vec<_> = (0..2u64)
            .map(|c| thread::spawn(move || send_all(addr, &scoped_records(c as f64, 10)).unwrap()))
            .collect();
        crasher.join().unwrap();
        for h in healthy {
            h.join().unwrap();
        }

        handle.wait_for_completed(3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.clean_sessions(), 2);
        assert_eq!(report.repaired_sessions(), 1);
        let unclean: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(unclean.len(), 1);
        assert_eq!(unclean[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert!(unclean[0].error.is_none(), "a crash is repair, not error");

        // The crashed session's output ends with the BadCloseScope that
        // traversed its chain; every session's output is balanced.
        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == unclean[0].id {
                assert_eq!(got.last().unwrap().kind, RecordKind::BadCloseScope);
            }
        }
    }

    #[test]
    fn corrupted_frame_aborts_only_that_session_with_repair() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        // Corrupt client: valid open + data, then a frame whose payload
        // byte is flipped (CRC mismatch), then more valid traffic that
        // must never be trusted.
        let corrupt = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(3, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![1.0]))).unwrap();
            let mut frame = encode_frame(&Record::data(0, Payload::f64(vec![2.0])));
            let mid = crate::codec::HEADER_LEN + 2;
            frame[mid] ^= 0xFF; // payload corruption: CRC now fails
            w.write_all(&frame).unwrap();
            write_record(&mut w, &Record::close_scope(3)).unwrap();
            write_eos(&mut w).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(7.0, 12)).unwrap());
        corrupt.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.clean_sessions(), 1);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        let err = bad[0].error.as_deref().unwrap();
        assert!(
            err.contains("crc"),
            "error should name the CRC failure: {err}"
        );

        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == bad[0].id {
                // open + data + synthesized BadCloseScope; nothing after
                // the corruption was trusted.
                assert_eq!(got.len(), 3);
                assert_eq!(got[2].kind, RecordKind::BadCloseScope);
            } else {
                assert_eq!(got.len(), 12 + 2);
            }
        }
    }

    #[test]
    fn client_dying_mid_frame_is_repaired_in_place() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let truncator = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(2, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![4.0]))).unwrap();
            // Half a frame, then death: the reader sees a truncated
            // stream, not a codec error.
            let frame = encode_frame(&Record::data(0, Payload::f64(vec![8.0])));
            w.write_all(&frame[..frame.len() / 2]).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(1.0, 5)).unwrap());
        truncator.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 2);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert_eq!(bad[0].received, 2);
        for (_id, sink) in outputs.lock().unwrap().iter() {
            crate::scope::validate_scopes(&sink.take()).unwrap();
        }
    }

    #[test]
    fn session_limit_applies_accept_time_backpressure() {
        // One slot, slow sessions: a second client's traffic is not
        // served until the first session finishes, but both complete.
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let clients: Vec<_> = (0..3u64)
            .map(|c| thread::spawn(move || send_all(addr, &scoped_records(c as f64, 50)).unwrap()))
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        handle.wait_for_completed(3);
        assert_eq!(handle.sessions_completed(), 3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.clean_sessions(), 3);
        // Serialized through one slot: session ids are still 1..=3.
        let ids: Vec<u64> = report.sessions.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn panicking_session_is_reported_and_does_not_wedge_the_pool() {
        // A user-supplied sink that panics mid-session must neither
        // deadlock wait_for_completed nor vanish from the report, and
        // the worker slot must survive to serve the next client.
        struct PanicSink;
        impl Sink for PanicSink {
            fn push(&mut self, _record: Record) -> Result<(), PipelineError> {
                panic!("sink exploded");
            }
        }
        let healthy_out = SharedSink::new();
        let registered = healthy_out.clone();
        let first = Arc::new(AtomicBool::new(true));
        let mut server = PipelineServer::from_pipeline(&Pipeline::new()).unwrap();
        server.set_max_sessions(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server
            .start(listener, move |_info| {
                if first.swap(false, Ordering::SeqCst) {
                    Box::new(PanicSink)
                } else {
                    Box::new(registered.clone())
                }
            })
            .unwrap();
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 3)).unwrap();
        handle.wait_for_completed(1); // deadlocks here if panics leak
        send_all(addr, &scoped_records(2.0, 3)).unwrap();
        handle.wait_for_completed(2);

        let report = handle.shutdown().unwrap();
        assert!(report.accept_error.is_none());
        assert_eq!(report.sessions.len(), 2);
        let err = report.sessions[0].error.as_deref().unwrap();
        assert!(err.contains("panicked"), "got: {err}");
        assert!(report.sessions[1].is_clean());
        assert_eq!(healthy_out.take().len(), 5);
    }

    #[test]
    fn sessions_carry_telemetry_timing_and_merged_snapshot() {
        let mut pipeline = doubling_chain();
        pipeline.set_telemetry(crate::telemetry::TelemetryConfig::Full);
        let mut server = PipelineServer::from_pipeline(&pipeline).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 6)).unwrap();
        send_all(addr, &scoped_records(2.0, 9)).unwrap();
        handle.wait_for_completed(2);

        // Live view while the server still runs: the shared event ring
        // already holds both sessions' accept/drain events.
        let live = handle.telemetry_snapshot();
        let accepts = live
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SessionAccept)
            .count();
        assert_eq!(accepts, 2);

        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 2);
        for s in &report.sessions {
            // Stage timers are per-session: the one "double" stage saw
            // exactly this session's records (data + scope framing).
            assert_eq!(s.telemetry.stages.len(), 1);
            assert_eq!(s.telemetry.stages[0].name, "double");
            assert_eq!(s.telemetry.stages[0].latency.count, s.received);
            // Events are lane-filtered to this session.
            assert!(s.telemetry.events.iter().all(|e| e.lane == s.id));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::SessionAccept));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::SessionDrain));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::ScopeOpen));
            // Wall-clock accounting: idle (wire waits) is part of the
            // session's total duration.
            assert!(s.duration >= s.idle);
            assert!(s.duration > Duration::ZERO);
        }
        // Merged snapshot: histograms fold bucket-wise across sessions,
        // events appear once.
        let merged = &report.telemetry;
        assert_eq!(merged.stages.len(), 1);
        let total: u64 = report.sessions.iter().map(|s| s.received).sum();
        assert_eq!(merged.stages[0].latency.count, total);
        let merged_accepts = merged
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SessionAccept)
            .count();
        assert_eq!(merged_accepts, 2);
    }

    #[test]
    fn telemetry_off_reports_empty_snapshots() {
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        send_all(addr, &scoped_records(1.0, 4)).unwrap();
        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        assert!(report.sessions[0].telemetry.stages.is_empty());
        assert!(report.sessions[0].telemetry.events.is_empty());
        assert!(report.telemetry.events.is_empty());
        // Duration/idle accounting is unconditional.
        assert!(report.sessions[0].duration >= report.sessions[0].idle);
    }

    #[test]
    fn shutdown_with_no_sessions_is_immediate_and_empty() {
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server
            .start(listener, |_info| Box::new(crate::operator::NullSink))
            .unwrap();
        let report = handle.shutdown().unwrap();
        assert!(report.sessions.is_empty());
        assert_eq!(report.aggregate, StreamStats::default());
    }

    #[test]
    fn factory_route_builds_one_chain_per_session() {
        let built = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let mut server = PipelineServer::from_factory(move |_id| {
            counter.fetch_add(1, Ordering::SeqCst);
            let mut p = Pipeline::new();
            p.add(Passthrough);
            p
        });
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        for c in 0..3u64 {
            send_all(addr, &scoped_records(c as f64, 3)).unwrap();
        }
        handle.wait_for_completed(3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(built.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_cloneable_chain_is_rejected_up_front() {
        struct Opaque;
        impl crate::operator::Operator for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn on_record(
                &mut self,
                record: Record,
                out: &mut dyn Sink,
            ) -> Result<(), PipelineError> {
                out.push(record)
            }
        }
        let mut p = Pipeline::new();
        p.add(Opaque);
        let err = PipelineServer::from_pipeline(&p).unwrap_err();
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn wire_bytes_are_session_tagged() {
        let server = PipelineServer::from_pipeline(&Pipeline::new()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        let records = scoped_records(0.0, 4);
        let expected: u64 = records
            .iter()
            .map(|r| encode_frame(r).len() as u64)
            .sum::<u64>()
            + 4; // EOS sentinel
        send_all(addr, &records).unwrap();
        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions[0].wire_bytes, expected);
        assert_eq!(report.sessions[0].received as usize, records.len());
        assert_eq!(report.sessions[0].wire_version, Some(crate::codec::VERSION));
    }

    #[test]
    fn sessions_report_their_negotiated_wire_version() {
        use crate::codec::{SampleEncoding, WireFormat};
        use crate::net::send_all_with;
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 8)).unwrap();
        handle.wait_for_completed(1);
        send_all_with(
            addr,
            &scoped_records(2.0, 8),
            WireFormat::V2(SampleEncoding::F64),
        )
        .unwrap();
        handle.wait_for_completed(2);

        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 2);
        let mut versions: Vec<Option<u8>> =
            report.sessions.iter().map(|s| s.wire_version).collect();
        versions.sort();
        assert_eq!(
            versions,
            vec![Some(crate::codec::VERSION), Some(crate::codec::VERSION_V2)]
        );
        // Both sessions produced the same doubled output regardless of
        // the wire format that carried them in.
        for (_id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            assert_eq!(got.len(), 8 + 2);
            crate::scope::validate_scopes(&got).unwrap();
        }
    }

    #[test]
    fn corrupted_v2_frame_aborts_only_that_session_with_repair() {
        use crate::codec::{encode_frame_with, SampleEncoding, WireFormat};
        let fmt = WireFormat::V2(SampleEncoding::F64);
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let corrupt = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            w.write_all(&encode_frame_with(&Record::open_scope(3, vec![]), fmt))
                .unwrap();
            w.write_all(&encode_frame_with(
                &Record::data(0, Payload::f64(vec![1.0])),
                fmt,
            ))
            .unwrap();
            // Flip a CRC byte: frame length stays intact, checksum fails.
            let mut frame = encode_frame_with(&Record::data(0, Payload::f64(vec![2.0])), fmt);
            let last = frame.len() - 1;
            frame[last] ^= 0xFF;
            w.write_all(&frame).unwrap();
            w.write_all(&encode_frame_with(&Record::close_scope(3), fmt))
                .unwrap();
            write_eos(&mut w).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(7.0, 12)).unwrap());
        corrupt.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 1);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert_eq!(bad[0].wire_version, Some(crate::codec::VERSION_V2));
        let err = bad[0].error.as_deref().unwrap();
        assert!(
            err.contains("crc"),
            "error should name the CRC failure: {err}"
        );

        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == bad[0].id {
                assert_eq!(got.len(), 3);
                assert_eq!(got[2].kind, RecordKind::BadCloseScope);
            } else {
                assert_eq!(got.len(), 12 + 2);
            }
        }
    }

    #[test]
    fn client_dying_mid_v2_frame_is_repaired_in_place() {
        use crate::codec::{encode_frame_with, SampleEncoding, WireFormat};
        let fmt = WireFormat::V2(SampleEncoding::I16);
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            w.write_all(&encode_frame_with(&Record::open_scope(2, vec![]), fmt))
                .unwrap();
            let frame = encode_frame_with(&Record::data(0, Payload::f64(vec![8.0; 64])), fmt);
            w.write_all(&frame[..frame.len() / 2]).unwrap();
            w.flush().unwrap();
            // Dropped mid-frame: simulated crash.
        })
        .join()
        .unwrap();

        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        let s = &report.sessions[0];
        assert_eq!(s.end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert!(s.error.is_none(), "truncation is repair, not error");
        assert_eq!(s.wire_version, Some(crate::codec::VERSION_V2));
        let (_, sink) = &outputs.lock().unwrap()[0];
        let got = sink.take();
        crate::scope::validate_scopes(&got).unwrap();
        assert_eq!(got.last().unwrap().kind, RecordKind::BadCloseScope);
    }
}
